"""Auditing a whole fleet in parallel (the batch-audit engine).

A provider hosts many accountable services; their customers want all of them
audited.  Audits are embarrassingly parallel — every machine's log, and with
snapshots every chunk of a log, is an independent work item — so the
:class:`~repro.audit.engine.AuditScheduler` fans the fleet out over a worker
pool: logs are split at snapshot boundaries, authenticator signatures are
batch-verified (one screening exponentiation per chunk instead of one per
signature), and per-chunk results are merged into per-machine verdicts.

Run with:  python examples/parallel_fleet_audit.py
"""

from repro.audit.engine import AuditScheduler
from repro.experiments.parallel_audit import build_fleet


def main() -> None:
    # --- 1. Record a small fleet: database servers, each driven by a client.
    print("recording a 6-machine fleet (3 hosted databases + clients)...")
    fleet = build_fleet(num_machines=6, duration=12.0, snapshot_interval=4.0)
    for machine in fleet.machines:
        monitor = fleet.monitors[machine]
        print(f"  {machine}: {len(monitor.log)} log entries, "
              f"{monitor.snapshots.count} snapshots")

    # --- 2. Audit every machine serially (workers=1 is the plain auditor).
    serial = AuditScheduler(workers=1).audit_fleet(fleet.assignments())
    print(f"\nserial audit: modelled cost "
          f"{serial.modelled.serial_seconds:.1f} s of audit-tool time")

    # --- 3. The same audits on four workers: chunked, batched, parallel.
    engine = AuditScheduler(workers=4)
    report = engine.audit_fleet(fleet.assignments())
    print(f"parallel audit: {report.chunk_count} chunks on {report.workers} "
          f"workers ({report.executor_used} pool)")
    print(f"  modelled audit time {report.modelled.makespan_seconds:.1f} s "
          f"-> {report.modelled.speedup:.1f}x speedup, "
          f"{report.modelled.efficiency * 100:.0f}% efficiency")
    print(f"  batched signature checks: "
          f"{report.total_cost.signatures_verified} authenticators in "
          f"{report.total_cost.signature_screen_operations} screening operations")

    # --- 4. Verdicts are the same either way.
    for machine in fleet.machines:
        assert report.results[machine].verdict is serial.results[machine].verdict
    verdicts = {machine: result.verdict.value
                for machine, result in sorted(report.results.items())}
    print(f"\nverdicts (identical to the serial audit): {verdicts}")


if __name__ == "__main__":
    main()
