"""Spot-checking a long-running hosted service (the cloud / web-service scenario).

Alice's database server runs on Bob's infrastructure inside an AVM while a
client issues a steady query workload (Section 6.12's MySQL + sql-bench
setup).  Replaying the whole multi-hour execution would be expensive, so Alice
audits only a few snapshot-delimited chunks of the log: she downloads the
snapshot at the start of each chunk, authenticates it against the hash-tree
root recorded in the log, and replays just that chunk (Section 3.5).

Run with:  python examples/cloud_spot_check.py
"""

from repro.audit.auditor import Auditor
from repro.audit.spot_check import SpotChecker
from repro.avmm.config import AvmmConfig, Configuration
from repro.avmm.monitor import AccountableVMM
from repro.experiments.harness import build_trust
from repro.network.simnet import SimulatedNetwork
from repro.sim.scheduler import Scheduler
from repro.workloads.kvstore import make_kvserver_image
from repro.workloads.sqlbench import SqlBenchSettings, make_sqlbench_image


def main() -> None:
    scheduler = Scheduler()
    network = SimulatedNetwork(scheduler)
    config = AvmmConfig.for_configuration(Configuration.AVMM_RSA768,
                                          snapshot_interval=20.0)
    ca, keypairs, keystore = build_trust(["db-server", "db-client"], scheme="rsa768")

    server_image = make_kvserver_image()
    server = AccountableVMM("db-server", server_image, config, scheduler, network,
                            keypair=keypairs["db-server"], keystore=keystore)
    client = AccountableVMM("db-client",
                            make_sqlbench_image(SqlBenchSettings(server="db-server")),
                            config, scheduler, network,
                            keypair=keypairs["db-client"], keystore=keystore)
    server.start()
    client.start()

    print("running the hosted database under a sql-bench-style workload...")
    scheduler.run_until(120.0)
    print(f"  server handled {server.guest.operations} operations, "
          f"took {server.snapshots.count} snapshots, "
          f"log has {len(server.log)} entries")

    auditor = Auditor("db-client", keystore, server_image)
    auditor.collect_from_peer(client, "db-server")
    checker = SpotChecker(auditor)
    segments = server.get_snapshot_segments()
    print(f"\nspot-checking 2 of the {len(segments)} snapshot-delimited segments...")
    for index in (1, len(segments) - 2):
        result = checker.check_chunk(server, index, 1, segments=segments)
        print(f"  chunk starting at segment {index}: "
              f"{'pass' if result.ok else 'FAULT'}; "
              f"{result.total_bytes_transferred / 1e6:.1f} MB transferred "
              f"(snapshot {result.snapshot_bytes / 1e6:.1f} MB), "
              f"estimated replay time {result.replay_seconds:.1f} s")

    full = auditor.audit(server)
    print(f"\nfor comparison, a full audit would replay "
          f"{full.cost.semantic_seconds:.1f} s of execution and download "
          f"{full.cost.total_bytes_downloaded / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
