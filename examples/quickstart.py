"""Quickstart: make a piece of software accountable and audit it.

This walks through the basic two-party scenario of the paper (Figure 1):
Alice relies on software running on Bob's machine.  Bob runs the software
inside an accountable virtual machine; Alice later downloads the log, checks
it against the authenticators she collected, and replays it against her own
reference image.  We then show what happens when Bob tampers with his log.

Run with:  python examples/quickstart.py
"""

from repro.audit import Auditor
from repro.audit.verdict import Verdict
from repro.avmm import AccountableVMM, AvmmConfig, Configuration
from repro.experiments.harness import build_trust
from repro.network import SimulatedNetwork
from repro.sim import Scheduler
from repro.vm.events import PacketDelivery
from repro.workloads.echo import make_echo_image


def main() -> None:
    # --- 1. Infrastructure: simulated time, a network, certified key pairs.
    scheduler = Scheduler()
    network = SimulatedNetwork(scheduler)
    ca, keypairs, keystore = build_trust(["alice", "bob"], scheme="rsa768")

    # --- 2. The software S both parties agreed on (here: a tiny echo service).
    reference_image = make_echo_image()

    # --- 3. Bob runs S inside an AVM; Alice runs her own machine too so her
    #        outgoing requests are signed and acknowledged.
    config = AvmmConfig.for_configuration(Configuration.AVMM_RSA768,
                                          snapshot_interval=None)
    bob = AccountableVMM("bob", reference_image, config, scheduler, network,
                         keypair=keypairs["bob"], keystore=keystore)
    alice = AccountableVMM("alice", make_echo_image(), config, scheduler, network,
                           keypair=keypairs["alice"], keystore=keystore)
    bob.start()
    alice.start()

    # --- 4. Alice's machine talks to Bob's machine for a while.
    for i in range(5):
        alice.deliver_event(PacketDelivery(source="bob", payload=f"request {i}".encode(),
                                           message_id=f"req-{i}"))
    scheduler.run_until(2.0)
    print(f"Bob's machine: {len(bob.log)} tamper-evident log entries, "
          f"{bob.stats.messages_sent} messages sent, "
          f"{bob.stats.signatures_generated} signatures generated")

    # --- 5. Alice audits Bob: verify the log against the authenticators she
    #        collected, run the syntactic check, then deterministic replay.
    auditor = Auditor("alice", keystore, reference_image)
    auditor.collect_from_peer(alice, "bob")
    result = auditor.audit(bob)
    print(f"audit of bob: {result.verdict.value} "
          f"({result.authenticators_checked} authenticators checked, "
          f"{result.replay_report.events_injected} events replayed)")
    assert result.verdict is Verdict.PASS

    # --- 6. Bob tampers with his log after the fact...
    victim = bob.log.entries_of_type(bob.log.entries[0].entry_type)[0]
    bob.log.tamper_replace_entry(victim.sequence,
                                 {**victim.content, "forged": True},
                                 recompute_chain=True)

    # --- 7. ...and the next audit produces evidence any third party can check.
    result = auditor.audit(bob)
    print(f"audit after tampering: {result.verdict.value} ({result.phase.value})")
    assert result.verdict is Verdict.FAIL
    confirmed = result.evidence.verify(keystore, reference_image)
    print(f"third party confirms the fault from the evidence alone: {confirmed}")


if __name__ == "__main__":
    main()
