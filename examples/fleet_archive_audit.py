"""Archiving a fleet's logs durably, then auditing from the archive.

A provider's machines stream their tamper-evident logs to a durable archive
while they run: every snapshot seals a segment, which is compressed and
shipped (with the snapshot state and collected peer authenticators) to the
audit-ingest service.  The archive survives the fleet — this example
"restarts" by reopening it purely from its on-disk manifest, audits every
machine from disk, and then applies Section 4.2's checkpoint truncation to
garbage-collect old log prefixes without losing auditability.

Run with:  python examples/fleet_archive_audit.py
"""

import shutil
import tempfile
from pathlib import Path

from repro.audit.engine import AuditAssignment, AuditScheduler
from repro.experiments.parallel_audit import build_fleet
from repro.service import AuditIngestService, format_ingest_report
from repro.store import LogArchive


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="avm-archive-example-")) / "archive"
    try:
        # --- 1. Record a small fleet; monitors stream sealed segments to the
        #        ingest service as they run.
        print("recording a 4-machine fleet, streaming logs to the archive...")
        fleet = build_fleet(num_machines=4, duration=10.0,
                            snapshot_interval=4.0, archive=LogArchive(root))
        stats = fleet.ingest.stats
        print(f"  ingested {stats.segments_ingested} segments "
              f"({stats.entries_ingested} entries, "
              f"{stats.stored_bytes:,} B stored), "
              f"{stats.authenticators_ingested} authenticators, "
              f"{stats.snapshots_ingested} snapshots")

        # --- 2. "Restart": drop every in-memory handle and reopen the archive
        #        from its manifest.  Recovery proves each machine's segments
        #        tile into one unbroken hash chain.
        archive = LogArchive(root)
        print(f"\nreopened archive: {archive.recovery.machines} machines, "
              f"{archive.recovery.entries} entries, "
              f"chains verified: {archive.recovery.chains_verified}, "
              f"orphans discarded: {len(archive.recovery.orphan_files)}")

        # --- 3. Audit every machine straight from the archive — serially and
        #        on the parallel engine.  Verdicts are identical to what an
        #        in-memory audit of the live fleet produces.
        service = AuditIngestService(archive)
        results = {}
        for machine in fleet.machines:
            auditor = fleet.make_auditor(machine, collect=False)
            results[machine] = service.audit_machine(auditor, machine)
        assignments = []
        for machine in fleet.machines:
            auditor = fleet.make_auditor(machine, collect=False)
            service.prepare_auditor(auditor, machine)
            assignments.append(AuditAssignment(auditor,
                                               service.target_for(machine)))
        report = AuditScheduler(workers=2).audit_fleet(assignments)
        print("\naudits from the archive:")
        print(format_ingest_report(service, results))
        assert all(result.ok for result in results.values())
        assert report.all_passed
        for machine in fleet.machines:  # live audits agree with archived ones
            live = fleet.make_auditor(machine).audit(fleet.monitors[machine])
            assert live.verdict is results[machine].verdict

        # --- 4. Retention: truncate each machine at its midpoint checkpoint
        #        (Section 4.2), keeping the boundary snapshot, then audit the
        #        surviving suffix from that snapshot.
        print("\napplying retention GC at the midpoint checkpoints...")
        for machine in fleet.machines:
            head = archive.head_checkpoint(machine)
            checkpoint = archive.truncate(machine, head.sequence // 2)
            result = service.audit_machine(
                fleet.make_auditor(machine, collect=False), machine)
            print(f"  {machine}: retained entries "
                  f"{checkpoint.sequence + 1}..{head.sequence}, "
                  f"audit from boundary snapshot: {result.verdict.value}")
            assert result.ok
        print("\nlogs outlived the fleet, audits survived the GC.")
    finally:
        shutil.rmtree(root.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
