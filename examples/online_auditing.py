"""Online auditing: catch a cheater while the game is still running.

Section 6.11: instead of waiting for the game to end, a player audits an
opponent's log incrementally during the game.  Here player2 audits player1
(who runs an aimbot image) every few seconds of simulated time and detects
the cheat mid-game.

Run with:  python examples/online_auditing.py
"""

from repro.audit.online import OnlineAuditor
from repro.avmm.config import Configuration
from repro.experiments.harness import GameSession, GameSessionSettings
from repro.game.cheats import AimbotCheat
from repro.metrics.framerate import FrameRateModel


def main() -> None:
    cheater = "player1"
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768,
        num_players=3,
        duration=24.0,
        snapshot_interval=8.0,
        cheats={cheater: AimbotCheat()},
        seed=7,
    )
    session = GameSession(settings)

    online = OnlineAuditor(session.make_auditor("player2", cheater),
                           session.monitors[cheater], session.scheduler,
                           interval=6.0)
    online.start()
    print("playing while player2 audits player1 online every 6 seconds...")
    session.run()
    online.stop()

    for record in online.records:
        print(f"  t={record.time:5.1f} s: audited {record.entries_audited} entries "
              f"-> {record.verdict.value}")
    if online.detection_time is not None:
        print(f"\naimbot detected {online.detection_time:.1f} s into the game "
              f"(the game ran for {settings.duration:.0f} s)")
    else:
        print("\ncheat not detected (increase the duration or audit frequency)")

    # What does concurrent auditing cost the auditing player? (Figure 8)
    model = FrameRateModel()
    for audits in (0, 1, 2):
        sample = model.compute(session.monitors["player2"], settings.duration,
                               concurrent_audits=audits,
                               audit_slowdown=0.05 if audits else 0.0)
        print(f"frame rate with {audits} concurrent online audits: "
              f"{sample.frames_per_second:.0f} fps")


if __name__ == "__main__":
    main()
