"""Cheat detection in a multi-player game (the paper's headline application).

Three players and a game server each run inside an AVM.  One player installs
a cheat (an image that differs from the agreed-upon reference image).  After
the game, every player is audited: the honest players pass, the cheater's
replay diverges, and the resulting evidence convinces the other players
independently.

Run with:  python examples/cheat_detection.py
"""

from repro.audit.multiparty import distribute_evidence
from repro.audit.verdict import Verdict
from repro.avmm.config import Configuration
from repro.experiments.harness import GameSession, GameSessionSettings
from repro.game.cheats import UnlimitedAmmoCheat


def main() -> None:
    cheater = "player1"
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768,
        num_players=3,
        duration=15.0,                 # seconds of simulated game play
        snapshot_interval=5.0,
        cheats={cheater: UnlimitedAmmoCheat()},
        seed=2026,
    )
    print("playing a 3-player game (player1 has the unlimited-ammo cheat installed)...")
    session = GameSession(settings)
    session.run()

    for player in session.player_ids:
        monitor = session.monitors[player]
        print(f"  {player}: {len(monitor.log)} log entries, "
              f"{monitor.stats.frames_rendered} frames rendered")

    print("\nauditing every player...")
    results = session.audit_all()
    for player, result in results.items():
        print(f"  {result.summary()}")

    assert results[cheater].verdict is Verdict.FAIL
    assert all(results[p].verdict is Verdict.PASS
               for p in session.player_ids if p != cheater)

    # The accusing player sends the evidence to everyone else; each verifies it
    # independently with their own copy of the reference image (Section 4.6).
    evidence = results[cheater].evidence
    verifiers = [(identity, session.keystore)
                 for identity in session.identities if identity != cheater]
    verdicts = distribute_evidence(evidence, verifiers,
                                   session.reference_images[cheater])
    print("\nindependent verification of the evidence:")
    for identity, confirmed in verdicts.items():
        print(f"  {identity}: {'confirms the cheat' if confirmed else 'NOT confirmed'}")


if __name__ == "__main__":
    main()
