"""Figure 6 — average CPU utilisation per hyperthread."""

from _bench_utils import duration_or

from repro.avmm.config import Configuration
from repro.experiments import fig6_cpu


def test_fig6_cpu_utilisation(benchmark, repro_duration):
    duration = duration_or(20.0, repro_duration, smoke=8.0)
    result = benchmark.pedantic(fig6_cpu.run_cpu,
                                kwargs={"duration": duration, "num_players": 3},
                                rounds=1, iterations=1)
    print()
    print("configuration  average (entire CPU)  daemon HT 0")
    for configuration, utilization in result.utilizations.items():
        print(f"{configuration.label:13s}  {utilization.average * 100:19.1f}%  "
              f"{utilization.daemon_ht_utilization * 100:10.1f}%")
    # Shape: ~12.5 % average in every configuration (single-threaded game),
    # daemon hyperthread below 8 % plus background.
    for utilization in result.utilizations.values():
        assert 0.10 < utilization.average < 0.30
    avmm = result.utilizations[Configuration.AVMM_RSA768]
    assert avmm.daemon_ht_utilization < 0.20
