"""Section 6.6 — cost split of the syntactic and semantic checks."""

from _bench_utils import duration_or

from repro.experiments import sec66_audit_cost


def test_sec66_audit_cost(benchmark, repro_duration):
    duration = duration_or(30.0, repro_duration, smoke=10.0)
    result = benchmark.pedantic(sec66_audit_cost.run_audit_cost,
                                kwargs={"duration": duration, "num_players": 3},
                                rounds=1, iterations=1)
    print()
    print(f"recorded game time      {result.recorded_seconds:8.1f} s")
    print(f"active (non-idle) time  {result.active_seconds:8.1f} s")
    print(f"compress the log        {result.compression_seconds:8.2f} s")
    print(f"decompress the log      {result.decompression_seconds:8.2f} s")
    print(f"syntactic check         {result.syntactic_seconds:8.2f} s")
    print(f"semantic check (replay) {result.semantic_seconds:8.1f} s")
    print(f"semantic / active play  {result.semantic_fraction_of_recording:8.2f}x")
    # Shape: the semantic check dominates and takes roughly as long as the
    # recorded (active) play time; the syntactic check is cheap.
    assert result.audit_passed
    assert result.semantic_seconds > 10 * result.syntactic_seconds
    assert 0.5 < result.semantic_fraction_of_recording < 2.0
