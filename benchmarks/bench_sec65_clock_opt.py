"""Section 6.5 — frame-rate cap, clock-read storm, and the delay optimisation."""

from _bench_utils import duration_or

from repro.experiments import sec65_frame_cap


def test_sec65_clock_read_optimisation(benchmark, repro_duration):
    duration = duration_or(4.0, repro_duration, smoke=2.0)
    result = benchmark.pedantic(sec65_frame_cap.run_frame_cap,
                                kwargs={"duration": duration},
                                rounds=1, iterations=1)
    print()
    print("variant                        log MB/minute  clock reads")
    for variant in result.variants.values():
        print(f"{variant.label:29s}  {variant.log_mb_per_minute:13.2f}  "
              f"{variant.clock_reads:11d}")
    print(f"cap inflates log growth {result.cap_growth_factor:.1f}x; with the "
          f"optimisation it is {result.optimized_growth_factor:.2f}x uncapped growth")
    # Shape: the cap inflates log growth by an order of magnitude; the
    # optimisation recovers almost all of it.
    assert result.cap_growth_factor > 5.0
    assert result.optimized_growth_factor < result.cap_growth_factor / 3.0
    assert result.optimized_growth_factor < 3.0
