"""Copy-on-write incremental snapshots (Section 4.4).

*"To save space, snapshots are incremental ... the AVMM also maintains a
hash tree over the state; after each snapshot, it updates the tree."*  This
benchmark takes snapshots of a large, mostly-idle database state — the
Section 6.12 spot-check regime — through two pipelines:

* **full rebuild** (the historical design): re-serialise the whole state,
  re-paginate, rebuild the Merkle tree from every leaf;
* **copy-on-write**: the dirty-tracked path — cached per-key serialisation,
  page diff over the dirty spans only, O(log n) tree repair.

Asserted: the incremental path is at least 5x faster per snapshot while
producing byte-identical pages and the identical Merkle root, and a
200-snapshot run keeps the manager's resident bytes bounded (keyframes +
deltas + working copy), an order of magnitude under the
retain-every-full-snapshot design it replaces.
"""

import time

from _bench_utils import scaled

from repro.crypto.merkle import MerkleTree
from repro.vm.execution import ExecutionTimestamp
from repro.vm.snapshot import SnapshotManager, paginate, serialize_state


def _build_state(tables, row_bytes):
    """A kv-server-shaped state: many tables, most of them idle.

    Counters start far from digit-length boundaries so an in-place update
    does not shift the canonical serialisation — the steady-state regime of
    a long-running server, where copy-on-write pays off most.
    """
    return {
        "guest": {
            "tables": {f"table-{i:04d}": {"row": "x" * row_bytes}
                       for i in range(tables)},
            "operations": 10_000_000,
            "ticks": 10_000_000,
        },
        "disk": {"0": "00ff" * 8},
        "instruction_count": 10 ** 12,
        "branch_count": 10 ** 9,
        "frames": 0,
        "timer_interval": 0.5,
        "started": True,
    }


def _mutate(state, step, row_bytes):
    """Update one table in place, plus the counters; returns dirty paths."""
    table = f"table-{step % len(state['guest']['tables']):04d}"
    fill = "abcdefghij"[step % 10]
    state["guest"]["tables"][table] = {"row": fill * row_bytes}
    state["guest"]["operations"] += 1
    state["instruction_count"] += 137
    return {("guest", "tables", table), ("guest", "operations"),
            ("instruction_count",)}


def _full_rebuild_root(state, page_size):
    """Exactly the work the pre-CoW ``SnapshotManager.take`` performed."""
    return MerkleTree(paginate(serialize_state(state), page_size)).root


def run_snapshot_bench(tables, row_bytes, snapshots, page_size=4096):
    state = _build_state(tables, row_bytes)
    manager = SnapshotManager(page_size=page_size)
    state_bytes = len(serialize_state(state))

    # Prime: the first snapshot is full on both paths by definition.
    manager.take(state, ExecutionTimestamp(0, 0))
    primed_dirty_bytes = manager.stats.dirty_bytes_total

    cow_seconds = 0.0
    rebuild_seconds = 0.0
    for step in range(1, snapshots + 1):
        dirty = _mutate(state, step, row_bytes)

        started = time.perf_counter()
        snapshot = manager.take(state, ExecutionTimestamp(step, 0),
                                dirty_paths=dirty)
        cow_seconds += time.perf_counter() - started

        started = time.perf_counter()
        rebuilt = _full_rebuild_root(state, page_size)
        rebuild_seconds += time.perf_counter() - started
        assert snapshot.state_root == rebuilt  # byte-identical result

    return {
        "state_bytes": state_bytes,
        "snapshots": snapshots,
        "cow_ms_per_take": 1000.0 * cow_seconds / snapshots,
        "rebuild_ms_per_take": 1000.0 * rebuild_seconds / snapshots,
        "speedup": rebuild_seconds / max(cow_seconds, 1e-9),
        "dirty_bytes_per_take":
            (manager.stats.dirty_bytes_total - primed_dirty_bytes)
            / max(manager.stats.takes - 1, 1),
        "manager": manager,
    }


def test_incremental_take_speedup(benchmark):
    tables = scaled(4000, 1500)
    row_bytes = scaled(256, 128)
    snapshots = scaled(150, 40)
    result = benchmark.pedantic(
        run_snapshot_bench,
        kwargs={"tables": tables, "row_bytes": row_bytes,
                "snapshots": snapshots},
        rounds=1, iterations=1)
    print()
    print(f"state: {result['state_bytes']:,} B across {tables} tables; "
          f"{result['snapshots']} snapshots")
    print(f"full rebuild: {result['rebuild_ms_per_take']:.3f} ms/take, "
          f"copy-on-write: {result['cow_ms_per_take']:.3f} ms/take "
          f"-> {result['speedup']:.1f}x")
    print(f"dirty payload: {result['dirty_bytes_per_take']:,.0f} B/take "
          f"({100.0 * result['dirty_bytes_per_take'] / result['state_bytes']:.2f}% "
          f"of state)")
    # The acceptance bar: >= 5x faster on a large mostly-idle state, with
    # the identical Merkle root (asserted per-take inside the run).
    assert result["speedup"] >= 5.0


def test_resident_memory_bounded_over_200_snapshots(benchmark):
    tables = scaled(1000, 500)
    row_bytes = scaled(512, 256)
    snapshots = 200  # the acceptance criterion names a 200-snapshot run
    keyframe_interval = 25

    def run():
        state = _build_state(tables, row_bytes)
        manager = SnapshotManager(keyframe_interval=keyframe_interval,
                                  materialized_cache=2)
        state_bytes = len(serialize_state(state))
        for step in range(snapshots):
            dirty = _mutate(state, step, row_bytes) if step else None
            manager.take(state, ExecutionTimestamp(step, 0), dirty_paths=dirty)
        return manager, state_bytes

    manager, state_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    keyframes = sum(1 for sid in manager.snapshot_ids()
                    if manager.is_keyframe(sid))
    delta_bytes = sum(manager.get_incremental(sid).incremental_bytes
                      for sid in manager.snapshot_ids())
    resident = manager.resident_bytes()
    naive = snapshots * state_bytes  # retain-every-full-snapshot design
    print()
    print(f"{snapshots} snapshots of a {state_bytes:,} B state: "
          f"{keyframes} keyframes, resident {resident:,} B "
          f"(naive full retention {naive:,} B, {naive / resident:.1f}x more)")
    assert manager.count == snapshots
    # Bounded *structurally*: what stays resident is keyframes + deltas +
    # the working copy + the small materialisation LRU — nothing else.
    cap = (keyframes + 1 + 2) * state_bytes + delta_bytes  # +working +LRU
    assert resident <= cap * 1.05
    # And the CoW layout stays well under full retention.
    assert resident < naive / 6
    # Every snapshot is still reachable (spot-checkable) on demand.
    probe = manager.snapshot_ids()[len(manager.snapshot_ids()) // 2]
    assert manager.get(probe).verify_root()
