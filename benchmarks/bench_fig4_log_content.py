"""Figure 4 — average log growth by content and compressed size."""

from _bench_utils import duration_or

from repro.experiments import fig4_log_content


def test_fig4_log_content(benchmark, repro_duration):
    duration = duration_or(60.0, repro_duration, smoke=15.0)
    result = benchmark.pedantic(fig4_log_content.run_log_content,
                                kwargs={"duration": duration, "num_players": 3},
                                rounds=1, iterations=1)
    print()
    print("category          MB/minute  fraction")
    for category, rate in sorted(result.mb_per_minute_by_category.items()):
        print(f"{category:16s}  {rate:9.3f}  {result.breakdown.fraction(category) * 100:6.1f}%")
    print(f"{'total':16s}  {result.total_mb_per_minute:9.3f}  100.0%")
    print(f"{'compressed':16s}  {result.compressed_mb_per_minute:9.3f}")
    # Shape: replay information dominates the log; TimeTracker entries are the
    # largest single category; compression helps substantially.
    assert result.replay_fraction > 0.5
    assert result.breakdown.fraction("timetracker") >= result.breakdown.fraction("maclayer")
    assert result.compressed_mb_per_minute < 0.7 * result.total_mb_per_minute
