"""Streaming bounded-memory audit vs the materializing path.

Audits one machine's archived log both ways (see
:mod:`repro.experiments.stream_audit`) and asserts the streaming pipeline's
contract: structurally identical results, >= 5x lower peak traced memory
once the bzip2-9 compressor floor the materializing cost model pays is
accounted for (and >= 5x raw at full scale, where O(log) terms dwarf that
fixed ~7.5 MB working set), and throughput within 0.9x of the
materializing path.
"""

from _bench_utils import duration_or, scaled, smoke_mode

from repro.experiments import stream_audit


def test_stream_audit_bounded_memory(benchmark, repro_duration):
    duration = duration_or(50.0, repro_duration, smoke=16.0)
    # Full scale batches ~4 segments per chunk (fewer boundary-snapshot
    # fetches); the tiny smoke log streams segment by segment so the chunk
    # bound stays meaningfully below the materialized log.
    chunks = scaled(max(10, int(duration // 2)), 2 * int(duration))
    result = benchmark.pedantic(
        stream_audit.run_stream_audit_bench,
        kwargs={"duration": duration, "payload_bytes": 16000,
                "snapshot_interval": 0.5, "chunks": chunks},
        rounds=1, iterations=1)
    print()
    print(f"archived: {result.segments} segments, {result.entries} entries, "
          f"{result.raw_bytes:,} B raw; streamed as {result.chunks} chunks "
          f"(peak {result.peak_chunk_entries} entries resident)")
    print(f"peak traced memory: materializing {result.materializing_peak:,} B "
          f"vs streaming {result.streaming_peak:,} B "
          f"({result.peak_ratio:.1f}x; {result.data_peak_ratio:.1f}x after "
          f"subtracting the {result.bz2_floor:,} B bzip2-9 floor)")
    print(f"wall: materializing {result.materializing_wall:.2f} s vs "
          f"streaming {result.streaming_wall:.2f} s "
          f"({result.throughput_ratio:.2f}x throughput)")

    # The streamed audit is the materializing audit, structurally — verdict,
    # counters, replay report and modelled costs — with no fallback taken.
    assert result.identical
    assert result.fallback_reason is None
    # Bounded memory: at full scale ("a long archived run") the raw
    # tracemalloc peak drops >= 5x, and >= 5x also holds after subtracting
    # the fixed bzip2-9 working set both paths share.  The smoke log is too
    # small for O(log) terms to dwarf that ~7.5 MB floor, so it asserts the
    # same shape at reduced thresholds.
    assert result.data_peak_ratio >= scaled(5.0, 3.5)
    assert result.peak_ratio >= scaled(5.0, 1.8)
    # Streaming must not cost meaningful throughput (>= 0.9x).
    assert result.throughput_ratio >= (0.9 if not smoke_mode() else 0.8)
    # The pipeline really chunked (memory bound is meaningful).
    assert result.chunks >= 8
    assert result.peak_chunk_entries < result.entries
