"""Figure 9 — efficiency of spot checking on the client/server (database) workload."""

from _bench_utils import duration_or

from repro.experiments import fig9_spot_check


def test_fig9_spot_checking(benchmark, repro_duration):
    duration = duration_or(180.0, repro_duration, smoke=60.0)
    result = benchmark.pedantic(
        fig9_spot_check.run_spot_check,
        kwargs={"duration": duration, "snapshot_interval": duration / 10.0,
                "k_values": (1, 3, 5, 8)},
        rounds=1, iterations=1)
    print()
    print(f"segments: {result.segments}, full audit: "
          f"{result.full_audit_seconds:.1f} s / {result.full_audit_bytes / 1e6:.1f} MB")
    print("k  chunks  time vs full audit  data vs full audit")
    for point in result.points:
        print(f"{point.k}  {point.chunks_audited:6d}  "
              f"{point.avg_time_fraction * 100:17.1f}%  "
              f"{point.avg_data_fraction * 100:17.1f}%")
    # Shape: cost grows with k (roughly linearly) plus a fixed per-chunk cost
    # for transferring the snapshots; every chunk of an honest machine passes.
    assert all(p.all_passed for p in result.points)
    times = [p.avg_time_fraction for p in result.points]
    data = [p.avg_data_fraction for p in result.points]
    assert times == sorted(times)
    assert data == sorted(data)
    assert data[0] > 0.0  # fixed per-chunk snapshot cost
