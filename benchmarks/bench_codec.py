"""Versioned wire codec: v1 JSON+bz2 vs v2 binary vs v3 typed+lazy.

Runs :mod:`repro.experiments.codec_bench` — one byte-dense recorded pair,
archived in all three formats — and asserts the headline numbers:
>= 3x faster one-shot decode for v2 over v1, and for the v3 typed codec
>= 3x decode entries/s over the *checked-in* v2 baseline (~95k e/s) plus
>= 1.3x end-to-end streaming-audit throughput over the checked-in v2 run,
with stored bytes <= v2 and a chain-verify-only pass that materializes
zero content dicts.  All formats' audits must be structurally identical.

Also emits ``BENCH_codec.json`` (next to the repo root) with the full
measurement table, including each format's cProfile decode hotspots; the
checked-in copy is from a full-scale run and CI uploads the smoke-scale one
as an artifact.
"""

import json
from pathlib import Path

from _bench_utils import duration_or, scaled, smoke_mode

from repro.experiments import codec_bench

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_codec.json"

#: the checked-in full-scale v2 numbers this PR's targets are measured
#: against (BENCH_codec.json before the typed codec landed): decode capped
#: at ~95k entries/s by the per-entry ``json.loads``, end-to-end streaming
#: audit at 0.287 s over the same recorded workload.
V2_CHECKED_IN_DECODE_EPS = 95_337.0
V2_CHECKED_IN_E2E_WALL_S = 0.287


def test_codec_binary_vs_json(benchmark, repro_duration):
    duration = duration_or(30.0, repro_duration, smoke=6.0)
    result = benchmark.pedantic(
        codec_bench.run_codec_bench,
        kwargs={"duration": duration, "payload_bytes": 16000,
                "snapshot_interval": 0.5,
                "repetitions": scaled(3, 2),
                "chunks": scaled(20, 12)},
        rounds=1, iterations=1)
    print()
    print(f"archived: {result.segments} segments, {result.entries} entries, "
          f"{result.raw_bytes:,} B raw")
    for version in codec_bench.FORMAT_VERSIONS:
        point = result.points[version]
        print(f"v{version}: stored {point.stored_bytes:,} B; "
              f"encode {result.entries_per_second(version, 'encode_wall'):,.0f} e/s, "
              f"decode {result.entries_per_second(version, 'decode_wall'):,.0f} e/s, "
              f"verify parses {point.verify_only_materializations:,}, "
              f"stream audit {point.audit_wall:.3f} s")
    print(f"v2 speedup: decode {result.decode_ratio:.2f}x, stream decode "
          f"{result.stream_decode_ratio:.2f}x, e2e audit "
          f"{result.e2e_ratio:.2f}x; stored size {result.stored_ratio:.1f}x")
    print(f"v3 over v2: decode {result.decode_ratio_v3:.2f}x, stream decode "
          f"{result.stream_decode_ratio_v3:.2f}x, e2e audit "
          f"{result.e2e_ratio_v3:.2f}x; stored size "
          f"{result.stored_ratio_v3:.2f}x "
          f"({result.points[3].stored_bytes_uncompressed:,} B uncompressed)")

    payload = result.to_dict()
    payload["mode"] = "smoke" if smoke_mode() else "full"
    if not smoke_mode():
        # The documented v3 claims are measured against the *checked-in*
        # full-scale v2 numbers (same workload, pre-typed-codec pipeline),
        # so the emitted row carries those ratios explicitly.
        payload["checked_in_v2_baseline"] = {
            "decode_entries_per_s": V2_CHECKED_IN_DECODE_EPS,
            "stream_audit_wall_s": V2_CHECKED_IN_E2E_WALL_S,
            "v3_decode_speedup": round(
                result.entries_per_second(3, "decode_wall")
                / V2_CHECKED_IN_DECODE_EPS, 3),
            "v3_stream_audit_speedup": round(
                V2_CHECKED_IN_E2E_WALL_S / result.points[3].audit_wall, 3),
        }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH.name}")

    # The codec API's core contract: the wire format is invisible above the
    # codec layer — same verdict, evidence, replay report and modelled costs.
    assert result.identical
    assert result.verdict == "pass"
    # Headline perf claims.  The tiny smoke log still shows the same shape
    # but with less margin, so it asserts reduced thresholds; the full-scale
    # floors are the documented claims.
    assert result.decode_ratio >= scaled(3.0, 2.2)
    assert result.stream_decode_ratio >= scaled(3.0, 2.2)
    assert result.e2e_ratio >= scaled(1.3, 1.15)
    # v2 trades stored bytes for speed; the archive records the v1-modelled
    # size, so the audit cost model is unchanged — but the trade must be
    # visible, not accidental.
    assert result.stored_ratio > 1.0
    # The v3 typed codec's targets, measured against the checked-in v2
    # baseline at full scale (same workload: duration 30 s, 16 kB payloads).
    # The smoke workload is a different size, so smoke asserts the in-run
    # ratio and an absolute decode floor generous enough for slow runners —
    # this is the CI regression guard for the v3 decode path.
    v3_decode_eps = result.entries_per_second(3, "decode_wall")
    if smoke_mode():
        assert v3_decode_eps >= 120_000.0
        assert result.decode_ratio_v3 >= 1.8
        assert result.stream_decode_ratio_v3 >= 1.8
        # Smoke audit walls are ~50 ms, so the e2e ratio is noise-dominated;
        # this floor only guards against v3 becoming outright slower.
        assert result.e2e_ratio_v3 >= 0.75
    else:
        assert v3_decode_eps >= 3.0 * V2_CHECKED_IN_DECODE_EPS
        assert result.decode_ratio_v3 >= 2.0
        assert result.stream_decode_ratio_v3 >= 2.0
        # >= 1.3x end-to-end streaming-audit throughput vs the checked-in
        # v2 run (the json.loads-per-entry era) over the same workload.
        assert result.points[3].audit_wall <= V2_CHECKED_IN_E2E_WALL_S / 1.3
    # Compressed v3 archives must not cost more than v2; the uncompressed
    # decode-path setting is reported alongside.
    assert result.points[3].stored_bytes <= result.points[2].stored_bytes
    assert result.points[3].stored_bytes_uncompressed is not None
    # Lazy content: the chain-verify + cost-accounting pass touches zero
    # content dicts under v3, while v1/v2 parse every entry.
    assert result.points[3].verify_only_materializations == 0
    assert result.points[1].verify_only_materializations >= result.entries
    assert result.points[2].verify_only_materializations >= result.entries
    # The profile explains the numbers: v1 decode pays bz2, v2/v3 do not,
    # and the v3 loop never enters the content decoder at all.
    v1_functions = " ".join(str(row["function"])
                            for row in result.points[1].decode_profile)
    v2_functions = " ".join(str(row["function"])
                            for row in result.points[2].decode_profile)
    v3_functions = " ".join(str(row["function"])
                            for row in result.points[3].decode_profile)
    assert "bz2" in v1_functions.lower()
    assert "bz2" not in v2_functions.lower()
    assert "decode_content" not in v3_functions
