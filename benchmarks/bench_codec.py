"""Versioned wire codec: v2 binary vs v1 JSON+bz2 on the hot path.

Runs :mod:`repro.experiments.codec_bench` — one byte-dense recorded pair,
archived in both formats — and asserts the redesign's headline numbers:
>= 3x faster one-shot decode and >= 1.5x faster end-to-end streaming audit
at full scale, with the two formats' audits structurally identical.

Also emits ``BENCH_codec.json`` (next to the repo root) with the full
measurement table, including each format's cProfile decode hotspots; the
checked-in copy is from a full-scale run and CI uploads the smoke-scale one
as an artifact.
"""

import json
from pathlib import Path

from _bench_utils import duration_or, scaled, smoke_mode

from repro.experiments import codec_bench

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_codec.json"


def test_codec_binary_vs_json(benchmark, repro_duration):
    duration = duration_or(30.0, repro_duration, smoke=6.0)
    result = benchmark.pedantic(
        codec_bench.run_codec_bench,
        kwargs={"duration": duration, "payload_bytes": 16000,
                "snapshot_interval": 0.5,
                "repetitions": scaled(3, 2),
                "chunks": scaled(20, 12)},
        rounds=1, iterations=1)
    print()
    print(f"archived: {result.segments} segments, {result.entries} entries, "
          f"{result.raw_bytes:,} B raw")
    for version in (1, 2):
        point = result.points[version]
        print(f"v{version}: stored {point.stored_bytes:,} B; "
              f"encode {result.entries_per_second(version, 'encode_wall'):,.0f} e/s, "
              f"decode {result.entries_per_second(version, 'decode_wall'):,.0f} e/s, "
              f"stream audit {point.audit_wall:.3f} s")
    print(f"v2 speedup: decode {result.decode_ratio:.2f}x, stream decode "
          f"{result.stream_decode_ratio:.2f}x, e2e audit "
          f"{result.e2e_ratio:.2f}x; stored size {result.stored_ratio:.1f}x")

    payload = result.to_dict()
    payload["mode"] = "smoke" if smoke_mode() else "full"
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH.name}")

    # The codec API's core contract: the wire format is invisible above the
    # codec layer — same verdict, evidence, replay report and modelled costs.
    assert result.identical
    assert result.verdict == "pass"
    # Headline perf claims.  The tiny smoke log still shows the same shape
    # (measured ~3.5x / ~1.5x) but with less margin, so it asserts reduced
    # thresholds; the full-scale floors are the documented claims.
    assert result.decode_ratio >= scaled(3.0, 2.2)
    assert result.stream_decode_ratio >= scaled(3.0, 2.2)
    assert result.e2e_ratio >= scaled(1.5, 1.15)
    # v2 trades stored bytes for speed; the archive records the v1-modelled
    # size, so the audit cost model is unchanged — but the trade must be
    # visible, not accidental.
    assert result.stored_ratio > 1.0
    # The profile explains the numbers: v1 decode pays bz2, v2 does not.
    v1_functions = " ".join(str(row["function"])
                            for row in result.points[1].decode_profile)
    v2_functions = " ".join(str(row["function"])
                            for row in result.points[2].decode_profile)
    assert "bz2" in v1_functions.lower()
    assert "bz2" not in v2_functions.lower()
