"""Figure 8 — frame rate with concurrent online audits, and online cheat detection."""

from _bench_utils import duration_or

from repro.experiments import fig8_online_audit


def test_fig8_online_auditing(benchmark, repro_duration):
    duration = duration_or(30.0, repro_duration, smoke=12.0)
    result = benchmark.pedantic(fig8_online_audit.run_online_audit,
                                kwargs={"duration": duration, "num_players": 3,
                                        "audit_interval": duration / 4.0},
                                rounds=1, iterations=1)
    print()
    print("online audits per machine  fps")
    for count, fps in sorted(result.fps_by_audit_count.items()):
        print(f"{count:25d}  {fps:.0f}")
    when = (f"{result.detection_time:.1f} s" if result.detection_time is not None
            else "not detected")
    print(f"online detection of {result.cheat_name}: {when} "
          f"({result.audit_passes} audit passes)")
    # Shape: frame rate drops sub-linearly with the number of audits, and the
    # cheat is detected while the game is still in progress.
    fps = result.fps_by_audit_count
    assert fps[0] > fps[1] > fps[2]
    assert (fps[0] - fps[2]) < 0.5 * fps[0]
    assert result.detection_time is not None and result.detection_time <= duration
