"""Durable log archive + fleet audit-ingest pipeline.

Section 4.2's logs must outlive the execution that produced them.  This
benchmark runs the whole archive lifecycle: a fleet records while streaming
sealed segments, boundary snapshots and peer authenticators to the
:class:`~repro.service.ingest.AuditIngestService`; the archive is reopened
purely from its manifest (simulating a process restart); every machine is
audited from memory and from the archive — the serial results must be
structurally identical and the parallel engine must agree; retention GC
truncates each machine at its midpoint checkpoint and the suffixes are
re-audited from the boundary snapshots.  Reported numbers: pure archival
ingest throughput (entries/s, MB/s of raw log) and the modelled audit cost
on both paths (equal by construction — the archive round-trip is bit-exact).
"""

from _bench_utils import duration_or, scaled

from repro.experiments import archive_ingest


def test_archive_ingest_pipeline(benchmark, repro_duration):
    duration = duration_or(30.0, repro_duration, smoke=8.0)
    num_machines = scaled(16, 4)
    snapshot_interval = scaled(10.0, 3.0)
    workers = scaled(4, 2)
    result = benchmark.pedantic(
        archive_ingest.run_archive_ingest,
        kwargs={"num_machines": num_machines, "duration": duration,
                "snapshot_interval": snapshot_interval, "workers": workers},
        rounds=1, iterations=1)
    print()
    print(f"archived: {result.archive.segment_files} segments, "
          f"{result.archive.entries} entries, "
          f"{result.archive.stored_bytes:,} B stored "
          f"({result.archive.compression_ratio:.2f}x of raw)")
    print(f"ingest throughput: {result.entries_per_second:,.0f} entries/s "
          f"({result.raw_mb_per_second:.1f} MB/s raw)")
    print(f"modelled audit cost: memory {result.memory_audit_seconds:.1f} s, "
          f"archive {result.archive_audit_seconds:.1f} s")
    print(f"GC reclaimed {result.gc_reclaimed_fraction * 100:.0f}% "
          f"({result.entries_before_gc} -> {result.entries_after_gc} entries)")

    # Restart recovery must be clean: manifest replay, chains verified, no
    # manifest/data divergence.
    assert result.recovery.clean
    assert result.recovery.machines == num_machines
    # Archive-backed audits are *identical* to in-memory ones: same verdicts
    # on every path, structurally equal serial results, same modelled cost.
    assert result.serial_results_equal
    assert result.verdicts_identical
    assert result.all_passed
    assert result.archive_audit_seconds == result.memory_audit_seconds
    # The archive actually compresses (VMM pre-pass + bzip2)...
    assert result.archive.compression_ratio < 0.6
    # ...GC reclaims a meaningful prefix at the midpoint checkpoint...
    assert result.gc_reclaimed_fraction > 0.1
    # ...and the throughput measurement produced a real number.
    assert result.entries_per_second > 0
