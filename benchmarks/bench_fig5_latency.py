"""Figure 5 — ping round-trip times under the five configurations."""

from _bench_utils import scaled

from repro.avmm.config import Configuration
from repro.experiments import fig5_latency


def test_fig5_ping_rtt(benchmark):
    result = benchmark.pedantic(fig5_latency.run_latency, kwargs={"pings": scaled(100, 40)},
                                rounds=1, iterations=1)
    print()
    print("configuration  median (ms)  5th pct (ms)  95th pct (ms)")
    for configuration, summary in result.summaries.items():
        print(f"{configuration.label:13s}  {summary.median * 1000:11.3f}  "
              f"{summary.p05 * 1000:12.3f}  {summary.p95 * 1000:13.3f}")
    # Shape: monotone increase across configurations, ~0.2 ms bare hardware,
    # a few ms for the full system (signatures dominate).
    medians = [result.summaries[c].median for c in Configuration]
    assert medians == sorted(medians)
    assert result.median_ms(Configuration.BARE_HW) < 0.5
    assert result.median_ms(Configuration.AVMM_NOSIG) > 1.0
    assert 2.0 < result.median_ms(Configuration.AVMM_RSA768) < 20.0
