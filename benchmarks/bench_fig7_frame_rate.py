"""Figure 7 — frame rate under the five configurations (plus the §6.10 ablation)."""

from _bench_utils import duration_or

from repro.avmm.config import Configuration
from repro.experiments import fig7_frame_rate


def test_fig7_frame_rate(benchmark, repro_duration):
    duration = duration_or(20.0, repro_duration, smoke=8.0)
    result = benchmark.pedantic(fig7_frame_rate.run_frame_rate,
                                kwargs={"duration": duration, "num_players": 3},
                                rounds=1, iterations=1)
    print()
    print("configuration  avg fps  drop vs bare-hw")
    for configuration in Configuration:
        print(f"{configuration.label:13s}  {result.average_fps(configuration):7.0f}  "
              f"{result.relative_drop(configuration) * 100:6.1f}%")
    pinned_delta = result.average_fps(Configuration.AVMM_RSA768) \
        - result.pinned_sample.frames_per_second
    print(f"ablation (Section 6.10): daemon pinned with the game costs "
          f"{pinned_delta:.0f} fps")
    # Shape: bare hardware fastest (~158 fps); recording is the biggest single
    # drop; the full AVMM costs on the order of 10-20 %.
    assert result.average_fps(Configuration.BARE_HW) > 150
    drop = result.relative_drop(Configuration.AVMM_RSA768)
    assert 0.05 < drop < 0.30
    norec = result.average_fps(Configuration.VMWARE_NOREC)
    rec = result.average_fps(Configuration.VMWARE_REC)
    assert (norec - rec) > (rec - result.average_fps(Configuration.AVMM_RSA768))
    assert pinned_delta > 0
