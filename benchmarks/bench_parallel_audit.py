"""Parallel batch-audit engine — near-linear speedup on a 16-machine fleet.

Audits of a fleet are embarrassingly parallel (Sections 6.6, 6.12): every
machine's log, and with snapshots every chunk of a log, is an independent
work item.  This benchmark records a fleet of hosted-database pairs, audits
it on the :class:`~repro.audit.engine.AuditScheduler` at 1/2/4(/8) workers,
and reports the *modelled* audit time (calibrated per-chunk costs scheduled
onto the workers — hardware-independent, like every number the reproduction
claims) alongside the measured wall-clock of the real worker pool (which
depends on the host's core count, e.g. CI runners).
"""

from _bench_utils import duration_or, scaled, smoke_mode

from repro.experiments import parallel_audit


def test_parallel_audit_speedup(benchmark, repro_duration):
    duration = duration_or(30.0, repro_duration, smoke=8.0)
    num_machines = scaled(16, 8)
    worker_counts = scaled((1, 2, 4, 8), (1, 4))
    result = benchmark.pedantic(
        parallel_audit.run_parallel_audit,
        kwargs={"num_machines": num_machines, "duration": duration,
                "worker_counts": worker_counts},
        rounds=1, iterations=1)
    print()
    print("workers  executor  chunks  modelled audit  modelled speedup  measured wall")
    for point in result.points:
        print(f"{point.workers:7d}  {point.executor:8s}  {point.chunks:6d}  "
              f"{point.modelled_wall_seconds:12.1f} s  "
              f"{result.modelled_speedup(point.workers):15.2f}x  "
              f"{point.measured_wall_seconds:11.2f} s")
    # Identical verdicts at every worker count, and every machine passes.
    assert result.verdicts_identical
    assert result.all_passed
    # Near-linear speedup: >= 2.5x at 4 workers on the fleet scenario.
    assert result.modelled_speedup(4) >= 2.5
    if not smoke_mode():
        assert result.modelled_speedup(2) >= 1.6
        assert result.modelled_speedup(8) >= 4.0
