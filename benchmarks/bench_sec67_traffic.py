"""Section 6.7 — raw network traffic of the machine hosting the game."""

from _bench_utils import duration_or

from repro.avmm.config import Configuration
from repro.experiments import sec67_traffic


def test_sec67_network_traffic(benchmark, repro_duration):
    duration = duration_or(20.0, repro_duration, smoke=8.0)
    result = benchmark.pedantic(
        sec67_traffic.run_traffic,
        kwargs={"duration": duration, "num_players": 3,
                "configurations": list(Configuration)},
        rounds=1, iterations=1)
    print()
    print("configuration  kbps   packets/s")
    for configuration, kbps in result.kbps_by_configuration.items():
        print(f"{configuration.label:13s}  {kbps:6.1f}  "
              f"{result.packets_per_second[configuration]:8.1f}")
    print(f"accountability overhead: {result.overhead_factor:.1f}x bare hardware")
    # Shape: accountability multiplies the small-packet game traffic by a
    # noticeable factor, yet the absolute rate stays far below broadband.
    assert result.overhead_factor > 1.5
    assert result.kbps_by_configuration[Configuration.AVMM_RSA768] < 2000.0
