"""Adversary scenario matrix — every misbehavior detected, nobody framed.

Runs the Byzantine scenario matrix (:mod:`repro.adversary.matrix`): each
cell records a small fleet with one adversary from the catalog, audits it in
the cell's mode (full / spot / online / archive), and checks the paper's
claim end to end — misbehavior detected, evidence independently verifiable,
honest machines never accused.  Smoke mode runs the one-cell-per-adversary
kv subset (the CI gate); the default adds game-workload cells for the
second workload axis.  The full {adversary x workload x mode x fleet-size}
grid runs as the slow-marked test in ``tests/test_adversary_matrix.py``.
"""

from _bench_utils import scaled

from repro.adversary.matrix import CellSpec, ScenarioMatrix


def _cells(matrix: ScenarioMatrix, include_game: bool):
    cells = matrix.smoke_cells()
    if include_game:
        seed = matrix.base_seed + 500
        for index, (adversary, mode) in enumerate([
                ("honest", "full"),
                ("cheating-guest", "full"),
                ("tamper-modify", "spot"),
                ("hidden-nondeterminism", "online"),
                ("lying-shipper-segments", "archive"),
                ("equivocating-peer", "full")]):
            cells.append(CellSpec(adversary, "game", mode, 3, seed + index))
    return cells


def test_adversary_matrix_detection(benchmark):
    matrix = ScenarioMatrix()
    cells = _cells(matrix, include_game=scaled(True, False))
    report = benchmark.pedantic(matrix.run, args=(cells,),
                                rounds=1, iterations=1)
    print()
    print(f"{'cell':<58} {'detected':>8} {'verdict':>10} {'evidence':>8}")
    for cell in report.cells:
        print(f"{cell.spec.label():<58} {str(cell.detected):>8} "
              f"{cell.verdict or '-':>10} "
              f"{'ok' if cell.evidence_verified else 'BAD':>8}")
    # The acceptance criteria of the matrix, at benchmark scale:
    # every misbehaving cell detected, with verifiable evidence...
    assert report.detection_rate == 1.0
    assert report.all_evidence_verified
    # ...and not a single honest machine (or honest control cell) accused.
    assert report.false_accusation_count == 0
    assert all(not cell.detected for cell in report.honest_cells)
    assert report.ok
    # The subset still spans the adversary catalog and >= 2 audit modes.
    assert len(report.adversaries()) >= 7
    assert len({cell.spec.mode for cell in report.cells}) >= 2
