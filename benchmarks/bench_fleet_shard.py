"""Fleet-scale sharded audit: record → ship → ingest → stream-audit.

Runs :mod:`repro.experiments.fleet_shard` — a fleet of server/client pairs
recorded under ``avmm-rsa768``, shipping sealed segments, snapshots and
collected authenticators to consistent-hash home shards, audited end to end
by the :class:`~repro.service.fleet.FleetCoordinator` — and asserts the
fleet-sharding contract:

* every honest machine passes and none is ever convicted;
* the injected cross-shard equivocator (alternate chain shipped to a shard
  that never saw the genuine commitments) is convicted from gossiped,
  re-verified :class:`~repro.audit.multiparty.EquivocationProof`\\ s alone;
* the modelled audit cost scales near-linearly in shard count — makespan
  (slowest shard's summed per-machine :class:`~repro.audit.verdict.AuditCost`)
  shrinks monotonically and parallel efficiency stays above the
  consistent-hash placement's natural balance floor.

Full scale is the ISSUE's 1,000-machine fleet over 4 shards; smoke scale
keeps the same shape at 120 machines so the assertions still bind.  Emits
``BENCH_fleet.json`` (repo root); the checked-in copy is from a full-scale
run and CI uploads the smoke-scale one as an artifact.
"""

import json
from pathlib import Path

from _bench_utils import duration_or, scaled, smoke_mode

from repro.experiments import fleet_shard

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

#: modelled-efficiency floors at 4 shards.  The ring places ~0.80 of ideal
#: at 1,000 machines and ~0.71 at 120 (max-loaded shard vs mean), so these
#: leave headroom for per-machine cost variance without letting the curve
#: go sublinear.
FULL_EFFICIENCY_FLOOR = 0.70
SMOKE_EFFICIENCY_FLOOR = 0.55


def test_fleet_shard_scaling(benchmark, repro_duration, tmp_path):
    num_machines = scaled(1000, 120)
    duration = duration_or(1.5, repro_duration, smoke=1.0)
    shard_count = 4
    result = benchmark.pedantic(
        fleet_shard.run_fleet_shard,
        kwargs={"num_machines": num_machines, "duration": duration,
                "shard_count": shard_count, "seed": 7,
                "snapshot_interval": 0.5, "workdir": tmp_path,
                "scaling_shards": (1, 2, 4, 8)},
        rounds=1, iterations=1)

    print()
    print(f"fleet: {result.num_machines} machines over {result.shard_count} "
          f"shards, {result.duration:.1f} s recorded; record wall "
          f"{result.record_wall_seconds:.1f} s, audit wall "
          f"{result.audit_wall_seconds:.1f} s")
    for point in result.scaling:
        print(f"  {point.shards} shard(s): makespan "
              f"{point.makespan_seconds:.1f} s, speedup {point.speedup:.2f}x, "
              f"efficiency {point.efficiency:.2f}")
    print(f"equivocator {result.equivocator} -> {result.equivocation_shard}, "
          f"convicted: {result.equivocator in result.convicted}")

    payload = {"fleet": result.to_dict(),
               "efficiency_floor": scaled(FULL_EFFICIENCY_FLOOR,
                                          SMOKE_EFFICIENCY_FLOOR),
               "mode": "smoke" if smoke_mode() else "full"}
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH.name}")

    # Conviction is cross-shard by construction: the alternate chain went to
    # a shard that never held the genuine commitments, so only the pooled
    # gossip could have produced the proof.
    assert result.equivocator in result.convicted
    assert result.equivocation_shard != ""
    assert result.honest_convicted == []
    assert result.honest_all_passed, result.verdicts
    # Every machine's chain landed on exactly one shard (no forked archive).
    assert sum(result.per_shard_machines.values()) == num_machines
    assert result.cross_shard_forks == []

    # Near-linear modelled scaling in shard count: makespan never grows as
    # shards are added, and at the bench's shard count the parallel
    # efficiency clears the placement-balance floor.
    makespans = [point.makespan_seconds for point in result.scaling]
    assert all(later <= earlier + 1e-9
               for earlier, later in zip(makespans, makespans[1:])), makespans
    by_shards = {point.shards: point for point in result.scaling}
    assert by_shards[1].efficiency == 1.0
    target = by_shards[shard_count]
    floor = scaled(FULL_EFFICIENCY_FLOOR, SMOKE_EFFICIENCY_FLOOR)
    assert target.efficiency >= floor, (target.efficiency, floor)
    assert target.speedup >= shard_count * floor
