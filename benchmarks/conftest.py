"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (seconds of simulated time rather than half-hour games) so the whole
suite completes in minutes.  The printed rows/series have the same structure
as the paper's artefacts; EXPERIMENTS.md records the paper-vs-measured
comparison from a representative run.

Scale can be increased with ``--repro-duration`` (seconds of simulated game
time per experiment), or decreased with ``--smoke`` (equivalently
``REPRO_BENCH_SMOKE=1``), the CI fast mode: tiny workloads, one repetition,
same shape assertions.
"""

import os
import sys

if "repro" not in sys.modules:
    try:  # the installed package (pip install -e .) wins
        import repro  # noqa: F401
    except ImportError:  # clean checkout: fall back to the src/ layout
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

import _bench_utils


def pytest_addoption(parser):
    parser.addoption("--repro-duration", type=float, default=None,
                     help="simulated seconds per experiment (default: per-benchmark)")
    parser.addoption("--smoke", action="store_true", default=False,
                     help="run tiny CI-sized workloads (also: REPRO_BENCH_SMOKE=1)")


def pytest_configure(config):
    _bench_utils.set_smoke(config.getoption("--smoke"))


@pytest.fixture(scope="session")
def repro_duration(request):
    """Optional duration override for every experiment."""
    return request.config.getoption("--repro-duration")


@pytest.fixture(scope="session")
def smoke(request):
    """True when the suite runs in CI smoke mode."""
    return _bench_utils.smoke_mode()
