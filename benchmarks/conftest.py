"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (seconds of simulated time rather than half-hour games) so the whole
suite completes in minutes.  The printed rows/series have the same structure
as the paper's artefacts; EXPERIMENTS.md records the paper-vs-measured
comparison from a representative run.

Scale can be increased with ``--repro-duration`` (seconds of simulated game
time per experiment).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--repro-duration", type=float, default=None,
                     help="simulated seconds per experiment (default: per-benchmark)")


@pytest.fixture(scope="session")
def repro_duration(request):
    """Optional duration override for every experiment."""
    return request.config.getoption("--repro-duration")
