"""Table 1 — cheat detectability, plus the Section 6.3 functionality check."""

from _bench_utils import duration_or

from repro.experiments import table1
from repro.game.cheats.implementations import AimbotCheat, UnlimitedAmmoCheat


def test_table1_catalog(benchmark):
    """Regenerate the Table 1 rows from the cheat catalogue."""
    result = benchmark(table1.run_table1, run_functional=False)
    print()
    for label, count in result.summary.as_rows():
        print(f"{label}: {count}")
    assert result.summary.total == 26
    assert result.summary.detectable == 26
    assert result.summary.not_detectable == 0


def test_table1_functional_check(benchmark, repro_duration):
    """Section 6.3: a cheated game is audited and the cheater is caught."""
    duration = duration_or(8.0, repro_duration, smoke=4.0)

    def run():
        return [table1.run_functional_check(cheat, duration=duration, num_players=2)
                for cheat in (UnlimitedAmmoCheat(), AimbotCheat())]

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for check in checks:
        print(f"{check.cheat_name}: cheater "
              f"{'detected' if check.cheater_detected else 'MISSED'}, honest audits "
              f"{'pass' if check.honest_players_passed else 'FALSE POSITIVE'}")
    assert all(c.cheater_detected and c.honest_players_passed for c in checks)
