"""Telemetry overhead: the observability layer must be (nearly) free.

Runs :mod:`repro.experiments.observability` twice over the streaming-audit
bench's byte-dense workload — telemetry off (the no-op ``NULL_OBS`` path)
and telemetry on (metrics + tracing + progress) — and asserts the
subsystem's contract:

* the audit results are *structurally identical* (verdict, evidence,
  modelled costs) — telemetry observes, it never participates;
* the telemetry-on audit wall stays within 5% of telemetry-off at full
  scale (best-of-N; the tiny smoke log amplifies constant costs and
  timer noise, so it asserts a looser 25% bound on a sub-100ms audit);
* an observed fleet run exports a Chrome ``trace_event`` file that
  validates against the schema and covers all four pipeline layers
  (monitor -> shipper -> ingest -> audit).

Also emits ``BENCH_obs.json`` (repo root) with both measurement tables;
the checked-in copy is from a full-scale run and CI uploads the
smoke-scale one (plus the sample trace) as artifacts.
"""

import json
from pathlib import Path

from _bench_utils import duration_or, scaled, smoke_mode

from repro.experiments import observability

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
TRACE_PATH = Path(__file__).resolve().parents[1] / "trace_sample.json"


def test_obs_overhead_and_trace(benchmark, repro_duration):
    duration = duration_or(50.0, repro_duration, smoke=8.0)
    overhead = benchmark.pedantic(
        observability.run_obs_overhead,
        kwargs={"duration": duration, "payload_bytes": 16000,
                "snapshot_interval": 0.5,
                "chunks": scaled(50, 12),
                "repetitions": scaled(5, 2)},
        rounds=1, iterations=1)
    observed = observability.run_observed_fleet(
        num_machines=scaled(4, 2),
        duration=scaled(12.0, 4.0),
        trace_path=str(TRACE_PATH))

    print()
    print(f"overhead workload: {overhead.entries} archived entries, "
          f"{overhead.chunks} chunks, best of {overhead.repetitions}")
    print(f"audit wall: off {overhead.audit_wall_off:.3f} s vs "
          f"on {overhead.audit_wall_on:.3f} s "
          f"({overhead.audit_overhead:+.1%}); record: "
          f"off {overhead.record_wall_off:.2f} s vs "
          f"on {overhead.record_wall_on:.2f} s")
    print(f"observed fleet: {observed.spans_recorded} spans, layers "
          f"{observed.layer_coverage}, trace valid: {observed.trace_valid}")

    payload = {"overhead": overhead.to_dict(),
               "observed_fleet": observed.to_dict(),
               "mode": "smoke" if smoke_mode() else "full"}
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH.name} and {TRACE_PATH.name}")

    # Determinism invariant: telemetry on/off yields the same audit result,
    # byte for byte (verdict, evidence, counters, modelled AuditCost).
    assert overhead.identical
    assert overhead.verdict == "pass"
    assert overhead.spans_recorded > 0
    # The telemetry tax on the audit hot path.  Full scale: < 5%.  The smoke
    # audit finishes in well under 100 ms, where scheduling jitter alone can
    # swing best-of-2 by double digits, so it only pins a loose ceiling.
    assert overhead.audit_overhead < scaled(0.05, 0.25)
    # The exported fleet trace is loadable and covers the whole pipeline.
    assert observed.trace_valid, observed.trace_errors
    assert observed.all_layers_covered, observed.layer_coverage
    assert observed.all_passed, observed.verdicts
