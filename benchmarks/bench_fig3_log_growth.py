"""Figure 3 — growth of the AVMM log and an equivalent VMware log over time."""

from _bench_utils import duration_or

from repro.experiments import fig3_log_growth


def test_fig3_log_growth(benchmark, repro_duration):
    duration = duration_or(60.0, repro_duration, smoke=15.0)
    result = benchmark.pedantic(fig3_log_growth.run_log_growth,
                                kwargs={"duration": duration, "num_players": 3,
                                        "sample_interval": duration / 6.0},
                                rounds=1, iterations=1)
    print()
    print("minutes  AVMM log (MB)  equivalent VMware log (MB)")
    for (minutes, avmm_mb), (_, vmware_mb) in zip(result.avmm_series,
                                                  result.vmware_series):
        print(f"{minutes:7.2f}  {avmm_mb:13.2f}  {vmware_mb:26.2f}")
    print(f"steady-state growth: AVMM {result.avmm_mb_per_minute:.2f} MB/min, "
          f"VMware {result.vmware_mb_per_minute:.2f} MB/min")
    # Shape: both logs grow, and the AVMM log is the larger one.
    assert result.avmm_mb_per_minute > result.vmware_mb_per_minute > 0
