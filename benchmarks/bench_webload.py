"""Accountable web service under open-loop load: cost and conviction.

Runs :mod:`repro.experiments.webload` — the routed HTTP-style service with a
TTL response cache and recorded upstream-call nondeterminism, driven by a
seeded heavy-tailed user population — and asserts the workload's contract:

* the same open-loop request plan completes identically with accountability
  on (``avmm-rsa768``) and off (``bare-hw``); accountability costs latency,
  never answers;
* tail percentiles are ordered (p50 ≤ p95 ≤ p99 ≤ p999) in both modes;
* the accountable run's archive passes the full record → ship → ingest →
  stream-audit pipeline for server and client;
* the stale-cache cheat image is convicted with independently verified
  evidence, and no honest machine is ever accused.

Full scale is the ISSUE's 100,000 simulated users (~120k requests); smoke
scale keeps the same shape at 300 users.  Emits ``BENCH_webload.json``
(repo root); the checked-in copy is from a full-scale run and CI uploads
the smoke-scale one as an artifact.
"""

import json
from pathlib import Path

from _bench_utils import scaled, smoke_mode

from repro.experiments.webload import LoadModel, run_webload

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_webload.json"


def test_webload_accountable_service(benchmark, repro_duration, tmp_path):
    users = scaled(100_000, 300)
    model = LoadModel(users=users, seed=42,
                      arrival_rate=scaled(2000.0, 600.0),
                      session_alpha=3.0)
    result = benchmark.pedantic(
        run_webload,
        kwargs={"model": model,
                "snapshot_interval": scaled(5.0, None),
                "root": str(tmp_path)},
        rounds=1, iterations=1)

    print()
    print(f"webload: {result.users:,} users, {result.total_requests:,} "
          f"requests (open loop)")
    for point in result.points:
        print(f"  {point.configuration}: {point.throughput_rps:,.0f} rps, "
              f"p50 {point.rtt.p50 * 1000:.3f} ms, "
              f"p95 {point.rtt.p95 * 1000:.3f} ms, "
              f"p99 {point.rtt.p99 * 1000:.3f} ms, "
              f"p999 {point.rtt.p999 * 1000:.3f} ms; "
              f"record wall {point.record_wall_seconds:.1f} s")
    for outcome in result.honest_audits:
        print(f"  honest audit {outcome.machine}: {outcome.verdict} "
              f"({outcome.chunks} chunks, {outcome.entries:,} entries)")
    for outcome in result.cheat_audits:
        print(f"  cheat audit {outcome.machine}: {outcome.verdict}")
    print(f"  cheat detected: {result.cheat_detected}, "
          f"false accusations: {result.false_accusations}")

    payload = {"webload": result.to_dict(),
               "mode": "smoke" if smoke_mode() else "full"}
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH.name}")

    bare = result.point("bare-hw")
    avmm = result.point("avmm-rsa768")
    # Accountability must not change what the service answered.
    assert result.statuses_identical
    assert bare.responses_received == avmm.responses_received \
        == result.total_requests
    # ...only what it costs: signing shows up in every percentile.
    assert avmm.rtt.p50 > bare.rtt.p50
    for rtt in (bare.rtt, avmm.rtt):
        assert rtt.p50 <= rtt.p95 <= rtt.p99 <= rtt.p999
    # The audit story, end to end.
    assert result.honest_pass, result.honest_audits
    assert result.cheat_detected, result.cheat_audits
    assert result.false_accusations == 0
