"""Helpers shared by the benchmark modules."""


def duration_or(default, override):
    """Pick the experiment duration, honouring the --repro-duration override."""
    return override if override is not None else default
