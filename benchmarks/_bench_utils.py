"""Helpers shared by the benchmark modules.

Benchmarks run at one of three scales:

* the per-benchmark default, sized so the whole suite finishes in minutes;
* an explicit ``--repro-duration`` override (seconds of simulated time),
  which always wins;
* *smoke mode* — ``--smoke`` or ``REPRO_BENCH_SMOKE=1`` — tiny workloads and
  a single repetition, used by the CI bench job so it finishes in a couple
  of minutes.  Every benchmark passes its own ``smoke=`` duration, chosen so
  its shape assertions still hold at the reduced scale.
"""

import os

_SMOKE_FLAG = [False]  # set by conftest when --smoke is passed


def set_smoke(enabled: bool) -> None:
    """Record that smoke mode was requested on the command line."""
    _SMOKE_FLAG[0] = bool(enabled)


def smoke_mode() -> bool:
    """True when the suite should run tiny CI-sized workloads."""
    if _SMOKE_FLAG[0]:
        return True
    return os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in (
        "1", "true", "yes", "on")


def duration_or(default, override, smoke=None):
    """Pick the experiment duration.

    An explicit ``--repro-duration`` override wins; otherwise smoke mode
    picks the benchmark's reduced ``smoke`` duration when one is given, and
    the per-benchmark default applies in a normal run.
    """
    if override is not None:
        return override
    if smoke is not None and smoke_mode():
        return smoke
    return default


def scaled(default, smoke):
    """Pick a non-duration parameter (counts, sizes) by mode."""
    return smoke if smoke_mode() else default
