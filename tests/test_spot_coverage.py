"""Regression tests: spot-check probability accounting is honest.

A sampled spot check must never convert "the sampled chunks passed" into
"the machine passed".  The scenario: a machine tampers with exactly one
snapshot-delimited segment; a sample that misses that segment must report a
qualified pass (``pass-sampled``) with its true coverage — and the same
checker, pointed at the full log, must find the fault.
"""

import pytest

from repro.adversary.matrix import record_scenario
from repro.adversary.tampering import TamperingVMM
from repro.audit.auditor import Auditor
from repro.audit.spot_check import SpotCheckReport, SpotChecker
from repro.audit.verdict import Verdict

import random


@pytest.fixture(scope="module")
def tampered_scenario():
    """A recorded kv pair where the server tampered inside one known segment."""
    ctx = record_scenario(workload="kv", fleet_size=2, seed=41, duration=4.0)
    monitor = ctx.monitor
    segments = monitor.get_snapshot_segments()
    assert len(segments) >= 4
    # Tamper with an entry in the *last* segment; recompute the chain so the
    # log stays internally consistent (only the authenticator check can see
    # it, and only when the tampered chunk is actually audited).  The final
    # segment's entries are committed via the ack authenticators peers hold.
    committed = set(ctx.peer_committed_sequences())
    target_index, victim = next(
        (index, entry.sequence)
        for index in range(len(segments) - 1, 0, -1)
        for entry in segments[index].entries
        if entry.sequence in committed)
    TamperingVMM(monitor, random.Random(7)).modify_entry(victim)
    return ctx, target_index


def _make_checker(ctx):
    auditor = Auditor("auditor", ctx.keystore,
                      ctx.reference_images[ctx.byzantine])
    for machine in ctx.honest_machines:
        auditor.collect_from_peer(ctx.monitors[machine], ctx.byzantine)
    return SpotChecker(auditor)


class TestHonestCoverageAccounting:
    def test_missed_tamper_is_not_reported_as_a_machine_pass(
            self, tampered_scenario):
        ctx, tampered_index = tampered_scenario
        checker = _make_checker(ctx)
        segments = ctx.monitor.get_snapshot_segments()

        # Pick a seed whose 1-chunk sample provably misses the tampered
        # segment (deterministic: the sampler is random.Random(seed)).
        seed = next(
            s for s in range(100)
            if tampered_index not in random.Random(s).sample(
                range(1, len(segments)), 1))
        report = checker.sample_chunks(ctx.monitor, k=1, sample_size=1,
                                       seed=seed)

        assert tampered_index not in report.checked_indices
        assert report.ok  # the sampled chunk really did pass...
        assert not report.complete  # ...but the check knows it saw a fraction
        assert report.verdict_claim() == "pass-sampled"
        assert report.segment_coverage < 1.0
        assert report.entry_coverage < 1.0

    def test_full_coverage_finds_the_tamper(self, tampered_scenario):
        ctx, tampered_index = tampered_scenario
        checker = _make_checker(ctx)
        results = checker.check_all_chunks(ctx.monitor, k=1,
                                           skip_initial=False)
        failing = [r for r in results if not r.ok]
        assert failing
        assert any(r.chunk_start_index == tampered_index for r in failing)
        assert all(r.result.verdict is Verdict.FAIL for r in failing)

    def test_sample_covering_the_tamper_reports_fail(self, tampered_scenario):
        ctx, tampered_index = tampered_scenario
        checker = _make_checker(ctx)
        segments = ctx.monitor.get_snapshot_segments()
        seed = next(
            s for s in range(100)
            if tampered_index in random.Random(s).sample(
                range(1, len(segments)), 1))
        report = checker.sample_chunks(ctx.monitor, k=1, sample_size=1,
                                       seed=seed)
        assert not report.ok
        assert report.verdict_claim() == "fail"

    def test_complete_sample_upgrades_to_unqualified_verdict(
            self, tampered_scenario):
        ctx, _ = tampered_scenario
        checker = _make_checker(ctx)
        segments = ctx.monitor.get_snapshot_segments()
        report = checker.sample_chunks(ctx.monitor, k=1,
                                       sample_size=len(segments),
                                       seed=0, skip_initial=False)
        assert report.complete
        assert report.segment_coverage == 1.0
        # Full coverage sees the tamper, so the unqualified claim is "fail" —
        # never "pass" while any segment is tampered.
        assert report.verdict_claim() == "fail"

    def test_honest_machine_full_sample_passes_unqualified(self):
        ctx = record_scenario(workload="kv", fleet_size=2, seed=43,
                              duration=3.0)
        checker = _make_checker(ctx)
        segments = ctx.monitor.get_snapshot_segments()
        report = checker.sample_chunks(ctx.monitor, k=1,
                                       sample_size=len(segments),
                                       seed=0, skip_initial=False)
        assert report.ok and report.complete
        assert report.verdict_claim() == "pass"


class TestDetectionProbability:
    def test_probability_grows_with_sample_size_and_saturates(self):
        p = [SpotCheckReport.detection_probability(20, k=1, sample_size=n)
             for n in range(0, 21)]
        assert p[0] == 0.0
        assert all(b >= a for a, b in zip(p, p[1:]))
        assert p[20] == 1.0
        assert abs(p[1] - 1 / 20) < 1e-9

    def test_bigger_chunks_raise_coverage_per_sample(self):
        small = SpotCheckReport.detection_probability(20, k=1, sample_size=2)
        large = SpotCheckReport.detection_probability(20, k=4, sample_size=2)
        assert large > small

    def test_degenerate_inputs(self):
        assert SpotCheckReport.detection_probability(0, 1, 1) == 0.0
        assert SpotCheckReport.detection_probability(5, 1, 0) == 0.0
        assert SpotCheckReport.detection_probability(3, 8, 1) == 0.0
