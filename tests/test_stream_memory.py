"""tracemalloc memory-bound regression tests for the streaming audit.

The pipeline's promise is O(chunk) residency: peak traced memory minus the
fixed bzip2-9 compressor working set (a level-dependent constant both audit
paths allocate for the modelled-cost compression) must stay under a fixed
multiple of the chunk size, while the materializing path — which inflates the
whole archived log before any check runs — blows through the same bound.
The slow test pins this on a 200-snapshot archived run; the fast variant is
the same assertion at smoke scale.
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest

from repro.audit.stream import stream_audit
from repro.experiments.parallel_audit import build_fleet
from repro.experiments.stream_audit import _measure_bz2_floor
from repro.service.ingest import AuditIngestService
from repro.store.archive import LogArchive
from repro.workloads.sqlbench import SqlBenchSettings

#: data peak (above the bzip2-9 floor) must stay under this multiple of the
#: largest chunk's raw bytes, plus a small fixed pipeline overhead
CHUNK_MULTIPLE = 6
FIXED_OVERHEAD = 1_200_000


def _traced_peak(fn) -> int:
    gc.collect()
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _run_memory_bound_check(tmp_path, duration: float, snapshots: int):
    snapshot_interval = duration / snapshots
    root = tmp_path / "archive"
    fleet = build_fleet(num_machines=2, duration=duration, seed=19,
                        snapshot_interval=snapshot_interval,
                        archive=LogArchive(root),
                        client_settings=SqlBenchSettings(
                            server="", operations_per_tick=6,
                            tick_interval=0.25, rows_per_phase=4,
                            payload_bytes=8000))
    archive = LogArchive(root)
    service = AuditIngestService(archive)
    machine = next(name for name in archive.machines() if "server" in name)
    records = archive.segment_records(machine)
    assert len(archive.snapshot_store(machine).snapshot_ids()) >= snapshots

    #: chunk the stream ~4 segments at a time; the bound scales with this
    chunks = max(4, len(records) // 4)
    chunk_raw = -(-sum(r.raw_bytes for r in records) // chunks)  # ceil

    def prepared_auditor():
        auditor = fleet.make_auditor(machine, collect=False)
        service.prepare_auditor(auditor, machine)
        return auditor

    target = service.target_for(machine)
    streamed = stream_audit(prepared_auditor(), target, max_chunks=chunks)
    assert streamed.stats.fallback_reason is None
    materialized = prepared_auditor().audit(target, streaming=False)
    assert streamed.result == materialized

    # Prepare the auditors (and their O(log) authenticator stores — input
    # state both paths share) outside the traced region, so the peaks
    # measure what the *audit* holds.
    stream_auditor = prepared_auditor()
    stream_peak = _traced_peak(
        lambda: stream_audit(stream_auditor, target, max_chunks=chunks))
    materializing_auditor = prepared_auditor()
    materializing_peak = _traced_peak(
        lambda: materializing_auditor.audit(target, streaming=False))
    floor = _measure_bz2_floor()
    bound = CHUNK_MULTIPLE * chunk_raw + FIXED_OVERHEAD

    assert stream_peak - floor <= bound, (
        f"streaming audit of {len(records)} segments used "
        f"{stream_peak - floor:,} B above the bzip2 floor; bound was "
        f"{bound:,} B ({CHUNK_MULTIPLE}x the {chunk_raw:,} B chunk)")
    assert materializing_peak - floor > bound, (
        f"materializing path stayed under the chunk bound "
        f"({materializing_peak - floor:,} B <= {bound:,} B) — the bound "
        f"no longer separates the paths; tighten the test")
    assert stream_peak < materializing_peak


@pytest.mark.slow
def test_stream_memory_bound_200_snapshots(tmp_path):
    """A 200-snapshot archived run: streaming stays O(chunk), full doesn't."""
    _run_memory_bound_check(tmp_path, duration=50.0, snapshots=200)


def test_stream_memory_bound_smoke(tmp_path):
    """Smoke-sized variant of the 200-snapshot bound (fast stage)."""
    _run_memory_bound_check(tmp_path, duration=10.0, snapshots=40)
