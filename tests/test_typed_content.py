"""The v3 typed content layer: struct-packed shapes + lazy materialization.

Three contracts under test, entirely below the codec layer:

* **Round-trip**: ``decode_content(encode_content(d)) == d`` for every
  dict, whichever encoding tier it lands on — a dedicated typed shape, the
  generic row codec, or the canonical-JSON fallback — and the typed and
  JSON encodings of the same dict decode to the same dict.
* **Strictness**: a dict only gets a typed tag when the typed encoding
  reproduces it *exactly*; near-misses (wrong value type, non-canonical
  hex, nested structure) fall through a tier instead of being coerced.
* **Laziness**: entries built by :func:`~repro.log.entries.lazy_entry`
  parse content only on first access, exactly once, and forged/``replace``d
  entries never inherit a stale materialized dict or encoding cache.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.crypto import hashing
from repro.log import entries as entries_module
from repro.log.codec import TypedCodec
from repro.log.entries import (
    EntryType,
    LogEntry,
    TAG_ACK,
    TAG_MACLAYER_IN,
    TAG_MACLAYER_OUT,
    TAG_NONDET,
    TAG_RECV,
    TAG_RECV_PAYLOAD,
    TAG_ROW,
    TAG_SEND,
    TAG_SNAPSHOT,
    TAG_TIMETRACKER_TICK,
    TAG_TIMETRACKER_VALUE,
    content_materializations_total,
    decode_content,
    encode_content,
    encode_content_json,
    lazy_entry,
    seed_encoded_content,
)
from repro.log.segments import LogSegment
from repro.log.storage import segment_from_bytes, segment_to_bytes
from repro.log.tamper_evident import TamperEvidentLog
from repro.obs import CodecMetrics, MetricsRegistry, Observability

DIGEST = hashing.hash_bytes(b"typed").hex()
DIGEST2 = hashing.hash_bytes(b"typed-2").hex()

#: one representative content dict per dedicated wire tag
SHAPED_CONTENTS = {
    TAG_SEND: {"destination": "m2", "message_id": "m1-17",
               "payload_hash": DIGEST, "payload_size": 512},
    TAG_RECV: {"source": "m1", "message_id": "m1-17",
               "payload_hash": DIGEST, "payload_size": 512,
               "sender_signature": "deadbeef00"},
    TAG_RECV_PAYLOAD: {"source": "m1", "message_id": "m1-17",
                       "payload_hash": DIGEST, "payload_size": 4,
                       "sender_signature": "deadbeef00",
                       "payload": "cafef00d", "kind": "request"},
    TAG_ACK: {"peer": "m2", "message_id": "m1-17", "direction": "sent",
              "acked_sequence": 99},
    TAG_SNAPSHOT: {"snapshot_id": 7, "state_root": DIGEST,
                   "execution_counter": 123456},
    TAG_TIMETRACKER_VALUE: {"event_kind": "cpu", "execution_counter": 10,
                            "branch_counter": 3, "value": 0.25},
    TAG_TIMETRACKER_TICK: {"event_kind": "tick", "execution_counter": 10,
                           "branch_counter": 3, "tick_number": 42},
    TAG_MACLAYER_IN: {"direction": "in", "message_id": "m2-4",
                      "source": "m2", "payload_size": 64,
                      "execution_counter": 8, "branch_counter": 2},
    TAG_MACLAYER_OUT: {"direction": "out", "message_id": "m1-5",
                       "destination": "m2", "payload_hash": DIGEST2,
                       "payload_size": 64, "execution_counter": 9,
                       "branch_counter": 2},
    TAG_NONDET: {"event_kind": "rng", "execution_counter": 77,
                 "data": {"draw": 0.5, "source": "prng", "n": 3}},
}


class TestShapeRoundTrips:
    @pytest.mark.parametrize(
        "tag,content",
        sorted(SHAPED_CONTENTS.items()),
        ids=[f"0x{tag:02x}" for tag in sorted(SHAPED_CONTENTS)])
    def test_dedicated_shape_round_trips_under_its_tag(self, tag, content):
        wire = encode_content(content)
        assert wire[0] == tag, "content did not land on its dedicated shape"
        assert decode_content(wire) == content
        # The same dict through the JSON fallback decodes identically, and
        # the two encodings never collide on the first byte.
        as_json = encode_content_json(content)
        assert as_json[0] == ord("{")
        assert decode_content(as_json) == content

    def test_generic_row_covers_flat_scalar_dicts(self):
        content = {"op": "put", "key": "k-12", "ok": True, "tries": 2,
                   "cost": -3, "latency": 0.125, "note": None,
                   "digest": DIGEST}
        wire = encode_content(content)
        assert wire[0] == TAG_ROW
        assert decode_content(wire) == content
        assert decode_content(encode_content_json(content)) == content

    def test_row_fuzz_round_trips(self):
        rng = random.Random(0x7E57)
        scalars = [
            lambda: rng.randrange(-(1 << 62), 1 << 63),
            lambda: rng.random(),
            lambda: rng.choice([True, False, None]),
            lambda: "".join(chr(rng.randrange(32, 0x2FF))
                            for _ in range(rng.randrange(12))),
            lambda: hashing.hash_bytes(bytes([rng.randrange(256)])).hex(),
        ]
        for _ in range(200):
            content = {f"k{i}": rng.choice(scalars)()
                       for i in range(rng.randrange(1, 8))}
            wire = encode_content(content)
            assert wire[0] in (TAG_ROW, ord("{"))
            decoded = decode_content(wire)
            assert decoded == content
            # Value types survive exactly (True != 1 despite ==).
            assert [type(v) for v in decoded.values()] == \
                [type(v) for v in content.values()]


class TestFallbackTiers:
    """Near-miss dicts must fall through a tier, never be coerced."""

    @pytest.mark.parametrize("mutation,expect_json", [
        # Wrong value type for a shaped field -> row can still take it.
        (lambda c: c.update(payload_size=-1), False),
        # bool is not u64 even though isinstance(True, int).
        (lambda c: c.update(payload_size=True), False),
        # Non-canonical (uppercase) digest: h32 refuses, row stores a str.
        (lambda c: c.update(payload_hash=DIGEST.upper()), False),
        # Nested dict value: only JSON can represent it.
        (lambda c: c.update(destination={"host": "m2"}), True),
        # List value: only JSON.
        (lambda c: c.update(message_id=["a"]), True),
    ])
    def test_send_near_miss_falls_through(self, mutation, expect_json):
        content = dict(SHAPED_CONTENTS[TAG_SEND])
        mutation(content)
        wire = encode_content(content)
        if expect_json:
            assert wire[0] == ord("{")
        else:
            assert wire[0] == TAG_ROW
        assert decode_content(wire) == content

    def test_extra_key_leaves_the_dedicated_shape(self):
        content = dict(SHAPED_CONTENTS[TAG_ACK], extra=1)
        wire = encode_content(content)
        assert wire[0] != TAG_ACK
        assert decode_content(wire) == content

    def test_ack_direction_outside_enum_falls_back(self):
        content = dict(SHAPED_CONTENTS[TAG_ACK], direction="sideways")
        wire = encode_content(content)
        assert wire[0] == TAG_ROW
        assert decode_content(wire) == content


@pytest.fixture
def signed_log(ca):
    keypair = ca.issue("lazy-machine")
    log = TamperEvidentLog("lazy-machine", keypair=keypair,
                           clock=lambda: 1.5)
    for index in range(6):
        log.append(EntryType.SEND, {
            "destination": "m2", "message_id": f"m1-{index}",
            "payload_hash": DIGEST, "payload_size": index})
    return log


class TestLazyMaterialization:
    def test_lazy_entry_defers_the_parse_and_counts_it_once(self):
        content = dict(SHAPED_CONTENTS[TAG_SNAPSHOT])
        wire = encode_content(content)
        entry = lazy_entry(5, EntryType.SNAPSHOT, wire,
                           hashing.hash_bytes(b"c"),
                           hashing.hash_bytes(b"p"), timestamp=2.5)
        assert "content" not in entry.__dict__
        before = content_materializations_total()
        assert entry.encoded_content() == wire  # no parse needed
        assert entry.content_hash() == hashing.hash_bytes(wire)
        assert content_materializations_total() == before
        assert entry.content == content  # first touch parses...
        assert content_materializations_total() == before + 1
        assert entry.content is entry.content  # ...and is cached
        assert content_materializations_total() == before + 1

    def test_v3_decode_is_lazy_until_content_access(self, signed_log):
        blob = TypedCodec().encode_segment(signed_log.full_segment())
        before = content_materializations_total()
        segment = TypedCodec().decode_segment(blob)
        segment.verify_hash_chain()
        assert content_materializations_total() == before
        assert segment.entries[0].content["message_id"] == "m1-0"
        assert content_materializations_total() == before + 1

    def test_each_decode_gets_an_independent_content_dict(self, signed_log):
        blob = TypedCodec().encode_segment(signed_log.full_segment())
        first = TypedCodec().decode_segment(blob).entries[0]
        second = TypedCodec().decode_segment(blob).entries[0]
        first.content["payload_size"] = 10_000  # simulated consumer abuse
        assert second.content["payload_size"] == 0
        assert first.content is not second.content

    def test_replaced_entry_does_not_inherit_caches(self, signed_log):
        blob = TypedCodec().encode_segment(signed_log.full_segment())
        entry = TypedCodec().decode_segment(blob).entries[0]
        original_wire = entry.encoded_content()
        _ = entry.content  # materialize, so both caches are warm
        forged = replace(entry, content={**entry.content,
                                         "payload_size": 666})
        # The forged entry re-encodes its own content: neither the wire
        # bytes nor the content dict leak over from the original.
        assert forged.encoded_content() != original_wire
        assert decode_content(forged.encoded_content())["payload_size"] == 666
        assert entry.content["payload_size"] == 0

    def test_seeded_tampered_bytes_fail_at_materialization(self):
        wire = bytearray(encode_content(SHAPED_CONTENTS[TAG_SEND]))
        wire[0] = 0xEE  # unknown tag
        entry = lazy_entry(1, EntryType.SEND, bytes(wire),
                           hashing.hash_bytes(b"c"),
                           hashing.hash_bytes(b"p"))
        with pytest.raises(Exception) as excinfo:
            _ = entry.content
        assert "tag" in str(excinfo.value)

    def test_recorder_seeds_typed_bytes_at_append(self, signed_log):
        entry = signed_log.full_segment().entries[0]
        wire = entry.__dict__.get("_encoded_content")
        assert wire is not None and wire[0] == TAG_SEND
        # ...and the chain committed to exactly those bytes.
        assert entry.content_hash() == hashing.hash_bytes(wire)


class TestStorageFastPath:
    """The JSON-lines debug store behaves identically through the fast path."""

    def test_round_trip_matches_from_dict(self, signed_log):
        segment = signed_log.full_segment()
        recovered = segment_from_bytes(segment_to_bytes(segment))
        assert recovered.machine == segment.machine
        assert recovered.start_hash == segment.start_hash
        via_from_dict = [LogEntry.from_dict(entry.to_dict())
                         for entry in segment.entries]
        assert recovered.entries == via_from_dict
        recovered.verify_hash_chain()

    def test_unknown_wire_name_is_a_format_error(self, signed_log):
        from repro.errors import LogFormatError
        data = segment_to_bytes(signed_log.full_segment())
        broken = data.replace(b'"type": "send"', b'"type": "bogus"', 1)
        assert broken != data
        with pytest.raises(LogFormatError, match="not a valid EntryType"):
            segment_from_bytes(broken)

    def test_bad_hex_is_a_format_error(self, signed_log):
        from repro.errors import LogFormatError
        data = segment_to_bytes(signed_log.full_segment())
        broken = data.replace(b'"chain_hash": "', b'"chain_hash": "zz', 1)
        with pytest.raises(LogFormatError, match="malformed log entry"):
            segment_from_bytes(broken)


class TestCodecMetrics:
    def test_sync_materializations_folds_the_global_counter(self):
        registry = MetricsRegistry()
        metrics = CodecMetrics(Observability(metrics=registry))
        wire = encode_content(SHAPED_CONTENTS[TAG_ACK])
        for sequence in range(3):
            entry = lazy_entry(sequence + 1, EntryType.ACK, wire,
                               hashing.hash_bytes(b"c"),
                               hashing.hash_bytes(b"p"))
            _ = entry.content
        assert metrics.sync_materializations() == 3
        assert metrics.sync_materializations() == 0  # idempotent at rest
        snapshot = registry.snapshot()
        assert snapshot["codec.content_materializations_total"] == 3

    def test_observe_decode_fills_the_nanosecond_histogram(self):
        registry = MetricsRegistry()
        metrics = CodecMetrics(Observability(metrics=registry))
        metrics.observe_decode(wall_seconds=0.001, entry_count=1000)  # 1 us
        histogram = registry.snapshot()["codec.decode_ns_per_entry"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(1000.0)

    def test_zero_entries_records_nothing(self):
        registry = MetricsRegistry()
        metrics = CodecMetrics(Observability(metrics=registry))
        metrics.observe_decode(wall_seconds=0.5, entry_count=0)
        assert registry.snapshot()["codec.decode_ns_per_entry"]["count"] == 0


def test_module_counter_only_moves_forward():
    before = content_materializations_total()
    entries_module.count_materialization()
    assert content_materializations_total() == before + 1
