"""Smoke tests for the experiment harness and every table/figure runner.

Each experiment is run at a much smaller scale than the paper's (seconds of
simulated time instead of half-hour games) — enough to exercise the full code
path and check that the *shape* of the result matches the paper's claims.
"""

import pytest

from repro.audit.online import OnlineAuditor
from repro.audit.verdict import Verdict
from repro.avmm.config import Configuration
from repro.experiments import fig3_log_growth, fig4_log_content, fig5_latency
from repro.experiments import fig7_frame_rate, fig8_online_audit, fig9_spot_check
from repro.experiments import fig6_cpu, sec65_frame_cap, sec66_audit_cost, sec67_traffic
from repro.experiments import table1
from repro.experiments.harness import format_table
from repro.game.cheats.implementations import UnlimitedAmmoCheat


class TestHarness:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "30" in lines[3]

    def test_session_reference_vs_installed_images(self, cheater_session):
        assert cheater_session.installed_images["player1"] is not \
            cheater_session.reference_images["player1"]
        assert cheater_session.installed_images["player2"] is \
            cheater_session.reference_images["player2"]

    def test_session_traffic_accounting(self, honest_session):
        assert honest_session.traffic_kbps("server") > 0


class TestTable1:
    def test_catalog_summary_only(self):
        result = table1.run_table1(run_functional=False)
        assert result.summary.total == 26
        assert result.summary.detectable == 26
        assert result.functional_checks == []

    @pytest.mark.slow
    def test_functional_check_detects_cheater(self):
        check = table1.run_functional_check(UnlimitedAmmoCheat(), duration=6.0,
                                            num_players=2)
        assert check.cheater_detected
        assert check.honest_players_passed


class TestFigure3And4:
    @pytest.mark.slow
    def test_log_growth_shape(self):
        result = fig3_log_growth.run_log_growth(duration=20.0, num_players=2,
                                                sample_interval=5.0)
        assert result.avmm_mb_per_minute > result.vmware_mb_per_minute > 0
        assert result.avmm_series[-1][1] > result.avmm_series[0][1]

    @pytest.mark.slow
    def test_log_content_shape(self):
        result = fig4_log_content.run_log_content(duration=20.0, num_players=2)
        assert result.replay_fraction > 0.5
        assert result.compressed_mb_per_minute < result.total_mb_per_minute
        # TimeTracker entries are the single largest category (Figure 4).
        assert result.breakdown.fraction("timetracker") == max(
            result.breakdown.fraction(c) for c in result.breakdown.bytes_by_category)


class TestFigure5:
    def test_latency_ordering(self):
        result = fig5_latency.run_latency(pings=10)
        medians = [result.summaries[c].median for c in (
            Configuration.BARE_HW, Configuration.VMWARE_NOREC,
            Configuration.VMWARE_REC, Configuration.AVMM_NOSIG,
            Configuration.AVMM_RSA768)]
        assert medians == sorted(medians)
        assert result.median_ms(Configuration.BARE_HW) < 0.5
        assert result.median_ms(Configuration.AVMM_RSA768) > 2.0


class TestFigure6And7:
    @pytest.fixture(scope="class")
    def frame_rate_result(self):
        return fig7_frame_rate.run_frame_rate(duration=8.0, num_players=2)

    def test_frame_rate_ordering(self, frame_rate_result):
        fps = [frame_rate_result.average_fps(c) for c in (
            Configuration.BARE_HW, Configuration.VMWARE_REC, Configuration.AVMM_RSA768)]
        assert fps[0] > fps[1] >= fps[2]

    def test_total_drop_in_paper_ballpark(self, frame_rate_result):
        drop = frame_rate_result.relative_drop(Configuration.AVMM_RSA768)
        assert 0.05 < drop < 0.30  # paper: ~13 %

    def test_recording_is_the_biggest_single_step(self, frame_rate_result):
        norec = frame_rate_result.average_fps(Configuration.VMWARE_NOREC)
        rec = frame_rate_result.average_fps(Configuration.VMWARE_REC)
        avmm = frame_rate_result.average_fps(Configuration.AVMM_RSA768)
        assert (norec - rec) > (rec - avmm)

    def test_pinned_ablation_costs_frames(self, frame_rate_result):
        assert frame_rate_result.pinned_sample.frames_per_second < \
            frame_rate_result.average_fps(Configuration.AVMM_RSA768)

    @pytest.mark.slow
    def test_cpu_utilisation_shape(self):
        result = fig6_cpu.run_cpu(duration=8.0, num_players=2,
                                  configurations=[Configuration.BARE_HW,
                                                  Configuration.AVMM_RSA768])
        for utilization in result.utilizations.values():
            assert 0.10 < utilization.average < 0.30
        avmm = result.utilizations[Configuration.AVMM_RSA768]
        assert avmm.daemon_ht_utilization < 0.20


class TestFigure8:
    @pytest.mark.slow
    def test_online_audit_detects_cheat_and_costs_frames(self):
        result = fig8_online_audit.run_online_audit(duration=20.0, num_players=2,
                                                    audit_interval=5.0)
        fps = result.fps_by_audit_count
        assert fps[0] > fps[1] > fps[2]
        assert result.detection_time is not None
        assert result.detection_time <= 20.0

    def test_online_auditor_passes_honest_machine(self, honest_session):
        target = "player2"
        online = OnlineAuditor(honest_session.make_auditor("player1", target),
                               honest_session.monitors[target],
                               honest_session.scheduler, interval=5.0)
        record = online.run_once()
        assert record is not None
        assert record.verdict is Verdict.PASS
        assert not online.fault_detected
        assert online.audit_cpu_seconds > 0


class TestFigure9:
    @pytest.mark.slow
    def test_spot_check_costs_scale_with_k(self):
        result = fig9_spot_check.run_spot_check(duration=60.0, snapshot_interval=10.0,
                                                k_values=(1, 2, 3))
        assert result.segments >= 4
        assert all(p.all_passed for p in result.points)
        fractions = [p.avg_time_fraction for p in result.points]
        data_fractions = [p.avg_data_fraction for p in result.points]
        assert fractions == sorted(fractions)
        assert data_fractions == sorted(data_fractions)
        # Fixed per-chunk cost: a 1-segment chunk still costs a visible fraction.
        assert result.points[0].avg_data_fraction > 0.0


class TestSection65:
    @pytest.mark.slow
    def test_frame_cap_inflates_log_and_optimisation_recovers(self):
        result = sec65_frame_cap.run_frame_cap(duration=3.0)
        assert result.cap_growth_factor > 5.0
        assert result.optimized_growth_factor < result.cap_growth_factor / 3.0


class TestSection66And67:
    @pytest.mark.slow
    def test_audit_cost_split(self):
        result = sec66_audit_cost.run_audit_cost(duration=10.0, num_players=2)
        assert result.audit_passed
        assert result.semantic_seconds > result.syntactic_seconds
        assert result.semantic_seconds > result.compression_seconds
        assert 0.5 < result.semantic_fraction_of_recording < 2.0

    @pytest.mark.slow
    def test_traffic_overhead(self):
        result = sec67_traffic.run_traffic(duration=10.0, num_players=2)
        assert result.overhead_factor > 1.5
        avmm = result.kbps_by_configuration[Configuration.AVMM_RSA768]
        assert avmm < 1000.0  # still far below broadband capacity
