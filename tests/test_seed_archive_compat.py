"""Backwards-compatibility pin: the checked-in seed archives stay readable.

``tests/data/seed_v1_archive`` was produced by the v1 (JSON+bz2) pipeline
before the versioned codec API existed; ``tests/data/seed_v3_archive`` is
its migration through ``reencode_segments(format_version=3)`` at the time
the typed codec landed.  Both are checked in verbatim.  Every future codec
change must keep decoding them byte-for-byte: this is the repo's guarantee
that a ``format_version`` number means *that* wire format, forever.  The
tests also pin that merely opening an intact archive mutates nothing on
disk, and that a chain-verify of the v3 seed parses zero content dicts.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.log.codec import sniff_format_version
from repro.log.entries import content_materializations_total
from repro.log.storage import segment_to_bytes
from repro.store.archive import LogArchive

SEED_ROOT = Path(__file__).parent / "data" / "seed_v1_archive"
SEED_V3_ROOT = Path(__file__).parent / "data" / "seed_v3_archive"
MACHINE = "seed-machine"


def _tree_digests(root: Path) -> dict:
    return {path.relative_to(root).as_posix():
            hashlib.sha256(path.read_bytes()).hexdigest()
            for path in sorted(root.rglob("*")) if path.is_file()}


@pytest.fixture()
def seed_archive():
    before = _tree_digests(SEED_ROOT)
    archive = LogArchive(SEED_ROOT)
    yield archive
    assert _tree_digests(SEED_ROOT) == before, \
        "opening/reading the seed archive modified it on disk"


def test_seed_archive_decodes_byte_identically(seed_archive):
    expected = (SEED_ROOT / "expected_segment.jsonl").read_bytes()
    assert segment_to_bytes(seed_archive.materialized_log(MACHINE)) == expected


def test_seed_archive_serves_all_read_paths(seed_archive):
    records = seed_archive.segment_records(MACHINE)
    assert [r.file_name.endswith(".avmlogz") for r in records] == \
        [True] * len(records)
    total = 0
    for record in records:
        assert record.format_version == 1
        data = (seed_archive.root / record.file_name).read_bytes()
        assert sniff_format_version(data) == 1
        # One-shot and streaming decode agree entry for entry.
        segment = seed_archive.read_segment(record)
        streamed = list(seed_archive.stream_segment(record))
        assert streamed == segment.entries
        total += len(segment.entries)
    assert total == seed_archive.entry_count(MACHINE)
    seed_archive.materialized_log(MACHINE).verify_hash_chain()
    auths = seed_archive.authenticators_for(MACHINE)
    assert auths and all(auth.machine == MACHINE for auth in auths)


def test_seed_archive_reencodes_to_v2(seed_archive, tmp_path):
    v2 = seed_archive.reencode_segments(tmp_path / "v2", format_version=2)
    expected = (SEED_ROOT / "expected_segment.jsonl").read_bytes()
    assert segment_to_bytes(v2.materialized_log(MACHINE)) == expected
    for record in v2.segment_records(MACHINE):
        assert record.format_version == 2
        assert record.wire_v1_bytes > 0


@pytest.fixture()
def seed_v3_archive():
    before = _tree_digests(SEED_V3_ROOT)
    archive = LogArchive(SEED_V3_ROOT)
    yield archive
    assert _tree_digests(SEED_V3_ROOT) == before, \
        "opening/reading the v3 seed archive modified it on disk"


def test_v3_seed_archive_decodes_byte_identically(seed_v3_archive):
    # Same expected segment as the v1 seed: the typed wire is a pure
    # re-encoding of the same log.
    expected = (SEED_V3_ROOT / "expected_segment.jsonl").read_bytes()
    assert segment_to_bytes(seed_v3_archive.materialized_log(MACHINE)) == \
        expected
    assert expected == (SEED_ROOT / "expected_segment.jsonl").read_bytes()


def test_v3_seed_archive_serves_all_read_paths(seed_v3_archive):
    records = seed_v3_archive.segment_records(MACHINE)
    assert [r.file_name.endswith(".avmlogt") for r in records] == \
        [True] * len(records)
    total = 0
    for record in records:
        assert record.format_version == 3
        data = (seed_v3_archive.root / record.file_name).read_bytes()
        assert sniff_format_version(data) == 3
        segment = seed_v3_archive.read_segment(record)
        streamed = list(seed_v3_archive.stream_segment(record))
        assert streamed == segment.entries
        total += len(segment.entries)
    assert total == seed_v3_archive.entry_count(MACHINE)
    seed_v3_archive.materialized_log(MACHINE).verify_hash_chain()
    auths = seed_v3_archive.authenticators_for(MACHINE)
    assert auths and all(auth.machine == MACHINE for auth in auths)


def test_v3_seed_chain_verify_is_materialization_free(seed_v3_archive):
    # The lazy-decode contract, pinned against checked-in bytes: a chain
    # verify over the v3 seed never parses a content payload.
    segments = [seed_v3_archive.read_segment(record)
                for record in seed_v3_archive.segment_records(MACHINE)]
    before = content_materializations_total()
    for segment in segments:
        segment.verify_hash_chain()
    assert content_materializations_total() == before
    # First content access *does* materialize — the counter is live.
    _ = segments[0].entries[0].content
    assert content_materializations_total() == before + 1


def test_seed_archive_reencodes_to_v3_and_back(seed_archive, tmp_path):
    # v1 seed -> v3 decodes identically; v3 seed -> v1 reproduces the v1
    # seed's deterministic segment bytes.  (Never assert re-encoded v3
    # bytes equal the checked-in files: zlib output may vary per build.)
    v3 = seed_archive.reencode_segments(tmp_path / "v3", format_version=3)
    expected = (SEED_ROOT / "expected_segment.jsonl").read_bytes()
    assert segment_to_bytes(v3.materialized_log(MACHINE)) == expected
    for record in v3.segment_records(MACHINE):
        assert record.format_version == 3
        assert record.wire_v1_bytes > 0
    back = LogArchive(SEED_V3_ROOT).reencode_segments(
        tmp_path / "v1-again", format_version=1)
    for r1, r2 in zip(LogArchive(SEED_ROOT).segment_records(MACHINE),
                      back.segment_records(MACHINE)):
        assert (SEED_ROOT / r1.file_name).read_bytes() == \
            (back.root / r2.file_name).read_bytes()
