"""Backwards-compatibility pin: the checked-in v1 seed archive stays readable.

``tests/data/seed_v1_archive`` was produced by the v1 (JSON+bz2) pipeline
before the versioned codec API existed and is checked in verbatim.  Every
future codec change must keep decoding it byte-for-byte: this is the repo's
guarantee that ``format_version=1`` means *that* wire format, forever.
The test also pins that merely opening an intact archive mutates nothing
on disk.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.log.codec import sniff_format_version
from repro.log.storage import segment_to_bytes
from repro.store.archive import LogArchive

SEED_ROOT = Path(__file__).parent / "data" / "seed_v1_archive"
MACHINE = "seed-machine"


def _tree_digests(root: Path) -> dict:
    return {path.relative_to(root).as_posix():
            hashlib.sha256(path.read_bytes()).hexdigest()
            for path in sorted(root.rglob("*")) if path.is_file()}


@pytest.fixture()
def seed_archive():
    before = _tree_digests(SEED_ROOT)
    archive = LogArchive(SEED_ROOT)
    yield archive
    assert _tree_digests(SEED_ROOT) == before, \
        "opening/reading the seed archive modified it on disk"


def test_seed_archive_decodes_byte_identically(seed_archive):
    expected = (SEED_ROOT / "expected_segment.jsonl").read_bytes()
    assert segment_to_bytes(seed_archive.materialized_log(MACHINE)) == expected


def test_seed_archive_serves_all_read_paths(seed_archive):
    records = seed_archive.segment_records(MACHINE)
    assert [r.file_name.endswith(".avmlogz") for r in records] == \
        [True] * len(records)
    total = 0
    for record in records:
        assert record.format_version == 1
        data = (seed_archive.root / record.file_name).read_bytes()
        assert sniff_format_version(data) == 1
        # One-shot and streaming decode agree entry for entry.
        segment = seed_archive.read_segment(record)
        streamed = list(seed_archive.stream_segment(record))
        assert streamed == segment.entries
        total += len(segment.entries)
    assert total == seed_archive.entry_count(MACHINE)
    seed_archive.materialized_log(MACHINE).verify_hash_chain()
    auths = seed_archive.authenticators_for(MACHINE)
    assert auths and all(auth.machine == MACHINE for auth in auths)


def test_seed_archive_reencodes_to_v2(seed_archive, tmp_path):
    v2 = seed_archive.reencode_segments(tmp_path / "v2", format_version=2)
    expected = (SEED_ROOT / "expected_segment.jsonl").read_bytes()
    assert segment_to_bytes(v2.materialized_log(MACHINE)) == expected
    for record in v2.segment_records(MACHINE):
        assert record.format_version == 2
        assert record.wire_v1_bytes > 0
