"""Tests for the game substrate: state, engine, protocol, server/client guests, cheats."""

import math

import pytest

from repro.game.cheats.base import CheatClass
from repro.game.cheats.catalog import CHEAT_CATALOG, catalog_summary, get_cheat_spec
from repro.game.cheats.implementations import (
    AimbotCheat,
    SpeedHackCheat,
    UnlimitedAmmoCheat,
    WallhackCheat,
    implemented_cheats,
)
from repro.game.client import ClientSettings, GameClientGuest
from repro.game.engine import GameEngine
from repro.game.images import make_client_image, make_server_image
from repro.game.protocol import (
    commands_packet,
    decode_packet,
    encode_packet,
    join_packet,
    parse_keyboard_command,
    snapshot_packet,
)
from repro.game.server import GameServerGuest
from repro.game.state import DEFAULT_WEAPON, GameMap, GameState, PlayerState, Wall
from repro.errors import GuestError
from repro.vm.events import KeyboardInput, PacketDelivery, TimerInterrupt
from repro.vm.machine import FixedNondeterminismSource, VirtualMachine
from repro.vm.image import VMImage


class TestState:
    def test_player_roundtrip(self):
        player = PlayerState(player_id="p1", x=3.0, y=4.0, ammo=7, kills=2)
        assert PlayerState.from_dict(player.to_dict()) == player

    def test_map_roundtrip(self):
        game_map = GameMap.default_arena()
        assert GameMap.from_dict(game_map.to_dict()) == game_map

    def test_game_state_roundtrip(self):
        state = GameState()
        state.add_player("a")
        state.add_player("b")
        restored = GameState.from_dict(state.to_dict())
        assert restored.to_dict() == state.to_dict()

    def test_add_player_idempotent(self):
        state = GameState()
        first = state.add_player("a")
        assert state.add_player("a") is first

    def test_spawn_points_cycle(self):
        game_map = GameMap()
        assert game_map.spawn_for(0) == game_map.spawn_for(len(game_map.spawn_points))

    def test_clamp(self):
        game_map = GameMap(width=100, height=100)
        assert game_map.clamp(-5, 250) == (0.0, 100.0)

    def test_wall_contains(self):
        wall = Wall(0, 0, 10, 10)
        assert wall.contains(5, 5)
        assert not wall.contains(11, 5)


class TestEngine:
    def make_engine(self):
        state = GameState(game_map=GameMap(walls=(Wall(40, 0, 60, 100),)))
        engine = GameEngine(state)
        a = engine.join("a")
        b = engine.join("b")
        a.x, a.y = 10.0, 50.0
        b.x, b.y = 90.0, 50.0
        return engine, a, b

    def test_move_normalises_direction(self):
        engine, a, _ = self.make_engine()
        x0 = a.x
        engine.move("a", 2.0, 0.0)
        assert a.x == pytest.approx(x0 + 5.0)

    def test_move_blocked_by_wall(self):
        engine, a, _ = self.make_engine()
        a.x = 38.0
        engine.move("a", 1.0, 0.0)
        assert a.x == 38.0  # would land inside the wall

    def test_move_dead_player_ignored(self):
        engine, a, _ = self.make_engine()
        a.alive = False
        assert engine.move("a", 1.0, 0.0) == (a.x, a.y)

    def test_shoot_requires_ammo(self):
        engine, a, b = self.make_engine()
        a.ammo = 0
        result = engine.shoot("a")
        assert result.out_of_ammo and result.hit is None

    def test_shot_blocked_by_wall(self):
        engine, a, b = self.make_engine()
        engine.aim("a", engine.angle_to("a", "b"))
        result = engine.shoot("a")
        assert result.blocked_by_wall and result.hit is None

    def test_shot_hits_without_wall(self):
        state = GameState(game_map=GameMap(walls=()))
        engine = GameEngine(state)
        a, b = engine.join("a"), engine.join("b")
        a.x, a.y, b.x, b.y = 10.0, 50.0, 200.0, 50.0
        engine.aim("a", engine.angle_to("a", "b"))
        result = engine.shoot("a")
        assert result.hit == "b"
        assert b.health == 100 - DEFAULT_WEAPON.damage
        assert a.ammo == DEFAULT_WEAPON.magazine - 1

    def test_kill_and_respawn(self):
        state = GameState(game_map=GameMap(walls=()))
        engine = GameEngine(state)
        a, b = engine.join("a"), engine.join("b")
        a.x, a.y, b.x, b.y = 10.0, 50.0, 100.0, 50.0
        engine.aim("a", engine.angle_to("a", "b"))
        shots = 0
        while b.alive and shots < 10:
            engine.shoot("a")
            shots += 1
        assert not b.alive
        assert a.kills == 1 and b.deaths == 1
        for _ in range(40):
            engine.advance_tick()
        assert b.alive and b.health == 100

    def test_reload(self):
        engine, a, _ = self.make_engine()
        a.ammo = 0
        assert engine.reload("a") == DEFAULT_WEAPON.magazine

    def test_visibility_blocked_by_wall(self):
        engine, a, b = self.make_engine()
        assert engine.visible_players("a") == []

    def test_visibility_clear_line(self):
        state = GameState(game_map=GameMap(walls=()))
        engine = GameEngine(state)
        a, b = engine.join("a"), engine.join("b")
        a.x, a.y, b.x, b.y = 10.0, 50.0, 90.0, 50.0
        assert engine.visible_players("a") == ["b"]

    def test_nearest_opponent(self):
        state = GameState(game_map=GameMap(walls=()))
        engine = GameEngine(state)
        a, b, c = engine.join("a"), engine.join("b"), engine.join("c")
        a.x, a.y, b.x, b.y, c.x, c.y = 0, 0, 10, 0, 100, 0
        assert engine.nearest_opponent("a") == "b"

    def test_unknown_player_rejected(self):
        engine, _, _ = self.make_engine()
        with pytest.raises(KeyError):
            engine.move("ghost", 1, 0)

    def test_engine_determinism(self):
        def play():
            state = GameState(game_map=GameMap(walls=()))
            engine = GameEngine(state)
            engine.join("a"), engine.join("b")
            for i in range(50):
                engine.move("a", 1.0, 0.5)
                engine.aim("a", engine.angle_to("a", "b"))
                engine.shoot("a")
                engine.advance_tick()
            return state.to_dict()

        assert play() == play()


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        packet = {"type": "commands", "player": "a", "commands": []}
        assert decode_packet(encode_packet(packet)) == packet

    def test_decode_rejects_garbage(self):
        with pytest.raises(GuestError):
            decode_packet(b"\xff\xfe")
        with pytest.raises(GuestError):
            decode_packet(b'{"no_type": 1}')

    def test_canonical_encoding(self):
        a = encode_packet({"type": "x", "b": 1, "a": 2})
        b = encode_packet({"a": 2, "b": 1, "type": "x"})
        assert a == b

    def test_parse_keyboard_commands(self):
        assert parse_keyboard_command("move 1 0")["action"] == "move"
        assert parse_keyboard_command("aim 1.5")["angle"] == 1.5
        assert parse_keyboard_command("fire")["action"] == "fire"
        assert parse_keyboard_command("reload")["action"] == "reload"
        assert parse_keyboard_command("dance") is None
        assert parse_keyboard_command("move x y") is None
        assert parse_keyboard_command("") is None

    def test_game_packets_are_small(self):
        # Counterstrike-like command packets are tiny (Section 6.7).
        packet = commands_packet("p1", 10, [{"action": "fire"}])
        assert len(packet) < 150


def run_client(settings=None, cheated_class=None, events=()):
    """Run a client guest in a bare VM and return (guest, outputs per event)."""
    settings = settings or ClientSettings(player_id="p1", server="srv")
    guest_class = cheated_class or GameClientGuest
    image = VMImage(name="client", guest_factory=lambda: guest_class(settings))
    vm = VirtualMachine(image, nondet_source=FixedNondeterminismSource(default=1.0))
    outputs = [vm.start()]
    for event in events:
        outputs.append(vm.deliver_event(event))
    return vm.guest, outputs


def server_snapshot_event(players, message_id="snap-1"):
    """Build a snapshot PacketDelivery the client can consume."""
    state = GameState(game_map=GameMap(walls=()))
    for pid, (x, y) in players.items():
        player = state.add_player(pid)
        player.x, player.y = x, y
    return PacketDelivery(source="srv", payload=snapshot_packet(state.to_dict(), 1),
                          message_id=message_id)


class TestClientGuest:
    def test_sends_join_on_start(self):
        guest, outputs = run_client()
        packets = [o for o in outputs[0] if hasattr(o, "payload")]
        assert decode_packet(packets[0].payload)["type"] == "join"

    def test_fire_blocked_without_ammo(self):
        class StubApi:
            def consume_cycles(self, cycles):
                pass

        # A fresh client has ammunition, so firing is queued...
        guest_with_ammo, _ = run_client(events=[KeyboardInput(command="fire")])
        assert guest_with_ammo.pending_commands
        # ...but with an empty magazine the fire command is suppressed — the
        # behaviour that makes "more shots than ammo" a class-2 inconsistency.
        empty = GameClientGuest(ClientSettings(player_id="p1", server="srv"))
        empty.local_ammo = 0
        empty._on_keyboard(StubApi(), KeyboardInput(command="fire"))
        assert empty.pending_commands == []

    def test_commands_sent_every_other_tick(self):
        events = [KeyboardInput(command="move 1 0"), TimerInterrupt(1), TimerInterrupt(2)]
        guest, outputs = run_client(events=events)
        all_packets = [decode_packet(o.payload) for batch in outputs for o in batch
                       if hasattr(o, "payload")]
        assert any(p["type"] == "commands" for p in all_packets)

    def test_snapshot_updates_local_view(self):
        event = server_snapshot_event({"p1": (10, 10), "p2": (20, 20)})
        guest, _ = run_client(events=[event])
        assert guest.joined
        assert "p2" in guest.last_snapshot["players"]

    def test_visible_players_respects_walls(self):
        state = GameState(game_map=GameMap(walls=(Wall(40, 0, 60, 100),)))
        for pid, (x, y) in {"p1": (10, 50), "p2": (90, 50)}.items():
            player = state.add_player(pid)
            player.x, player.y = x, y
        event = PacketDelivery(source="srv",
                               payload=snapshot_packet(state.to_dict(), 1),
                               message_id="snap")
        guest, _ = run_client(events=[event])
        assert guest.hook_visible_players() == []

    def test_state_roundtrip(self):
        guest, _ = run_client(events=[KeyboardInput(command="move 1 0"), TimerInterrupt(1)])
        other = GameClientGuest(ClientSettings(player_id="p1", server="srv"))
        other.set_state(guest.get_state())
        assert other.get_state() == guest.get_state()

    def test_frame_cap_busy_waits(self):
        capped = ClientSettings(player_id="p1", server="srv", frame_cap_fps=50.0)
        guest, _ = run_client(settings=capped,
                              events=[TimerInterrupt(1), TimerInterrupt(2)])
        uncapped_guest, _ = run_client(events=[TimerInterrupt(1), TimerInterrupt(2)])
        # The capped client reads the clock far more often (busy-wait loop).
        assert len(guest.get_state()) == len(uncapped_guest.get_state())


class TestServerGuest:
    def run_server(self, events):
        image = make_server_image()
        vm = VirtualMachine(image, nondet_source=FixedNondeterminismSource(default=1.0))
        outputs = [vm.start()]
        for event in events:
            outputs.append(vm.deliver_event(event))
        return vm.guest, outputs

    def test_join_adds_player_and_replies(self):
        join = PacketDelivery(source="player1", payload=join_packet("player1"),
                              message_id="j1")
        guest, outputs = self.run_server([join])
        assert "player1" in guest.state.players
        replies = [o for o in outputs[1] if hasattr(o, "payload")]
        assert decode_packet(replies[0].payload)["type"] == "snapshot"

    def test_commands_applied_on_tick(self):
        join = PacketDelivery(source="player1", payload=join_packet("player1"),
                              message_id="j1")
        move = PacketDelivery(
            source="player1",
            payload=commands_packet("player1", 1, [{"action": "move", "dx": 1.0, "dy": 0.0}]),
            message_id="c1")
        guest, _ = self.run_server([join, move, TimerInterrupt(1)])
        player = guest.state.players["player1"]
        assert player.x != GameMap.default_arena().spawn_for(0)[0] or \
            player.y != GameMap.default_arena().spawn_for(0)[1] or player.x > 0

    def test_updates_broadcast_every_n_ticks(self):
        join = PacketDelivery(source="player1", payload=join_packet("player1"),
                              message_id="j1")
        events = [join] + [TimerInterrupt(i) for i in range(1, 7)]
        guest, outputs = self.run_server(events)
        updates = [o for batch in outputs for o in batch if hasattr(o, "payload")
                   and decode_packet(o.payload)["type"] in ("snapshot", "delta")]
        assert len(updates) >= 2
        # Per-tick updates are small, like the real game's packets (Section 6.7).
        deltas = [o for batch in outputs for o in batch if hasattr(o, "payload")
                  and decode_packet(o.payload)["type"] == "delta"]
        assert deltas and all(len(d.payload) < 400 for d in deltas)

    def test_server_state_roundtrip(self):
        join = PacketDelivery(source="player1", payload=join_packet("player1"),
                              message_id="j1")
        guest, _ = self.run_server([join, TimerInterrupt(1)])
        other = GameServerGuest()
        other.set_state(guest.get_state())
        assert other.get_state() == guest.get_state()


class TestCheats:
    def test_catalog_matches_table1(self):
        summary = catalog_summary()
        assert summary.total == 26
        assert summary.detectable == 26
        assert summary.detectable_this_implementation_only == 22
        assert summary.detectable_any_implementation == 4
        assert summary.not_detectable == 0

    def test_catalog_lookup(self):
        assert get_cheat_spec("aimbot").cheat_class & CheatClass.INSTALLED_IN_AVM
        with pytest.raises(KeyError):
            get_cheat_spec("not-a-cheat")

    def test_class2_cheats_are_the_memory_state_ones(self):
        class2 = {s.name for s in CHEAT_CATALOG if s.detectable_in_any_implementation}
        assert class2 == {"unlimited-ammo", "unlimited-health", "teleport", "rapid-fire"}

    def test_implemented_cheats_reference_catalog(self):
        names = {s.name for s in CHEAT_CATALOG}
        for cheat in implemented_cheats():
            assert cheat.spec_name in names

    def test_cheat_image_differs_from_reference(self):
        settings = ClientSettings(player_id="p1", server="srv")
        reference = make_client_image(settings)
        for cheat in implemented_cheats():
            assert not cheat.patch_image(settings).same_as(reference), cheat.spec_name

    def test_unlimited_ammo_fires_when_empty(self):
        settings = ClientSettings(player_id="p1", server="srv")
        cheated = UnlimitedAmmoCheat().patch_image(settings).instantiate()
        cheated.local_ammo = 0
        assert cheated.hook_allow_fire()
        honest = make_client_image(settings).instantiate()
        honest.local_ammo = 0
        assert not honest.hook_allow_fire()

    def test_wallhack_sees_through_walls(self):
        settings = ClientSettings(player_id="p1", server="srv")
        state = GameState(game_map=GameMap(walls=(Wall(40, 0, 60, 100),)))
        for pid, (x, y) in {"p1": (10, 50), "p2": (90, 50)}.items():
            player = state.add_player(pid)
            player.x, player.y = x, y
        snapshot = state.to_dict()
        honest = make_client_image(settings).instantiate()
        honest.last_snapshot = snapshot
        cheated = WallhackCheat().patch_image(settings).instantiate()
        cheated.last_snapshot = snapshot
        assert honest.hook_visible_players() == []
        assert cheated.hook_visible_players() == ["p2"]

    def test_speedhack_scales_moves(self):
        settings = ClientSettings(player_id="p1", server="srv")
        cheated = SpeedHackCheat().patch_image(settings).instantiate()
        assert cheated.hook_move_scale() > 1.0

    def test_aimbot_injects_aim_commands(self):
        settings = ClientSettings(player_id="p1", server="srv")
        cheated = AimbotCheat().patch_image(settings).instantiate()
        state = GameState(game_map=GameMap(walls=()))
        for pid, (x, y) in {"p1": (0, 0), "p2": (10, 10)}.items():
            player = state.add_player(pid)
            player.x, player.y = x, y
        cheated.last_snapshot = state.to_dict()
        transformed = cheated.hook_transform_commands([{"action": "fire"}])
        assert transformed[0]["action"] == "aim"
        assert transformed[0]["angle"] == pytest.approx(math.pi / 4, rel=1e-3)
        assert transformed[1]["action"] == "fire"
