"""Tests for segment concatenation/chunking, serialisation and compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LogFormatError, SegmentError
from repro.log.compression import VmmLogCompressor, bzip2_compress, bzip2_decompress
from repro.log.entries import EntryType, nondet_content, snapshot_content
from repro.log.segments import concatenate_segments, make_chunks
from repro.log.storage import (
    authenticators_from_bytes,
    authenticators_to_bytes,
    iter_segment_entries,
    read_segment,
    segment_from_bytes,
    segment_to_bytes,
    write_segment,
)
from repro.log.tamper_evident import TamperEvidentLog


def build_log_with_snapshots(segments=4, entries_per_segment=5):
    log = TamperEvidentLog("machine")
    for s in range(segments):
        for i in range(entries_per_segment):
            log.append(EntryType.TIMETRACKER, {
                "event_kind": "clock_read",
                "execution_counter": s * 100 + i,
                "branch_counter": s,
                "value": 0.25 * i,
            })
        log.append(EntryType.SNAPSHOT, snapshot_content(s + 1, bytes([s]) * 32, s * 100))
    return log


class TestSegments:
    def test_concatenate_contiguous(self):
        log = build_log_with_snapshots()
        segments = log.segments_between_snapshots()
        chunk = concatenate_segments(segments[:2])
        assert len(chunk) == len(segments[0]) + len(segments[1])
        chunk.verify_hash_chain()

    def test_concatenate_rejects_gap(self):
        log = build_log_with_snapshots()
        segments = log.segments_between_snapshots()
        with pytest.raises(SegmentError):
            concatenate_segments([segments[0], segments[2]])

    def test_concatenate_rejects_mixed_machines(self):
        log_a = build_log_with_snapshots(segments=1)
        log_b = TamperEvidentLog("other")
        log_b.append(EntryType.NONDET, nondet_content("x", 1))
        with pytest.raises(SegmentError):
            concatenate_segments([log_a.full_segment(), log_b.full_segment()])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(SegmentError):
            concatenate_segments([])

    def test_make_chunks_counts(self):
        log = build_log_with_snapshots(segments=5)
        segments = log.segments_between_snapshots()
        assert len(make_chunks(segments, 1)) == len(segments)
        assert len(make_chunks(segments, 2)) == len(segments) - 1
        assert len(make_chunks(segments, 2, skip_initial=True)) == len(segments) - 2

    def test_make_chunks_rejects_zero_k(self):
        with pytest.raises(SegmentError):
            make_chunks([], 0)

    def test_segment_size_bytes(self):
        log = build_log_with_snapshots(segments=1)
        segment = log.full_segment()
        assert segment.size_bytes() == sum(e.size_bytes() for e in segment.entries)

    def test_empty_segment_properties(self):
        segment = TamperEvidentLog("m").full_segment()
        with pytest.raises(SegmentError):
            _ = segment.first_sequence
        with pytest.raises(SegmentError):
            _ = segment.last_sequence


class TestStorage:
    def test_bytes_roundtrip(self):
        segment = build_log_with_snapshots().full_segment()
        assert segment_from_bytes(segment_to_bytes(segment)).to_dict() == segment.to_dict()

    def test_file_roundtrip(self, tmp_path):
        segment = build_log_with_snapshots(segments=1).full_segment()
        path = tmp_path / "segment.log"
        written = write_segment(segment, path)
        assert written == path.stat().st_size
        assert read_segment(path).to_dict() == segment.to_dict()

    def test_rejects_empty_data(self):
        with pytest.raises(LogFormatError):
            segment_from_bytes(b"")

    def test_rejects_wrong_kind(self):
        with pytest.raises(LogFormatError):
            segment_from_bytes(b'{"kind": "something-else"}\n')

    def test_rejects_entry_count_mismatch(self):
        segment = build_log_with_snapshots(segments=1).full_segment()
        data = segment_to_bytes(segment)
        truncated = b"\n".join(data.splitlines()[:-2]) + b"\n"
        with pytest.raises(LogFormatError):
            segment_from_bytes(truncated)

    def test_authenticator_roundtrip(self, ca):
        alice = ca.issue("alice")
        log = TamperEvidentLog("alice", keypair=alice)
        log.append(EntryType.NONDET, nondet_content("x", 1))
        auths = [log.authenticator_for(log.entry_at(1))]
        restored = authenticators_from_bytes(authenticators_to_bytes(auths))
        assert restored[0].to_dict() == auths[0].to_dict()

    def test_authenticator_rejects_wrong_kind(self):
        with pytest.raises(LogFormatError):
            authenticators_from_bytes(b'{"kind": "log_segment"}\n')

    def test_segment_rejects_wrong_format_version(self):
        segment = build_log_with_snapshots(segments=1).full_segment()
        data = segment_to_bytes(segment).replace(
            b'"format_version": 1', b'"format_version": 99', 1)
        with pytest.raises(LogFormatError, match="format version"):
            segment_from_bytes(data)

    def test_authenticators_reject_wrong_format_version(self, ca):
        alice = ca.issue("alice")
        log = TamperEvidentLog("alice", keypair=alice)
        log.append(EntryType.NONDET, nondet_content("x", 1))
        data = authenticators_to_bytes([log.authenticator_for(log.entry_at(1))])
        data = data.replace(b'"format_version": 1', b'"format_version": 99', 1)
        with pytest.raises(LogFormatError, match="format version"):
            authenticators_from_bytes(data)


class TestStreamingReader:
    def test_streams_entries_lazily(self, tmp_path):
        segment = build_log_with_snapshots().full_segment()
        path = tmp_path / "segment.log"
        write_segment(segment, path)
        iterator = iter_segment_entries(path)
        first = next(iterator)
        assert first == segment.entries[0]
        assert [first, *iterator] == segment.entries

    def test_accepts_open_file_object(self, tmp_path):
        segment = build_log_with_snapshots(segments=1).full_segment()
        path = tmp_path / "segment.log"
        write_segment(segment, path)
        with open(path, "r", encoding="utf-8") as handle:
            assert list(iter_segment_entries(handle)) == segment.entries

    def test_rejects_bad_header_before_first_entry(self, tmp_path):
        path = tmp_path / "segment.log"
        path.write_bytes(b'{"kind": "something-else"}\n')
        with pytest.raises(LogFormatError):
            next(iter_segment_entries(path))

    def test_rejects_wrong_format_version(self, tmp_path):
        segment = build_log_with_snapshots(segments=1).full_segment()
        path = tmp_path / "segment.log"
        data = segment_to_bytes(segment).replace(
            b'"format_version": 1', b'"format_version": 99', 1)
        path.write_bytes(data)
        with pytest.raises(LogFormatError, match="format version"):
            next(iter_segment_entries(path))

    def test_detects_truncated_file(self, tmp_path):
        segment = build_log_with_snapshots(segments=1).full_segment()
        path = tmp_path / "segment.log"
        data = segment_to_bytes(segment)
        path.write_bytes(b"\n".join(data.splitlines()[:-2]) + b"\n")
        with pytest.raises(LogFormatError, match="entry count mismatch"):
            list(iter_segment_entries(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "segment.log"
        path.write_bytes(b"")
        with pytest.raises(LogFormatError, match="empty"):
            next(iter_segment_entries(path))


class TestLogPicklability:
    def test_default_clock_log_pickles(self):
        # The default clock used to be a lambda, which broke pickling under
        # the process-pool audit path.
        import pickle
        log = build_log_with_snapshots(segments=1)
        restored = pickle.loads(pickle.dumps(log))
        assert restored.entries == log.entries
        assert restored.head_hash == log.head_hash
        restored.append(EntryType.NONDET, nondet_content("x", 1))


class TestCompression:
    def test_bzip2_roundtrip(self):
        data = b"hello " * 1000
        assert bzip2_decompress(bzip2_compress(data)) == data

    def test_vmm_compressor_roundtrip(self):
        segment = build_log_with_snapshots().full_segment()
        compressor = VmmLogCompressor()
        restored = compressor.decompress(compressor.compress(segment))
        assert restored.to_dict() == segment.to_dict()

    def test_vmm_compressor_shrinks_replay_logs(self):
        segment = build_log_with_snapshots(segments=8, entries_per_segment=40).full_segment()
        stats = VmmLogCompressor().stats(segment)
        assert stats.compressed_bytes < stats.raw_bytes
        assert 0 < stats.ratio < 1

    def test_vmm_compressor_rejects_bad_magic(self):
        with pytest.raises(LogFormatError):
            VmmLogCompressor().decompress(b"not-a-compressed-log")

    def test_compressed_segment_chain_still_verifies(self):
        segment = build_log_with_snapshots().full_segment()
        compressor = VmmLogCompressor()
        restored = compressor.decompress(compressor.compress(segment))
        restored.verify_hash_chain()

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10 ** 9),
                              st.floats(min_value=0, max_value=1e6,
                                        allow_nan=False, allow_infinity=False)),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, rows):
        log = TamperEvidentLog("machine")
        for counter, value in rows:
            log.append(EntryType.TIMETRACKER, {
                "event_kind": "clock_read",
                "execution_counter": counter,
                "branch_counter": 0,
                "value": value,
            })
        segment = log.full_segment()
        compressor = VmmLogCompressor()
        restored = compressor.decompress(compressor.compress(segment))
        assert restored.to_dict() == segment.to_dict()
