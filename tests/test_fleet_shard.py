"""The sharded fleet audit plane: placement, gossip conviction, handoff.

The contract under test (``docs/fleet-sharding.md``):

* consistent-hash placement is deterministic, balanced, and minimally
  disruptive when shards join;
* an N-shard fleet audit is *structurally identical* to the single-service
  pipeline — same :class:`~repro.audit.verdict.AuditResult` (verdict,
  evidence, modelled cost) per machine, honest and adversarial alike;
* a machine shipping distinct chains to different shards is convicted from
  gossiped authenticators alone, and no honest machine ever is;
* shard handoff is idempotent and resumable — an interrupted migration
  recovers without forking the archived chain.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.adversary.equivocation import alternate_authenticators
from repro.adversary.guests import make_cheating_kvserver_image
from repro.audit.auditor import Auditor
from repro.audit.multiparty import EquivocationProof, find_equivocation
from repro.audit.verdict import AuditPhase, Verdict
from repro.avmm.config import AvmmConfig, Configuration
from repro.avmm.monitor import AccountableVMM
from repro.crypto import hashing
from repro.errors import LogFormatError, RetentionError, StoreError
from repro.experiments.harness import build_trust
from repro.experiments.parallel_audit import build_fleet, drain_fleet_to_archive
from repro.log.authenticator import make_authenticator
from repro.log.hashchain import ChainCheckpoint
from repro.network.message import MessageKind, NetworkMessage
from repro.network.simnet import SimulatedNetwork
from repro.service.fleet import FleetCoordinator, modelled_shard_scaling
from repro.service.shard import ShardRing, migrate_machine
from repro.sim.scheduler import Scheduler
from repro.store.archive import LogArchive
from repro.workloads.kvstore import make_kvserver_image
from repro.workloads.sqlbench import SqlBenchSettings, make_sqlbench_image


def fleet_machine_names(count):
    return [f"db-{kind}-{index:02d}"
            for index in range(count // 2) for kind in ("server", "client")]


class TestShardRing:
    def test_placement_is_deterministic_across_instances(self):
        ids = [f"shard-{i}" for i in range(5)]
        first, second = ShardRing(ids), ShardRing(reversed(ids))
        for machine in fleet_machine_names(64):
            assert first.shard_for(machine) == second.shard_for(machine)

    def test_balance_at_fleet_scale(self):
        ring = ShardRing([f"shard-{i}" for i in range(4)])
        counts = ring.assignment_counts(fleet_machine_names(1000))
        assert sum(counts.values()) == 1000
        # 64 vnodes keep max/mean within ~1.3x at this scale.
        assert max(counts.values()) / (1000 / 4) < 1.35

    def test_adding_a_shard_moves_about_one_nth(self):
        machines = fleet_machine_names(1000)
        ring = ShardRing([f"shard-{i}" for i in range(4)])
        before = {machine: ring.shard_for(machine) for machine in machines}
        ring.add_shard("shard-4")
        moved = sum(1 for machine in machines
                    if ring.shard_for(machine) != before[machine])
        # Consistent hashing: only keys claimed by the new shard move
        # (~1/5th of the fleet), nothing reshuffles between survivors.
        assert 0 < moved < 2 * (1000 / 5)
        for machine in machines:
            new = ring.shard_for(machine)
            assert new == before[machine] or new == "shard-4"

    def test_empty_ring_and_duplicate_shards_are_errors(self):
        ring = ShardRing()
        with pytest.raises(StoreError):
            ring.shard_for("db-server-00")
        ring.add_shard("shard-0")
        with pytest.raises(ValueError):
            ring.add_shard("shard-0")
        ring.remove_shard("shard-0")
        with pytest.raises(ValueError):
            ring.remove_shard("shard-0")

    def test_modelled_scaling_monotone_and_serial_exact(self):
        costs = {machine: 1.0 + (index % 7) * 0.1
                 for index, machine in enumerate(fleet_machine_names(200))}
        points = modelled_shard_scaling(costs, (1, 2, 4, 8))
        assert points[0].makespan_seconds == pytest.approx(sum(costs.values()))
        makespans = [point.makespan_seconds for point in points]
        assert makespans == sorted(makespans, reverse=True)
        assert all(point.serial_seconds == pytest.approx(sum(costs.values()))
                   for point in points)


# -- EquivocationProof wire form (satellite: third-party verifiable) ---------

@pytest.fixture(scope="module")
def proof_parts(ca):
    """A genuine equivocation: two valid signatures on conflicting hashes."""
    from repro.crypto.keys import KeyStore
    keypair = ca.issue("mallory")
    keystore = KeyStore(ca)
    keystore.add_certificate(keypair.certificate)
    previous = hashing.hash_bytes(b"prefix")
    auths = []
    for branch in (b"left", b"right"):
        content = hashing.hash_bytes(b"content:" + branch)
        chain = hashing.hash_concat(previous, hashing.encode_int(9),
                                    "send".encode("utf-8"), content)
        auths.append(make_authenticator(keypair, sequence=9, chain_hash=chain,
                                        previous_hash=previous,
                                        entry_type="send",
                                        content_hash=content))
    proof = find_equivocation(auths, keystore)
    assert proof is not None and proof.verify(keystore)
    return proof, keystore


class TestEquivocationProofWire:
    def test_round_trip_preserves_verification(self, proof_parts):
        proof, keystore = proof_parts
        wire = json.dumps(proof.to_dict(), sort_keys=True)
        received = EquivocationProof.from_dict(json.loads(wire))
        assert received == proof
        assert received.verify(keystore)

    @pytest.mark.parametrize("mutate", [
        lambda d: d.__setitem__("machine", "alice"),
        lambda d: d.__setitem__("sequence", 10),
        lambda d: d["first"].__setitem__("chain_hash",
                                         d["second"]["chain_hash"]),
        lambda d: d["first"].__setitem__("signature",
                                         d["second"]["signature"]),
        lambda d: d["second"].__setitem__("sequence", 10),
        lambda d: d["second"].__setitem__("machine", "alice"),
        lambda d: d["second"].__setitem__("content_hash",
                                          d["first"]["content_hash"]),
    ])
    def test_any_mutated_field_fails_verification(self, proof_parts, mutate):
        proof, keystore = proof_parts
        payload = json.loads(json.dumps(proof.to_dict()))
        mutate(payload)
        assert not EquivocationProof.from_dict(payload).verify(keystore)

    def test_malformed_payloads_raise_log_format_error(self, proof_parts):
        proof, _ = proof_parts
        good = proof.to_dict()
        for breakage in (
                {**good, "kind": "not-a-proof"},
                {**good, "sequence": "not-an-int"},
                {key: value for key, value in good.items() if key != "first"},
                {**good, "second": {"machine": "mallory"}},
        ):
            with pytest.raises(LogFormatError):
                EquivocationProof.from_dict(breakage)


# -- per-service metrics / per-network message ids (satellites) --------------

class TestScopedInstruments:
    def test_shard_services_do_not_clobber_each_other(self, tmp_path):
        from repro.obs import Observability
        from repro.service.ingest import AuditIngestService
        obs = Observability.make()
        first = AuditIngestService(LogArchive(tmp_path / "a"),
                                   identity="shard-a", obs=obs)
        second = AuditIngestService(LogArchive(tmp_path / "b"),
                                    identity="shard-b", obs=obs)
        first._m_messages.inc()
        first._m_messages.inc()
        second._m_messages.inc()
        assert obs.metrics.value("ingest.shard-a.messages_total") == 2
        assert obs.metrics.value("ingest.shard-b.messages_total") == 1
        # Distinct instruments, not one shared via the registry name cache.
        assert first._m_messages is not second._m_messages

    def test_default_identity_keeps_historical_bare_names(self, tmp_path):
        from repro.obs import Observability
        from repro.service.ingest import AuditIngestService
        obs = Observability.make()
        service = AuditIngestService(LogArchive(tmp_path / "arch"), obs=obs)
        service._m_messages.inc()
        assert obs.metrics.value("ingest.messages_total") == 1

    def test_scoped_wrapper_reads_back_through_registry(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        scoped = registry.scoped("fleet.")
        scoped.counter("migrations_total").inc(3)
        scoped.gauge("shards").set(4)
        assert registry.value("fleet.migrations_total") == 3
        assert scoped.value("shards") == 4
        assert scoped.get("migrations_total") is registry.get(
            "fleet.migrations_total")


class TestPerNetworkMessageIds:
    def test_independent_networks_allocate_independently(self):
        first = SimulatedNetwork(Scheduler())
        second = SimulatedNetwork(Scheduler())
        assert [first.allocate_message_id() for _ in range(3)] == \
            ["m0000000001", "m0000000002", "m0000000003"]
        # A fresh network starts from 1 regardless of traffic elsewhere.
        assert second.allocate_message_id() == "m0000000001"

    def test_same_seed_fleets_identical_without_global_reset(self):
        # Two same-seed recordings in one process must produce identical
        # chains even though no one called reset_message_ids() in between —
        # the ids that land in RECV/ACK entries come from each recording's
        # own network, not a process-global counter.
        heads = []
        for _ in range(2):
            fleet = build_fleet(num_machines=2, duration=1.0, seed=13,
                                snapshot_interval=0.5)
            heads.append({machine: fleet.monitors[machine].log.head_hash
                          for machine in fleet.machines})
        assert heads[0] == heads[1]

    def test_reset_shim_still_governs_fallback_counter_but_warns(self):
        from repro.network.message import reset_message_ids
        with pytest.warns(DeprecationWarning, match="per network instance"):
            reset_message_ids()
        first = NetworkMessage(source="a", destination="b", payload=b"x")
        with pytest.warns(DeprecationWarning):
            reset_message_ids()
        second = NetworkMessage(source="a", destination="b", payload=b"y")
        assert first.message_id == second.message_id


# -- N shards vs one service: structural identity (satellite) ----------------

def single_service_audit(fleet):
    """The single-service audit policy the coordinator must reproduce."""
    ingest = fleet.ingest
    machines = sorted(set(ingest.archive.machines())
                      | set(ingest.quarantined_machines()))
    results = {}
    for machine in machines:
        if not ingest.archive.segment_records(machine) \
                and machine not in ingest.quarantined_machines():
            continue  # authenticator-only entries: no verdict owed
        auditor = fleet.make_auditor(machine, collect=False)
        auditor.collect_authenticators(
            machine, ingest.archive.authenticators_for(machine))
        quarantined = ingest.quarantine_for(machine)
        if quarantined:
            results[machine] = auditor.suspect(
                machine,
                reason=f"archive quarantined {len(quarantined)} "
                       f"shipment(s): {quarantined[0].reason}")
        else:
            results[machine] = ingest.audit_machine(auditor, machine,
                                                    collect=False)
    return results


def coordinator_audit(fleet):
    return fleet.coordinator.audit_fleet(
        lambda machine: fleet.make_auditor(machine, collect=False),
        fleet.keystore)


def test_sharded_audit_structurally_identical_to_single_service(tmp_path):
    """One staged walk: honest, forged, quarantined, then equivocating.

    Each adversary cell mutates *both* pipelines identically and re-audits;
    the per-machine :class:`AuditResult`\\ s must stay equal (dataclass
    ``==``: verdict, phase, evidence, modelled cost) at every stage.  The
    stages live in one test because they share the two recordings and must
    apply in a fixed order regardless of test-shuffle.
    """
    kwargs = dict(num_machines=8, duration=1.5, seed=23,
                  snapshot_interval=0.5)
    single = build_fleet(archive=LogArchive(tmp_path / "single"), **kwargs)
    coordinator = FleetCoordinator.build(tmp_path / "sharded", 4)
    sharded = build_fleet(coordinator=coordinator, **kwargs)
    # Same-seed recordings are bit-identical, so adversarial injections
    # forged from either fleet's logs/keys agree across the two pipelines.
    assert {m: single.monitors[m].log.head_hash for m in single.machines} \
        == {m: sharded.monitors[m].log.head_hash for m in sharded.machines}

    # Stage 1: honest fleet.
    baseline = single_service_audit(single)
    outcome = coordinator_audit(sharded)
    assert outcome.results == baseline
    assert outcome.all_passed and outcome.convictions == {}
    assert outcome.cross_shard_forks == []
    # The identity is not vacuous: gossip really pooled commitments (an
    # empty pool would also "match" a baseline that skipped collection).
    assert all(result.authenticators_checked > 0
               for result in outcome.results.values())
    # Chains spread over several shards, each machine owned by exactly one.
    assert len(set(outcome.shard_of.values())) > 1
    assert sorted(outcome.shard_of) == single.machines

    # Stage 2: forged authenticator — validly signed, contradicts the log.
    forger = single.machines[1]
    collector = single.peers[forger]
    covered = {auth.sequence
               for auth in single.ingest.archive.authenticators_for(forger)}
    # A committed sequence no genuine authenticator covers: the forgery
    # fails AUTHENTICATOR_CHECK without forming an equivocating pair, so
    # conviction stays reserved for stage 4.
    sequence = next(s for s in range(1, len(single.monitors[forger].log) + 1)
                    if s not in covered)
    for fleet in (single, sharded):
        forged = alternate_authenticators(
            fleet.monitors[forger].log, fleet.keypairs[forger],
            random.Random(99), sequence, 1)
        if fleet.coordinator is None:
            fleet.ingest.ingest_authenticators(forger, forged)
        else:
            # Append where the collector's genuine batches landed, so the
            # pooled order matches the single archive's batch order.
            fleet.coordinator.shard_for_machine(
                collector).service.ingest_authenticators(forger, forged)
    baseline = single_service_audit(single)
    outcome = coordinator_audit(sharded)
    assert outcome.results == baseline
    assert outcome.results[forger].verdict is Verdict.FAIL
    assert outcome.results[forger].phase is AuditPhase.AUTHENTICATOR_CHECK
    assert forger not in outcome.convictions

    # Stage 3: lying shipper — garbage shipment, quarantined, SUSPECTED.
    liar = single.machines[2]
    for fleet in (single, sharded):
        service = (fleet.ingest if fleet.coordinator is None
                   else fleet.coordinator.shard_for_machine(liar).service)
        service.on_message(NetworkMessage(
            source=liar, destination=service.identity,
            payload=b"not a log segment",
            kind=MessageKind.ARCHIVE_SEGMENT, message_id="mx"))
    baseline = single_service_audit(single)
    outcome = coordinator_audit(sharded)
    assert outcome.results == baseline
    assert outcome.results[liar].verdict is Verdict.SUSPECTED
    assert outcome.quarantined[liar] == 1

    # Stage 4: cross-shard equivocation (sharded-only by nature — a single
    # service holds one pool, so the fork is visible only through gossip).
    equivocator = single.machines[3]
    genuine_home = coordinator.shard_for_machine(
        sharded.peers[equivocator]).identity
    foreign = next(shard for shard in coordinator.shards
                   if shard.identity != genuine_home)
    alternates = alternate_authenticators(
        sharded.monitors[equivocator].log, sharded.keypairs[equivocator],
        random.Random(7), 2, 3)
    foreign.service.ingest_authenticators(equivocator, alternates)
    outcome = coordinator_audit(sharded)
    # Convicted purely from pooled gossip: the foreign shard never held the
    # genuine commitments and the home shard never saw the alternates.
    assert set(outcome.convictions) == {equivocator}
    assert outcome.convictions[equivocator].verify(sharded.keystore)
    assert outcome.verdict_for(equivocator) == "convicted"
    honest = [machine for machine in outcome.results
              if machine not in (equivocator, forger, liar)]
    assert honest and all(outcome.results[machine].verdict is Verdict.PASS
                          for machine in honest)


def test_cheating_guest_fails_semantically_in_both_pipelines(
        tmp_path, monkeypatch):
    from repro.experiments import parallel_audit

    def build_cheating(which):
        calls = {"count": 0}

        def patched(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:  # the first server built cheats
                return make_cheating_kvserver_image()
            return make_kvserver_image(*args, **kwargs)

        monkeypatch.setattr(parallel_audit, "make_kvserver_image", patched)
        kwargs = dict(num_machines=4, duration=1.5, seed=31,
                      snapshot_interval=0.5)
        if which == "single":
            fleet = build_fleet(archive=LogArchive(tmp_path / "single"),
                                **kwargs)
        else:
            fleet = build_fleet(
                coordinator=FleetCoordinator.build(tmp_path / "sharded", 4),
                **kwargs)
        # The recorded image cheats; the *reference* must be honest or the
        # replay would just reproduce the cheat.
        fleet.reference_images["db-server-00"] = make_kvserver_image()
        return fleet

    single = build_cheating("single")
    sharded = build_cheating("sharded")
    baseline = single_service_audit(single)
    outcome = coordinator_audit(sharded)
    assert outcome.results == baseline
    assert outcome.results["db-server-00"].verdict is Verdict.FAIL
    assert outcome.results["db-server-00"].phase is AuditPhase.SEMANTIC_CHECK
    assert outcome.convictions == {}


# -- shard handoff: idempotent, resumable, never forks -----------------------

@pytest.fixture()
def small_sharded_fleet(tmp_path):
    coordinator = FleetCoordinator.build(tmp_path / "fleet", 2)
    fleet = build_fleet(num_machines=4, duration=1.5, seed=41,
                        snapshot_interval=0.5, coordinator=coordinator)
    return fleet, coordinator


def audit_one(fleet, coordinator, machine):
    shard = coordinator.shard_for_machine(machine)
    auditor = fleet.make_auditor(machine, collect=False)
    auditor.collect_authenticators(
        machine,
        coordinator.pool_gossip(coordinator.gossip_authenticators(), machine))
    return shard.service.audit_machine(auditor, machine, collect=False)


class TestShardHandoff:
    def test_migration_moves_chain_and_audit_still_passes(
            self, small_sharded_fleet):
        fleet, coordinator = small_sharded_fleet
        machine = fleet.machines[0]
        source = coordinator.shard_for_machine(machine)
        destination = next(shard for shard in coordinator.shards
                           if shard.identity != source.identity)
        before = audit_one(fleet, coordinator, machine)
        snapshots_before = source.archive.snapshot_store(
            machine).snapshot_ids()

        report = coordinator.rebalance(machine, destination.identity,
                                       monitor=fleet.monitors[machine])
        assert coordinator.shard_for_machine(machine) is destination
        assert machine not in source.archived_machines()
        assert machine in destination.archived_machines()
        assert report.segments_copied > 0 and report.source_files_removed > 0
        assert report.snapshots_copied == len(snapshots_before)
        assert destination.archive.snapshot_store(machine).snapshot_ids() \
            == snapshots_before
        # Chain continuity re-proven at ingest; the verdict is unchanged.
        after = audit_one(fleet, coordinator, machine)
        assert after == before
        assert after.verdict is Verdict.PASS

    def test_interrupted_handoff_resumes_without_forking(
            self, small_sharded_fleet, monkeypatch):
        fleet, coordinator = small_sharded_fleet
        machine = fleet.machines[0]
        source = coordinator.shard_for_machine(machine)
        destination = next(shard for shard in coordinator.shards
                           if shard.identity != source.identity)
        before = audit_one(fleet, coordinator, machine)

        real_append = destination.archive.append_segment
        calls = {"count": 0}

        def failing_append(segment, **kwargs):
            calls["count"] += 1
            if calls["count"] == 2:
                raise OSError("simulated crash mid-handoff")
            return real_append(segment, **kwargs)

        monkeypatch.setattr(destination.archive, "append_segment",
                            failing_append)
        with pytest.raises(OSError):
            migrate_machine(machine, source, destination)
        # Interrupted: the source still owns the chain (forget runs last),
        # the destination holds a verified prefix — nothing forked.
        assert machine in source.archived_machines()
        monkeypatch.setattr(destination.archive, "append_segment", real_append)

        report = migrate_machine(machine, source, destination)
        assert report.segments_already_present > 0
        assert machine not in source.archived_machines()
        coordinator._placement_overrides[machine] = destination.identity
        after = audit_one(fleet, coordinator, machine)
        assert after == before and after.verdict is Verdict.PASS

    def test_migrating_to_the_same_shard_is_refused(self, small_sharded_fleet):
        fleet, coordinator = small_sharded_fleet
        machine = fleet.machines[0]
        home = coordinator.shard_for_machine(machine)
        with pytest.raises(StoreError):
            migrate_machine(machine, home, home)

    def test_quarantined_machine_cannot_migrate(self, small_sharded_fleet):
        fleet, coordinator = small_sharded_fleet
        machine = fleet.machines[0]
        source = coordinator.shard_for_machine(machine)
        destination = next(shard for shard in coordinator.shards
                           if shard.identity != source.identity)
        source.service.on_message(NetworkMessage(
            source=machine, destination=source.identity, payload=b"garbage",
            kind=MessageKind.ARCHIVE_SEGMENT, message_id="mq"))
        with pytest.raises(StoreError, match="quarantined"):
            migrate_machine(machine, source, destination)

    def test_retention_checkpoint_adoption_guards_forks(self, tmp_path):
        empty = LogArchive(tmp_path / "dst")
        anchor = ChainCheckpoint(sequence=10,
                                 chain_hash=hashing.hash_bytes(b"anchor"))
        empty.adopt_retention_checkpoint("m", anchor)
        empty.adopt_retention_checkpoint("m", anchor)  # idempotent-if-equal
        assert empty.retained_checkpoint("m") == anchor
        conflicting = ChainCheckpoint(
            sequence=10, chain_hash=hashing.hash_bytes(b"other"))
        with pytest.raises(RetentionError):
            empty.adopt_retention_checkpoint("m", conflicting)


def test_mid_run_rebalance_keeps_recording_onto_new_shard(tmp_path):
    """Rebalance while the fleet is live: the chain continues on the new shard.

    The monitors are never stopped.  Phase 1 records and ships to the ring
    home; the machine's traffic is quiesced (tail shipped and delivered),
    the chain migrates, the shipper is repointed; phase 2 keeps recording
    and the destination archive must extend the migrated chain — with the
    first post-handoff snapshot shipped as a keyframe, since the new shard
    has no delta base.
    """
    scheduler = Scheduler()
    network = SimulatedNetwork(scheduler)
    config = AvmmConfig.for_configuration(Configuration.AVMM_RSA768,
                                          snapshot_interval=0.5)
    server, client = "db-server-00", "db-client-00"
    _, keypairs, keystore = build_trust([server, client, "auditor"],
                                        scheme=config.signature_scheme,
                                        seed=51)
    images = {server: make_kvserver_image(),
              client: make_sqlbench_image(SqlBenchSettings(server=server))}
    monitors = {
        server: AccountableVMM(server, images[server], config, scheduler,
                               network, keypair=keypairs[server],
                               keystore=keystore),
        client: AccountableVMM(client, images[client], config, scheduler,
                               network, keypair=keypairs[client],
                               keystore=keystore, clock_offset=0.0002),
    }
    coordinator = FleetCoordinator.build(tmp_path / "fleet", 2,
                                         network=network)
    coordinator.attach_fleet(monitors.values())
    for monitor in monitors.values():
        monitor.start()

    # Phase 1 — run past a couple of seal boundaries, then quiesce the
    # migrating machine between snapshot ticks (no seal in flight).
    scheduler.run_until(1.23)
    monitor = monitors[server]
    monitor.ship_archive_tail()
    scheduler.run_until(1.40)
    source = coordinator.shard_for_machine(server)
    destination = next(shard for shard in coordinator.shards
                       if shard.identity != source.identity)
    head_at_handoff = len(monitor.log)

    report = coordinator.rebalance(server, destination.identity,
                                   monitor=monitor)
    assert monitor.archive_destination == destination.identity
    assert report.destination_head_sequence == monitor.shipped_through

    # Phase 2 — same run continues; new segments ship to the new home.
    scheduler.run_until(3.0)
    for monitor_ in monitors.values():
        monitor_.stop()
    drain_fleet_to_archive(scheduler, monitors)

    assert len(monitor.log) > head_at_handoff
    assert destination.archive.head_checkpoint(server).sequence \
        == len(monitor.log)
    assert server not in source.archived_machines()
    assert source.service.quarantine_for(server) == []

    auditor = Auditor("auditor", keystore, images[server])
    auditor.collect_authenticators(
        server,
        coordinator.pool_gossip(coordinator.gossip_authenticators(), server))
    result = destination.service.audit_machine(auditor, server, collect=False)
    assert result.verdict is Verdict.PASS, result.reason
