"""Shared fixtures for the test suite.

Expensive artefacts (certified key pairs, a short recorded game session) are
session-scoped so the many tests that only *read* them do not pay for them
repeatedly.

The package is normally installed with ``pip install -e .`` (CI does); for a
clean checkout without an install, the fallback below puts the ``src/``
layout on ``sys.path`` so plain ``python -m pytest`` still works.

Opt-in seeded test-order shuffling (hidden inter-test ordering dependencies
are bugs; CI runs the fast stage shuffled to flush them out):

* ``--shuffle`` or ``REPRO_TEST_SHUFFLE=1`` enables it;
* ``--shuffle-seed N`` / ``REPRO_TEST_SHUFFLE_SEED=N`` pins the order; by
  default a fresh seed is drawn per run and printed in the header (and again
  in the summary when anything fails) so the exact order can be reproduced.
"""

from __future__ import annotations

import os
import random
import sys

if "repro" not in sys.modules:
    try:  # the installed package wins
        import repro  # noqa: F401
    except ImportError:  # clean checkout: fall back to the src/ layout
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest


def pytest_addoption(parser):
    parser.addoption("--shuffle", action="store_true", default=False,
                     help="shuffle test order (also: REPRO_TEST_SHUFFLE=1)")
    parser.addoption("--shuffle-seed", type=int, default=None,
                     help="seed for --shuffle (also: REPRO_TEST_SHUFFLE_SEED)")


def _shuffle_enabled(config) -> bool:
    if config.getoption("--shuffle"):
        return True
    return os.environ.get("REPRO_TEST_SHUFFLE", "").strip().lower() in (
        "1", "true", "yes", "on")


def _shuffle_seed(config) -> int:
    seed = config.getoption("--shuffle-seed")
    if seed is None:
        env = os.environ.get("REPRO_TEST_SHUFFLE_SEED", "").strip()
        seed = int(env) if env else random.SystemRandom().randrange(2 ** 32)
    return seed


def pytest_configure(config):
    if _shuffle_enabled(config):
        config._repro_shuffle_seed = _shuffle_seed(config)


def pytest_report_header(config):
    seed = getattr(config, "_repro_shuffle_seed", None)
    if seed is None:
        return None
    return (f"repro: shuffling test order with seed {seed} "
            f"(reproduce with --shuffle --shuffle-seed {seed})")


def pytest_collection_modifyitems(config, items):
    seed = getattr(config, "_repro_shuffle_seed", None)
    if seed is not None:
        random.Random(seed).shuffle(items)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    seed = getattr(config, "_repro_shuffle_seed", None)
    if seed is not None and exitstatus != 0:
        terminalreporter.write_sep(
            "=", f"test order was shuffled — reproduce this order with "
                 f"--shuffle --shuffle-seed {seed}")

from repro.avmm.config import Configuration
from repro.crypto.keys import CertificateAuthority, KeyStore
from repro.experiments.harness import GameSession, GameSessionSettings
from repro.game.cheats.implementations import UnlimitedAmmoCheat


@pytest.fixture(scope="session")
def ca() -> CertificateAuthority:
    """A certificate authority using real RSA-768 keys."""
    return CertificateAuthority(scheme="rsa768", seed=1234)


@pytest.fixture(scope="session")
def keystore(ca) -> KeyStore:
    """A keystore pre-loaded with certificates for the standard test parties."""
    store = KeyStore(ca)
    for identity in ("alice", "bob", "charlie", "server",
                     "player1", "player2", "player3"):
        store.add_certificate(ca.issue(identity).certificate)
    return store


@pytest.fixture(scope="session")
def honest_session() -> GameSession:
    """A short, fully honest 3-player game recorded under avmm-rsa768."""
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768,
        num_players=3, duration=6.0, seed=11, snapshot_interval=3.0)
    session = GameSession(settings)
    session.run()
    return session


@pytest.fixture(scope="session")
def cheater_session() -> GameSession:
    """A short game in which player1 runs the unlimited-ammo cheat image."""
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768,
        num_players=2, duration=6.0, seed=12, snapshot_interval=3.0,
        cheats={"player1": UnlimitedAmmoCheat()})
    session = GameSession(settings)
    session.run()
    return session
