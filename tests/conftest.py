"""Shared fixtures for the test suite.

Expensive artefacts (certified key pairs, a short recorded game session) are
session-scoped so the many tests that only *read* them do not pay for them
repeatedly.

The package is normally installed with ``pip install -e .`` (CI does); for a
clean checkout without an install, the fallback below puts the ``src/``
layout on ``sys.path`` so plain ``python -m pytest`` still works.
"""

from __future__ import annotations

import os
import sys

if "repro" not in sys.modules:
    try:  # the installed package wins
        import repro  # noqa: F401
    except ImportError:  # clean checkout: fall back to the src/ layout
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.avmm.config import Configuration
from repro.crypto.keys import CertificateAuthority, KeyStore
from repro.experiments.harness import GameSession, GameSessionSettings
from repro.game.cheats.implementations import UnlimitedAmmoCheat


@pytest.fixture(scope="session")
def ca() -> CertificateAuthority:
    """A certificate authority using real RSA-768 keys."""
    return CertificateAuthority(scheme="rsa768", seed=1234)


@pytest.fixture(scope="session")
def keystore(ca) -> KeyStore:
    """A keystore pre-loaded with certificates for the standard test parties."""
    store = KeyStore(ca)
    for identity in ("alice", "bob", "charlie", "server",
                     "player1", "player2", "player3"):
        store.add_certificate(ca.issue(identity).certificate)
    return store


@pytest.fixture(scope="session")
def honest_session() -> GameSession:
    """A short, fully honest 3-player game recorded under avmm-rsa768."""
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768,
        num_players=3, duration=6.0, seed=11, snapshot_interval=3.0)
    session = GameSession(settings)
    session.run()
    return session


@pytest.fixture(scope="session")
def cheater_session() -> GameSession:
    """A short game in which player1 runs the unlimited-ammo cheat image."""
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768,
        num_players=2, duration=6.0, seed=12, snapshot_interval=3.0,
        cheats={"player1": UnlimitedAmmoCheat()})
    session = GameSession(settings)
    session.run()
    return session
