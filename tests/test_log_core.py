"""Tests for log entries, the hash chain, authenticators and the tamper-evident log."""

import pytest

from repro.crypto import hashing
from repro.errors import (
    AuthenticatorMismatchError,
    HashChainError,
    LogFormatError,
    SegmentError,
)
from repro.log.authenticator import Authenticator, make_authenticator
from repro.log.entries import (
    EntryType,
    LogEntry,
    ack_content,
    encode_content,
    nondet_content,
    recv_content,
    send_content,
    snapshot_content,
)
from repro.log.hashchain import chain_hash, is_chain_intact, verify_chain, verify_entry
from repro.log.tamper_evident import TamperEvidentLog


def make_log(machine="alice", keypair=None, entries=10):
    log = TamperEvidentLog(machine, keypair=keypair)
    for i in range(entries):
        log.append(EntryType.NONDET, nondet_content("tick", i))
    return log


class TestEntries:
    def test_entry_roundtrip_via_dict(self):
        log = make_log(entries=1)
        entry = log.entries[0]
        assert LogEntry.from_dict(entry.to_dict()) == entry

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(LogFormatError):
            LogEntry.from_dict({"sequence": "x"})

    def test_encode_content_sorted_and_stable(self):
        assert encode_content({"b": 1, "a": 2}) == encode_content({"a": 2, "b": 1})

    def test_encode_content_handles_bytes(self):
        encoded = encode_content({"k": b"\x01"})
        assert b"__bytes__" in encoded

    def test_encode_content_rejects_unserialisable(self):
        with pytest.raises(LogFormatError):
            encode_content({"k": object()})

    def test_content_constructors(self):
        assert send_content("bob", b"\x00" * 32, 10, "m1")["destination"] == "bob"
        assert recv_content("bob", b"\x00" * 32, 10, "m1", b"sig")["source"] == "bob"
        assert ack_content("bob", "m1", "sent", 3)["direction"] == "sent"
        assert snapshot_content(1, b"\x11" * 32, 100)["snapshot_id"] == 1
        assert nondet_content("clock", 5)["execution_counter"] == 5

    def test_ack_content_rejects_bad_direction(self):
        with pytest.raises(LogFormatError):
            ack_content("bob", "m1", "sideways", 3)

    def test_size_bytes_positive(self):
        log = make_log(entries=1)
        assert log.entries[0].size_bytes() > 0


class TestHashChain:
    def test_chain_hash_depends_on_all_fields(self):
        base = chain_hash(hashing.ZERO_HASH, 1, EntryType.SEND, {"a": 1})
        assert base != chain_hash(hashing.ZERO_HASH, 2, EntryType.SEND, {"a": 1})
        assert base != chain_hash(hashing.ZERO_HASH, 1, EntryType.RECV, {"a": 1})
        assert base != chain_hash(hashing.ZERO_HASH, 1, EntryType.SEND, {"a": 2})
        assert base != chain_hash(b"\x01" * 32, 1, EntryType.SEND, {"a": 1})

    def test_verify_entry(self):
        log = make_log(entries=3)
        for entry in log:
            assert verify_entry(entry)

    def test_verify_chain_accepts_valid_log(self):
        log = make_log(entries=20)
        verify_chain(log.entries, expected_start_hash=hashing.ZERO_HASH)
        assert is_chain_intact(log.entries)

    def test_verify_chain_detects_content_tampering(self):
        log = make_log(entries=5)
        log.tamper_replace_entry(3, {"event_kind": "tick", "execution_counter": 999,
                                     "data": {}}, recompute_chain=False)
        assert not is_chain_intact(log.entries)

    def test_verify_chain_detects_dropped_entry(self):
        log = make_log(entries=5)
        log.tamper_drop_entry(3)
        assert not is_chain_intact(log.entries)

    def test_verify_chain_detects_wrong_start_hash(self):
        log = make_log(entries=3)
        with pytest.raises(HashChainError):
            verify_chain(log.entries, expected_start_hash=b"\x01" * 32)


class TestTamperEvidentLog:
    def test_sequence_numbers_are_dense(self):
        log = make_log(entries=5)
        assert [e.sequence for e in log] == [1, 2, 3, 4, 5]

    def test_head_hash_matches_last_entry(self):
        log = make_log(entries=5)
        assert log.head_hash == log.entries[-1].chain_hash

    def test_empty_log_head_is_zero(self):
        assert TamperEvidentLog("x").head_hash == hashing.ZERO_HASH

    def test_entry_at(self):
        log = make_log(entries=5)
        assert log.entry_at(3).sequence == 3
        with pytest.raises(SegmentError):
            log.entry_at(6)

    def test_entries_of_type(self):
        log = make_log(entries=2)
        log.append(EntryType.SEND, send_content("bob", b"\x00" * 32, 1, "m"))
        assert len(log.entries_of_type(EntryType.SEND)) == 1
        assert len(log.entries_of_type(EntryType.NONDET)) == 2

    def test_size_by_type_sums_to_total(self):
        log = make_log(entries=4)
        log.append(EntryType.SEND, send_content("bob", b"\x00" * 32, 1, "m"))
        assert sum(log.size_by_type().values()) == log.size_bytes()

    def test_segment_extraction(self):
        log = make_log(entries=10)
        segment = log.segment(3, 7)
        assert segment.first_sequence == 3
        assert segment.last_sequence == 7
        assert segment.start_hash == log.entry_at(2).chain_hash
        segment.verify_hash_chain()

    def test_segment_bad_ranges(self):
        log = make_log(entries=5)
        with pytest.raises(SegmentError):
            log.segment(0, 3)
        with pytest.raises(SegmentError):
            log.segment(2, 9)
        with pytest.raises(SegmentError):
            log.segment(4, 2)

    def test_full_segment_of_empty_log(self):
        segment = TamperEvidentLog("x").full_segment()
        assert len(segment) == 0

    def test_segments_between_snapshots(self):
        log = make_log(entries=3)
        log.append(EntryType.SNAPSHOT, snapshot_content(1, b"\x00" * 32, 10))
        for i in range(2):
            log.append(EntryType.NONDET, nondet_content("tick", 100 + i))
        log.append(EntryType.SNAPSHOT, snapshot_content(2, b"\x00" * 32, 20))
        log.append(EntryType.NONDET, nondet_content("tick", 200))
        segments = log.segments_between_snapshots()
        assert len(segments) == 3
        assert segments[0].entries[-1].entry_type is EntryType.SNAPSHOT
        assert segments[-1].entries[-1].entry_type is EntryType.NONDET

    def test_segments_without_snapshots_is_whole_log(self):
        log = make_log(entries=4)
        segments = log.segments_between_snapshots()
        assert len(segments) == 1
        assert len(segments[0]) == 4


class TestAuthenticators:
    def test_authenticator_verifies(self, ca, keystore):
        alice = ca.issue("alice")
        log = make_log("alice", keypair=alice, entries=3)
        entry = log.entry_at(2)
        auth = log.authenticator_for(entry)
        assert auth.machine == "alice"
        assert auth.verify(keystore)

    def test_authenticator_dict_roundtrip(self, ca, keystore):
        alice = ca.issue("alice")
        log = make_log("alice", keypair=alice, entries=2)
        auth = log.authenticator_for(log.entry_at(1))
        assert Authenticator.from_dict(auth.to_dict()).verify(keystore)

    def test_forged_authenticator_rejected(self, ca, keystore):
        alice = ca.issue("alice")
        log = make_log("alice", keypair=alice, entries=2)
        auth = log.authenticator_for(log.entry_at(1))
        forged = Authenticator(machine="alice", sequence=auth.sequence,
                               chain_hash=b"\x01" * 32, signature=auth.signature,
                               previous_hash=auth.previous_hash,
                               entry_type=auth.entry_type,
                               content_hash=auth.content_hash)
        assert not forged.verify(keystore)

    def test_authenticator_signed_by_other_party_rejected(self, ca, keystore):
        bob = ca.issue("bob")
        auth = make_authenticator(bob, sequence=1, chain_hash=b"\x02" * 32,
                                  previous_hash=hashing.ZERO_HASH,
                                  entry_type="send", content_hash=b"\x03" * 32)
        claimed = Authenticator(machine="alice", sequence=1, chain_hash=auth.chain_hash,
                                signature=auth.signature,
                                previous_hash=auth.previous_hash,
                                entry_type=auth.entry_type,
                                content_hash=auth.content_hash)
        assert not claimed.verify(keystore)

    def test_segment_verification_against_authenticators(self, ca, keystore):
        alice = ca.issue("alice")
        log = make_log("alice", keypair=alice, entries=8)
        authenticators = [log.authenticator_for(log.entry_at(i)) for i in (2, 5, 8)]
        segment = log.full_segment()
        assert segment.verify_against_authenticators(authenticators, keystore) == 3

    def test_tampered_log_fails_authenticator_check(self, ca, keystore):
        alice = ca.issue("alice")
        log = make_log("alice", keypair=alice, entries=8)
        authenticators = [log.authenticator_for(log.entry_at(i)) for i in (2, 5, 8)]
        # Tamper *and* recompute the chain: the chain itself then verifies, but
        # no longer matches the previously issued authenticators.
        log.tamper_replace_entry(4, nondet_content("tick", 999), recompute_chain=True)
        segment = log.full_segment()
        segment.verify_hash_chain()  # chain alone looks fine
        with pytest.raises(AuthenticatorMismatchError):
            segment.verify_against_authenticators(authenticators, keystore)

    def test_unsigned_log_produces_empty_signature_authenticators(self):
        log = make_log("alice", keypair=None, entries=2)
        auth = log.authenticator_for(log.entry_at(1))
        assert auth.signature == b""
