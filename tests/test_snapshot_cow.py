"""Tests for the copy-on-write snapshot engine (Section 4.4).

Covers the incremental Merkle tree, the cached canonical serializer, the
keyframe + delta-chain storage of :class:`~repro.vm.snapshot.SnapshotManager`
(including verified shrink handling), VM/guest dirty tracking, the archive's
delta-chain materialisation, and the picklable monitor log clock.
"""

import json
import pickle
import random

import pytest

from repro.avmm.config import AvmmConfig, Configuration
from repro.avmm.monitor import AccountableVMM
from repro.crypto.merkle import MerkleTree
from repro.errors import ArchiveIntegrityError, SnapshotError
from repro.network.message import MessageKind, NetworkMessage
from repro.service.ingest import AuditIngestService
from repro.sim.scheduler import Scheduler
from repro.store.archive import LogArchive
from repro.vm.events import PacketDelivery, TimerInterrupt
from repro.vm.execution import ExecutionTimestamp
from repro.vm.machine import FixedNondeterminismSource, VirtualMachine
from repro.vm.snapshot import (
    IncrementalSnapshot,
    IncrementalStateHasher,
    SnapshotManager,
    apply_delta,
    paginate,
    serialize_state,
)
from repro.vm.state_store import CachedStateSerializer, DirtyTrackingStore
from repro.workloads.echo import make_echo_image
from repro.workloads.kvstore import make_kvserver_image


def ts(i):
    return ExecutionTimestamp(i, 0)


# ---------------------------------------------------------------------------
# Incremental Merkle tree
# ---------------------------------------------------------------------------

class TestMerkleIncremental:
    def test_update_leaf_matches_rebuild(self):
        leaves = [b"a", b"b", b"c", b"d", b"e"]
        tree = MerkleTree(leaves)
        leaves[2] = b"C!"
        tree.update_leaf(2, b"C!")
        assert tree.root == MerkleTree.root_of(leaves)

    def test_append_leaf_matches_rebuild(self):
        leaves = [b"only"]
        tree = MerkleTree(leaves)
        for extra in (b"x", b"y", b"z", b"w"):
            leaves.append(extra)
            tree.append_leaf(extra)
            assert tree.root == MerkleTree.root_of(leaves)

    def test_truncate_matches_rebuild(self):
        leaves = [bytes([i]) for i in range(11)]
        tree = MerkleTree(list(leaves))
        for size in (7, 4, 3, 1):
            tree.truncate(size)
            assert tree.root == MerkleTree.root_of(leaves[:size])

    def test_truncate_bounds_checked(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(SnapshotError):
            tree.truncate(0)
        with pytest.raises(SnapshotError):
            tree.truncate(3)

    def test_update_leaf_bounds_checked(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(SnapshotError):
            tree.update_leaf(1, b"x")

    def test_randomized_against_scratch_rebuild(self):
        rng = random.Random(1234)
        leaves = [b"seed"]
        tree = MerkleTree(list(leaves))
        for step in range(300):
            choice = rng.random()
            if choice < 0.4:
                index = rng.randrange(len(leaves))
                leaves[index] = bytes([rng.randrange(256)]) * rng.randrange(1, 40)
                tree.update_leaf(index, leaves[index])
            elif choice < 0.75:
                leaves.append(b"n" * rng.randrange(1, 30))
                tree.append_leaf(leaves[-1])
            elif len(leaves) > 1:
                size = rng.randrange(1, len(leaves))
                del leaves[size:]
                tree.truncate(size)
            assert tree.root == MerkleTree.root_of(leaves), step
            probe = rng.randrange(len(leaves))
            assert tree.proof(probe).verify(tree.root), step


# ---------------------------------------------------------------------------
# Cached canonical serializer
# ---------------------------------------------------------------------------

def apply_serialized(out, previous):
    """Resolve a SerializedState to full bytes (rebuilt or patched)."""
    if out.data is not None:
        return out.data
    buffer = bytearray(previous)
    for offset, fragment in out.patches:
        buffer[offset:offset + len(fragment)] = fragment
    return bytes(buffer)


class TestCachedStateSerializer:
    def test_matches_serialize_state(self):
        serializer = CachedStateSerializer()
        state = {"b": [1, {"x": 2}], "a": {"nested": {"k": "v"}}, "n": None,
                 "f": 1.5, "u": "snowman ☃", "e": {}, "t": True}
        assert serializer.serialize(state).data == serialize_state(state)

    def test_non_string_keyed_dicts_fall_back(self):
        serializer = CachedStateSerializer()
        state = {"blocks": {2: "b", 10: "a"}}
        previous = serializer.serialize(state).data
        assert previous == serialize_state(state)
        state["blocks"][7] = "c"
        out = serializer.serialize(state, {("blocks",)})
        assert apply_serialized(out, previous) == serialize_state(state)

    def test_dirty_spans_cover_all_byte_differences(self):
        rng = random.Random(99)
        serializer = CachedStateSerializer()
        state = {"guest": {"tables": {f"t{i}": {"k": "v" * i} for i in range(12)},
                           "ops": 0},
                 "counter": 0, "tail": "z" * 100}
        previous = serializer.serialize(state).data
        for step in range(200):
            dirty = set()
            state["counter"] += rng.choice((1, 10 ** rng.randrange(1, 6)))
            dirty.add(("counter",))
            if rng.random() < 0.6:
                name = f"t{rng.randrange(15)}"
                tables = state["guest"]["tables"]
                if name in tables and rng.random() < 0.35:
                    del tables[name]
                else:
                    tables[name] = {"k": "x" * rng.randrange(0, 80)}
                dirty.add(("guest", "tables", name))
            out = serializer.serialize(state, dirty)
            reference = serialize_state(state)
            current = apply_serialized(out, previous)
            assert current == reference, step
            # Every byte that differs from the previous serialisation must
            # fall inside a reported dirty span.
            covered = set()
            for start, end in out.dirty_spans:
                covered.update(range(max(0, start), end))
            limit = max(len(current), len(previous))
            for position in range(limit):
                old = previous[position] if position < len(previous) else None
                new = current[position] if position < len(current) else None
                if old != new:
                    assert position in covered, (step, position)
            previous = reference

    def test_unknown_dirt_reserializes_everything(self):
        serializer = CachedStateSerializer()
        state = {"a": 1}
        serializer.serialize(state, set())
        state["a"] = 2  # mutated without reporting...
        out = serializer.serialize(state)  # ...but None = no-information
        assert out.data == serialize_state(state)
        assert out.dirty_spans is None


class TestDirtyTrackingStore:
    def test_tracks_writes_deletes_and_marks(self):
        store = DirtyTrackingStore({"a": 1})
        assert store.dirty_keys() == {"a"}
        store.mark_clean()
        store["b"] = 2
        del store["a"]
        store.setdefault("c", 3)
        store.setdefault("b", 99)  # no-op: must not dirty
        assert store.dirty_keys() == {"a", "b", "c"}
        store.mark_clean()
        store.mark_dirty("b")
        assert store.dirty_keys() == {"b"}
        assert dict(store.items()) == {"b": 2, "c": 3}


# ---------------------------------------------------------------------------
# Delta application (shrink handling) and chain verification
# ---------------------------------------------------------------------------

class TestApplyDelta:
    def _delta(self, pages, base_pages, snapshot_id=2):
        changed = {i: p for i, p in enumerate(pages)
                   if i >= len(base_pages) or base_pages[i] != p}
        return IncrementalSnapshot(
            snapshot_id=snapshot_id, execution=ts(1), base_snapshot_id=1,
            changed_pages=changed, page_count=len(pages),
            state_root=MerkleTree.root_of(pages), page_size=4)

    def test_shrink_is_verified_not_silently_truncated(self):
        base = [b"aaaa", b"bbbb", b"cccc", b"dddd"]
        small = [b"aaaa", b"BB"]
        delta = self._delta(small, base)
        assert apply_delta(base, delta) == small
        # Lying about the page count must be caught by the root check, not
        # silently accepted.
        delta.page_count = 3
        with pytest.raises(SnapshotError):
            apply_delta(base, delta)

    def test_tampered_page_rejected(self):
        base = [b"aaaa", b"bbbb"]
        new = [b"aaaa", b"ZZZZ"]
        delta = self._delta(new, base)
        delta.changed_pages[1] = b"QQQQ"
        with pytest.raises(SnapshotError):
            apply_delta(base, delta)

    def test_growth_with_missing_pages_rejected(self):
        base = [b"aaaa"]
        new = [b"aaaa", b"bbbb", b"cccc"]
        delta = self._delta(new, base)
        del delta.changed_pages[1]
        with pytest.raises(SnapshotError):
            apply_delta(base, delta)

    def test_out_of_range_page_rejected(self):
        base = [b"aaaa"]
        delta = self._delta([b"aaaa"], base)
        delta.changed_pages[5] = b"zzzz"
        with pytest.raises(SnapshotError):
            apply_delta(base, delta)


# ---------------------------------------------------------------------------
# SnapshotManager: keyframes, delta chains, bounded memory
# ---------------------------------------------------------------------------

class TestSnapshotManagerCow:
    def test_keyframe_layout(self):
        manager = SnapshotManager(page_size=32, keyframe_interval=4)
        for i in range(9):
            manager.take({"v": i}, ts(i))
        assert [sid for sid in manager.snapshot_ids()
                if manager.is_keyframe(sid)] == [1, 5, 9]

    def test_reconstruct_across_keyframe_boundaries_and_eviction(self):
        rng = random.Random(42)
        manager = SnapshotManager(page_size=64, keyframe_interval=5,
                                  materialized_cache=1)
        state = {"rows": {f"r{i}": "x" * 40 for i in range(30)}, "n": 0}
        expected = []
        for step in range(23):
            state["n"] += 1
            dirty = {("n",)}
            name = f"r{rng.randrange(40)}"
            if name in state["rows"] and rng.random() < 0.4:
                del state["rows"][name]
            else:
                state["rows"][name] = "y" * rng.randrange(0, 90)
            dirty.add(("rows", name))
            manager.take(state, ts(step), dirty_paths=dirty)
            expected.append(json.loads(serialize_state(state)))
        # every snapshot id, including mid-chain ids materialised after the
        # tiny LRU evicted them, must reconstruct the exact historical state
        for snapshot_id in manager.snapshot_ids():
            assert manager.reconstruct_state(snapshot_id) == \
                expected[snapshot_id - 1]
            root = manager.get_incremental(snapshot_id).state_root
            reference = MerkleTree.root_of(
                paginate(serialize_state(expected[snapshot_id - 1]), 64))
            assert root == reference

    def test_corrupted_delta_chain_raises(self):
        manager = SnapshotManager(page_size=32, keyframe_interval=10,
                                  materialized_cache=1)
        state = {"k": "a" * 200}
        manager.take(state, ts(1))
        state["k"] = "b" * 200
        manager.take(state, ts(2), dirty_paths={("k",)})
        state["k"] = "c" * 150  # shrink
        victim = manager.take(state, ts(3), dirty_paths={("k",)})
        state["k"] = "d" * 150
        manager.take(state, ts(4), dirty_paths={("k",)})  # victim not latest
        delta = manager.get_incremental(victim.snapshot_id)
        first = min(delta.changed_pages)
        delta.changed_pages[first] = b"tampered!" * 3
        manager.get(2)  # fill + roll the 1-entry LRU so 3 re-materialises
        with pytest.raises(SnapshotError):
            manager.reconstruct_state(victim.snapshot_id)

    def test_resident_bytes_bounded(self):
        manager = SnapshotManager(page_size=256, keyframe_interval=25,
                                  materialized_cache=2)
        state = {"blob": {f"b{i}": "z" * 100 for i in range(50)}, "n": 0}
        state_bytes = len(serialize_state(state))
        for step in range(200):
            state["n"] = step
            state["blob"][f"b{step % 50}"] = "w" * 100
            manager.take(state, ts(step),
                         dirty_paths={("n",), ("blob", f"b{step % 50}")})
        # 200 full snapshots would hold ~200 x state_bytes; the CoW layout
        # holds 8 keyframes + small deltas + the working copy + the LRU.
        full_retention = 200 * state_bytes
        assert manager.resident_bytes() < full_retention / 10
        assert manager.count == 200

    def test_legacy_take_signature_still_works(self):
        manager = SnapshotManager(page_size=64)
        state = {"a": 1, "nested": {"b": [1, 2, 3]}}
        snapshot = manager.take(state, ts(10))
        assert snapshot.verify_root()
        assert manager.reconstruct_state(snapshot.snapshot_id) == state


# ---------------------------------------------------------------------------
# VM + guest dirty tracking feeding the manager
# ---------------------------------------------------------------------------

def _query(op, table, key, value=None):
    payload = {"op": op, "table": table, "key": key, "request_id": 1}
    if value is not None:
        payload["value"] = value
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class TestVmDirtyTracking:
    def test_randomized_vm_equivalence(self):
        rng = random.Random(7)
        vm = VirtualMachine(make_kvserver_image(),
                            nondet_source=FixedNondeterminismSource(default=1.0))
        vm.start()
        manager = SnapshotManager(page_size=128, keyframe_interval=4,
                                  materialized_cache=2)
        expected = []
        tick = 0
        for step in range(120):
            op = rng.choice(("insert", "insert", "update", "delete", "tick"))
            if op == "tick":
                tick += 1
                vm.deliver_event(TimerInterrupt(tick_number=tick))
            else:
                table = f"t{rng.randrange(6)}"
                key = f"k{rng.randrange(20)}"
                value = "v" * rng.randrange(0, 60)
                vm.deliver_event(PacketDelivery(
                    source="client", payload=_query(op, table, key, value),
                    message_id=f"m{step}"))
            if step % 5 == 4:
                view = vm.get_dirty_state()
                snapshot = manager.take(view.state, vm.execution_timestamp,
                                        dirty_paths=view.dirty_paths)
                vm.mark_snapshot_taken()
                reference_pages = paginate(
                    serialize_state(vm.get_full_state()), 128)
                assert snapshot.pages == reference_pages, step
                assert snapshot.state_root == \
                    MerkleTree.root_of(reference_pages), step
                expected.append(json.loads(serialize_state(vm.get_full_state())))
        for snapshot_id in manager.snapshot_ids():
            assert manager.reconstruct_state(snapshot_id) == \
                expected[snapshot_id - 1]

    def test_idle_vm_produces_empty_delta(self):
        vm = VirtualMachine(make_echo_image(),
                            nondet_source=FixedNondeterminismSource())
        vm.start()
        manager = SnapshotManager(page_size=64)
        view = vm.get_dirty_state()
        manager.take(view.state, vm.execution_timestamp,
                     dirty_paths=view.dirty_paths)
        vm.mark_snapshot_taken()
        # No events in between: the second snapshot must ship zero pages.
        view = vm.get_dirty_state()
        assert view.dirty_paths == set()
        second = manager.take(view.state, vm.execution_timestamp,
                              dirty_paths=view.dirty_paths)
        assert manager.get_incremental(second.snapshot_id).changed_pages == {}

    def test_replayer_incremental_root_matches(self):
        # The hasher the replayer now uses must agree with a scratch rebuild
        # at every snapshot point of a live guest run.
        vm = VirtualMachine(make_kvserver_image(),
                            nondet_source=FixedNondeterminismSource(default=2.0))
        vm.start()
        hasher = IncrementalStateHasher()
        for step in range(20):
            vm.deliver_event(PacketDelivery(
                source="c", payload=_query("insert", "t0", f"k{step}", "x" * 30),
                message_id=f"m{step}"))
            view = vm.get_dirty_state()
            _, _, root = hasher.update(view.state, view.dirty_paths)
            vm.mark_snapshot_taken()
            assert root == MerkleTree.root_of(
                paginate(serialize_state(vm.get_full_state())))


# ---------------------------------------------------------------------------
# Archive delta chains
# ---------------------------------------------------------------------------

def _ship_all(manager, service, machine="m"):
    for snapshot_id in manager.snapshot_ids():
        payload = manager.ship_payload(snapshot_id)
        service.on_message(NetworkMessage(
            source=machine, destination=service.identity,
            payload=json.dumps(payload, sort_keys=True).encode("utf-8"),
            kind=MessageKind.ARCHIVE_SNAPSHOT))


class TestArchiveDeltaChain:
    def _manager_with_history(self, steps=9):
        manager = SnapshotManager(page_size=64, keyframe_interval=4)
        state = {"rows": {f"r{i}": "x" * 30 for i in range(12)}, "n": 0}
        states = []
        for step in range(steps):
            state["n"] = step
            state["rows"][f"r{step % 14}"] = "y" * (10 + step)
            manager.take(state, ts(step),
                         dirty_paths={("n",), ("rows", f"r{step % 14}")})
            states.append(json.loads(serialize_state(state)))
        return manager, states

    def test_shipped_deltas_materialise_identically(self, tmp_path):
        manager, states = self._manager_with_history()
        archive = LogArchive(tmp_path / "a")
        service = AuditIngestService(archive)
        _ship_all(manager, service)
        assert not service.quarantine
        store = archive.snapshot_store("m")
        assert store.snapshot_ids() == manager.snapshot_ids()
        for snapshot_id in manager.snapshot_ids():
            restored = archive.load_snapshot("m", snapshot_id)
            assert restored.state == states[snapshot_id - 1]
            assert restored.verify_root()
            assert store.transfer_cost_bytes(snapshot_id) == \
                manager.transfer_cost_bytes(snapshot_id)
        # deltas survive a reopen from the manifest
        reopened = LogArchive(tmp_path / "a")
        assert reopened.recovery.clean
        assert reopened.load_snapshot("m", 7).state == states[6]

    def test_delta_without_base_quarantined(self, tmp_path):
        manager, _ = self._manager_with_history()
        service = AuditIngestService(LogArchive(tmp_path / "a"))
        payload = manager.ship_payload(6)  # delta; base 5 never shipped
        service.on_message(NetworkMessage(
            source="m", destination=service.identity,
            payload=json.dumps(payload, sort_keys=True).encode("utf-8"),
            kind=MessageKind.ARCHIVE_SNAPSHOT))
        assert len(service.quarantine) == 1
        assert "base" in service.quarantine[0].reason

    def test_corrupt_delta_file_detected(self, tmp_path):
        manager, _ = self._manager_with_history()
        archive = LogArchive(tmp_path / "a")
        service = AuditIngestService(archive)
        _ship_all(manager, service)
        record = archive._snapshot_index["m"][6]  # noqa: SLF001 - test hook
        assert record.kind == "delta"
        path = archive.root / record.file_name
        payload = json.loads(path.read_text("utf-8"))
        first = sorted(payload["changed_pages"])[0]
        payload["changed_pages"][first] = b"EVIL".hex()
        path.write_text(json.dumps(payload), "utf-8")
        with pytest.raises((SnapshotError, ArchiveIntegrityError)):
            archive.load_snapshot("m", 7)

    def test_truncation_boundary_becomes_keyframe(self, tmp_path):
        from repro.log.entries import EntryType, snapshot_content
        from repro.log.tamper_evident import TamperEvidentLog

        manager, states = self._manager_with_history(steps=3)
        log = TamperEvidentLog("m")
        for snapshot_id in (1, 2, 3):
            log.append(EntryType.TIMETRACKER, {
                "event_kind": "clock_read", "execution_counter": snapshot_id,
                "branch_counter": 0, "value": 0.5})
            delta = manager.get_incremental(snapshot_id)
            log.append(EntryType.SNAPSHOT, snapshot_content(
                snapshot_id, delta.state_root, snapshot_id))
        archive = LogArchive(tmp_path / "a")
        service = AuditIngestService(archive)
        _ship_all(manager, service)
        for segment in log.segments_between_snapshots():
            seals = segment.entries_of_type(EntryType.SNAPSHOT)
            sealed = int(seals[-1].content["snapshot_id"]) \
                if seals and seals[-1] is segment.entries[-1] else None
            archive.append_segment(segment, sealed_by_snapshot=sealed)

        assert archive._snapshot_index["m"][2].kind == "delta"  # noqa: SLF001
        checkpoint = archive.truncate("m", log.entry_at(4).sequence)
        assert checkpoint.sequence == 4
        record = archive._snapshot_index["m"][2]  # noqa: SLF001
        assert record.kind == "keyframe"
        assert sorted(archive._snapshot_index["m"]) == [2, 3]  # noqa: SLF001
        # both survivors still materialise and verify after reopening
        reopened = LogArchive(tmp_path / "a")
        assert reopened.recovery.clean
        for snapshot_id, expected in ((2, states[1]), (3, states[2])):
            snapshot = reopened.load_snapshot("m", snapshot_id)
            assert snapshot.state == expected
            assert snapshot.verify_root()
        state, transfer = reopened.initial_state_for("m")
        assert state == states[1]
        assert transfer == manager.transfer_cost_bytes(2)


# ---------------------------------------------------------------------------
# Monitor integration: picklable log clock, CoW snapshot tick, delta shipping
# ---------------------------------------------------------------------------

def _build_monitor(snapshot_interval=1.0):
    scheduler = Scheduler()
    config = AvmmConfig.for_configuration(Configuration.AVMM_NOSIG,
                                          snapshot_interval=snapshot_interval)
    monitor = AccountableVMM("kv", make_kvserver_image(), config, scheduler)
    return scheduler, monitor


def _build_shipping_monitor(tmp_path, snapshot_interval=1.0):
    from repro.network.simnet import SimulatedNetwork

    scheduler = Scheduler()
    network = SimulatedNetwork(scheduler)
    config = AvmmConfig.for_configuration(Configuration.AVMM_NOSIG,
                                          snapshot_interval=snapshot_interval)
    monitor = AccountableVMM("kv", make_kvserver_image(), config, scheduler,
                             network=network)
    archive = LogArchive(tmp_path / "archive")
    service = AuditIngestService(archive, network=network)
    return scheduler, network, monitor, service


class TestMonitorIntegration:
    def test_log_clock_is_picklable_and_reads_scheduler_time(self):
        scheduler, monitor = _build_monitor()
        scheduler.clock.advance_to(12.5)
        entry = monitor.log.append(
            __import__("repro.log.entries", fromlist=["EntryType"]).EntryType.NONDET,
            {"event_kind": "probe", "execution_counter": 0, "data": {}})
        assert entry.timestamp == 12.5
        clone = pickle.loads(pickle.dumps(monitor.log))
        assert len(clone) == len(monitor.log)
        assert clone.entries[-1].timestamp == 12.5

    def test_snapshot_tick_uses_cow_and_charges_dirty_bytes(self):
        scheduler, monitor = _build_monitor()
        monitor.start()
        scheduler.run_until(3.1)
        monitor.stop()
        assert monitor.snapshots.count >= 3
        first = monitor.snapshots.get_incremental(1)
        later = monitor.snapshots.get_incremental(monitor.snapshots.count)
        # after the first (full) snapshot, deltas must be much smaller than
        # the whole paginated state
        assert later.incremental_bytes < sum(
            len(p) for p in monitor.snapshots.get(1).pages) or \
            later.page_count == 1
        assert first.base_snapshot_id is None
        assert monitor.stats.vmm_cpu_seconds > 0
        # roots logged in the tamper-evident stream match the managers' roots
        from repro.log.entries import EntryType
        seals = [e for e in monitor.log if e.entry_type is EntryType.SNAPSHOT]
        assert len(seals) == monitor.snapshots.count
        for entry in seals:
            snapshot_id = int(entry.content["snapshot_id"])
            assert entry.content["state_root"] == \
                monitor.snapshots.get_incremental(snapshot_id).state_root.hex()

    def test_partial_snapshot_queue_drain_counts_as_progress(self, tmp_path):
        """A lossy link that lets only one queued snapshot through per round
        must read as progress, or the drain loop gives up spuriously."""
        scheduler, network, monitor, service = _build_shipping_monitor(tmp_path)
        monitor.attach_archive_shipper(service.identity)
        monitor.start()
        network.partition("kv", service.identity)
        scheduler.run_until(3.1)  # 3 snapshots, every shipment dropped
        monitor.stop()
        assert len(monitor._pending_snapshot_ships) == 3  # noqa: SLF001
        network.heal_partition("kv", service.identity)

        # Let exactly one send through, then drop everything again.
        original_send = network.send
        budget = {"left": 1}

        def flaky_send(message):
            if budget["left"] <= 0:
                return False
            budget["left"] -= 1
            return original_send(message)

        network.send = flaky_send
        assert monitor.ship_archive_tail()  # one snapshot shipped = progress
        assert len(monitor._pending_snapshot_ships) == 2  # noqa: SLF001
        assert not monitor.archive_shipping_complete

        network.send = original_send
        while not monitor.archive_shipping_complete:
            monitor.ship_archive_tail()
        scheduler.run_until(scheduler.clock.now + 1.0)
        assert not service.quarantine
        assert service.archive.snapshot_store("kv").snapshot_ids() == \
            monitor.snapshots.snapshot_ids()

    def test_mid_run_attach_ships_keyframe_anchor(self, tmp_path):
        """Attaching the shipper after snapshots already exist must anchor
        the archive with a full keyframe, not an unusable dangling delta."""
        scheduler, network, monitor, service = _build_shipping_monitor(tmp_path)
        monitor.start()
        scheduler.run_until(2.1)  # snapshots 1..2 taken, nothing shipped
        assert monitor.snapshots.count == 2
        monitor.attach_archive_shipper(service.identity)
        scheduler.run_until(4.1)  # snapshots 3..4 ship on their ticks
        monitor.stop()
        assert not service.quarantine
        store = service.archive.snapshot_store("kv")
        assert store.snapshot_ids() == [3, 4]
        index = service.archive._snapshot_index["kv"]  # noqa: SLF001
        assert index[3].kind == "keyframe"  # forced anchor (3 is not a
        assert index[4].kind == "delta"     # manager keyframe; 4 bases on 3)
        for snapshot_id in (3, 4):
            restored = service.archive.load_snapshot("kv", snapshot_id)
            assert restored.verify_root()
            assert restored.state == \
                monitor.snapshots.reconstruct_state(snapshot_id)
