"""Cross-format differential tests: v1, v2 and v3 archives are interchangeable.

The LogCodec contract is that the wire format is *invisible* above the codec
layer: the same recorded log, stored or shipped in any format, must
produce structurally identical audit verdicts, evidence, replay reports and
modelled :class:`~repro.audit.verdict.AuditCost` — on the serial and the
streaming path alike.  These tests record one fleet (so the log bytes are
fixed), then move its archive across formats via
:meth:`~repro.store.archive.LogArchive.reencode_segments` (including the
v2→v3 migration path) and via ingest-service replay of re-encoded
shipments, and diff the audits.
"""

from __future__ import annotations

import bz2

import pytest

from repro.audit.stream import stream_audit
from repro.audit.verdict import Verdict
from repro.errors import LogFormatError
from repro.experiments.parallel_audit import build_fleet
from repro.log.codec import get_codec, sniff_format_version
from repro.log.storage import segment_to_bytes
from repro.network.message import MessageKind, NetworkMessage
from repro.service.ingest import AuditIngestService
from repro.store.archive import LogArchive


@pytest.fixture(scope="module")
def recorded_fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("codec-diff") / "archive-v1"
    fleet = build_fleet(num_machines=2, duration=8.0, seed=13,
                        snapshot_interval=2.0, archive=LogArchive(root))
    return fleet, root


@pytest.fixture(scope="module")
def v2_root(recorded_fleet, tmp_path_factory):
    _, root = recorded_fleet
    destination = tmp_path_factory.mktemp("codec-diff-v2") / "archive-v2"
    LogArchive(root).reencode_segments(destination, format_version=2)
    return destination


@pytest.fixture(scope="module")
def v3_root(v2_root, tmp_path_factory):
    """v3 archive derived *from the v2 one*: exercises the migration path."""
    destination = tmp_path_factory.mktemp("codec-diff-v3") / "archive-v3"
    LogArchive(v2_root).reencode_segments(destination, format_version=3)
    return destination


def _audit_all(fleet, root, streaming: bool):
    """Audit every machine of an archive; returns {machine: AuditResult}."""
    results = {}
    service = AuditIngestService(LogArchive(root))
    for machine in fleet.machines:
        auditor = fleet.make_auditor(machine, collect=False)
        service.prepare_auditor(auditor, machine)
        target = service.target_for(machine)
        if streaming:
            results[machine] = stream_audit(auditor, target).result
        else:
            results[machine] = auditor.audit(target, streaming=False)
    return results


class TestReencodedArchiveEquivalence:
    def test_v2_files_are_binary_and_indexed_as_v2(self, recorded_fleet,
                                                   v2_root):
        fleet, root = recorded_fleet
        v1, v2 = LogArchive(root), LogArchive(v2_root)
        for machine in fleet.machines:
            v1_records = v1.segment_records(machine)
            v2_records = v2.segment_records(machine)
            assert len(v1_records) == len(v2_records)
            for r1, r2 in zip(v1_records, v2_records):
                assert (r1.first_sequence, r1.last_sequence,
                        r1.start_hash, r1.end_hash) == \
                    (r2.first_sequence, r2.last_sequence,
                     r2.start_hash, r2.end_hash)
                assert r1.format_version == 1 and r2.format_version == 2
                assert r2.file_name.endswith(".avmlogb")
                # The v2 record caches the v1-compressed size so the audit
                # cost model never recompresses: it must equal what the v1
                # archive actually stored for the same entries.
                assert r2.wire_v1_bytes == r1.stored_bytes
                data = (v2.root / r2.file_name).read_bytes()
                assert sniff_format_version(data) == 2

    def test_v3_files_are_typed_and_indexed_as_v3(self, recorded_fleet,
                                                  v3_root):
        fleet, root = recorded_fleet
        v1, v3 = LogArchive(root), LogArchive(v3_root)
        for machine in fleet.machines:
            v1_records = v1.segment_records(machine)
            v3_records = v3.segment_records(machine)
            assert len(v1_records) == len(v3_records)
            for r1, r3 in zip(v1_records, v3_records):
                assert (r1.first_sequence, r1.last_sequence,
                        r1.start_hash, r1.end_hash) == \
                    (r3.first_sequence, r3.last_sequence,
                     r3.start_hash, r3.end_hash)
                assert r3.format_version == 3
                assert r3.file_name.endswith(".avmlogt")
                # The v1-modelled size survives the v2→v3 migration, so the
                # audit cost model stays denominated in canonical v1 bytes.
                assert r3.wire_v1_bytes == r1.stored_bytes
                data = (v3.root / r3.file_name).read_bytes()
                assert sniff_format_version(data) == 3

    def test_materialized_logs_are_identical(self, recorded_fleet, v2_root,
                                             v3_root):
        fleet, root = recorded_fleet
        v1 = LogArchive(root)
        for other_root in (v2_root, v3_root):
            other = LogArchive(other_root)
            for machine in fleet.machines:
                assert segment_to_bytes(v1.materialized_log(machine)) == \
                    segment_to_bytes(other.materialized_log(machine))
                assert v1.authenticators_for(machine) == \
                    other.authenticators_for(machine)

    @pytest.mark.parametrize("source_version", [2, 3])
    def test_round_trip_back_to_v1(self, recorded_fleet, v2_root, v3_root,
                                   tmp_path, source_version):
        fleet, root = recorded_fleet
        source = v2_root if source_version == 2 else v3_root
        back = LogArchive(source).reencode_segments(
            tmp_path / "archive-v1-again", format_version=1)
        v1 = LogArchive(root)
        for machine in fleet.machines:
            originals = v1.segment_records(machine)
            returned = back.segment_records(machine)
            # v1 encoding is deterministic, so the round-trip reproduces the
            # original segment files byte for byte.
            for r1, r2 in zip(originals, returned):
                assert (v1.root / r1.file_name).read_bytes() == \
                    (back.root / r2.file_name).read_bytes()

    @pytest.mark.parametrize("streaming", [False, True])
    def test_audits_are_structurally_identical(self, recorded_fleet, v2_root,
                                               v3_root, streaming):
        fleet, root = recorded_fleet
        v1_results = _audit_all(fleet, root, streaming)
        for label, other_root in (("v2", v2_root), ("v3", v3_root)):
            other_results = _audit_all(fleet, other_root, streaming)
            for machine in fleet.machines:
                assert v1_results[machine].verdict is Verdict.PASS
                assert v1_results[machine] == other_results[machine], (
                    f"{machine}: v1 and {label} archives audit differently "
                    f"(streaming={streaming})")


class TestMixedFormatIngest:
    @pytest.mark.parametrize("ship_version", [2, 3])
    def test_reencoded_shipments_land_in_the_same_archive_state(
            self, recorded_fleet, tmp_path, ship_version):
        """Replaying the fleet's segments as v2/v3 shipments (ingest sniffs
        the magic) produces an archive that audits identically."""
        fleet, root = recorded_fleet
        v1 = LogArchive(root)
        replayed_root = tmp_path / "replayed"
        ingest = AuditIngestService(LogArchive(replayed_root))
        codec = get_codec(ship_version)
        for machine in fleet.machines:
            for record in v1.segment_records(machine):
                sealed = record.sealed_by_snapshot
                headers = {"sealed_by_snapshot": sealed} if sealed else {}
                ingest.on_message(NetworkMessage(
                    source=machine, destination=ingest.identity,
                    payload=codec.encode_segment(v1.read_segment(record)),
                    kind=MessageKind.ARCHIVE_SEGMENT, headers=headers))
        assert ingest.stats.segments_rejected == 0
        replayed = LogArchive(replayed_root)
        for machine in fleet.machines:
            assert segment_to_bytes(replayed.materialized_log(machine)) == \
                segment_to_bytes(v1.materialized_log(machine))

    @pytest.mark.parametrize("magic", [b"AVMLOGB2", b"AVMLOGT3"])
    def test_garbage_shipment_is_quarantined(self, tmp_path, magic):
        ingest = AuditIngestService(LogArchive(tmp_path / "q"))
        ingest.on_message(NetworkMessage(
            source="mallory", destination=ingest.identity,
            payload=magic + b"\x01\x02\x03",
            kind=MessageKind.ARCHIVE_SEGMENT))
        assert ingest.stats.segments_rejected == 1
        assert any("undecodable segment" in q.reason
                   for q in ingest.quarantine)


class TestAdversaryMatrixAcrossFormats:
    """Archive-mode detection rows are identical whichever format ships."""

    # Detection-relevant CellOutcome fields (everything but the spec echo
    # and the machine-name bookkeeping).
    ROW_FIELDS = ("expect_detection", "detected", "verdict", "phase",
                  "reason", "evidence_verified", "false_accusations",
                  "quarantined_shipments", "equivocation_proof",
                  "expectation_met")

    def test_archive_mode_detection_rows_match(self):
        from repro.adversary.catalog import adversary_names, make_adversary
        from repro.adversary.matrix import CellSpec, ScenarioMatrix

        archive_capable = [name for name in adversary_names()
                           if "archive" in make_adversary(name).modes]
        assert archive_capable, "catalog lost its archive-mode adversaries"
        # One control plus the first two archive-observable adversaries
        # keeps the cell count (and runtime) small; seeds fix the content.
        names = (["honest"] if "honest" in archive_capable else []) \
            + [name for name in archive_capable if name != "honest"][:2]
        rows = {}
        for version in (1, 2, 3):
            matrix = ScenarioMatrix(ship_format_version=version)
            rows[version] = [
                matrix.run_cell(CellSpec(name, "kv", "archive", 2,
                                         5000 + index))
                for index, name in enumerate(names)]
        for other_version in (2, 3):
            for v1_cell, other_cell in zip(rows[1], rows[other_version]):
                for field in self.ROW_FIELDS:
                    assert getattr(v1_cell, field) == \
                        getattr(other_cell, field), (
                            f"{v1_cell.spec.label()}: {field} differs "
                            f"between ship formats 1 and {other_version}")
                assert v1_cell.expectation_met


class TestStoredFileTamper:
    """Flipping bytes in stored segment files is caught in every format."""

    @pytest.mark.parametrize("format_version", [1, 2, 3])
    def test_flipped_stored_byte_is_detected(self, recorded_fleet, v2_root,
                                             v3_root, tmp_path,
                                             format_version):
        fleet, root = recorded_fleet
        source = {1: root, 2: v2_root, 3: v3_root}[format_version]
        work = LogArchive(source).reencode_segments(
            tmp_path / f"tamper-v{format_version}",
            format_version=format_version)
        machine = fleet.machines[0]
        record = work.segment_records(machine)[0]
        path = work.root / record.file_name
        raw = bytearray(path.read_bytes())
        # Flip a byte well inside the body (past magic and header).
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(Exception) as excinfo:
            segment = work.read_segment(record)
            segment.verify_hash_chain()
        assert excinfo.type.__module__.startswith("repro") or \
            isinstance(excinfo.value, (OSError, EOFError, ValueError)), \
            f"unexpected escape: {excinfo.value!r}"
