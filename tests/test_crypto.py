"""Tests for the cryptographic substrate: hashing, primes, RSA, keys, schemes."""

import pytest

from repro.crypto import hashing
from repro.crypto.keys import CertificateAuthority, KeyStore
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RsaPrivateKey, generate_keypair
from repro.crypto.signatures import NullScheme, RsaScheme, SimulatedEsignScheme, get_scheme
from repro.errors import CertificateError, KeyGenerationError, SignatureError

import random


class TestHashing:
    def test_hash_is_32_bytes(self):
        assert len(hashing.hash_bytes(b"x")) == hashing.HASH_SIZE_BYTES

    def test_hash_deterministic(self):
        assert hashing.hash_bytes(b"abc") == hashing.hash_bytes(b"abc")

    def test_hash_hex_matches_bytes(self):
        assert hashing.hash_hex(b"abc") == hashing.hash_bytes(b"abc").hex()

    def test_concat_framing_prevents_ambiguity(self):
        assert hashing.hash_concat(b"ab", b"c") != hashing.hash_concat(b"a", b"bc")

    def test_concat_differs_from_plain_hash(self):
        assert hashing.hash_concat(b"abc") != hashing.hash_bytes(b"abc")

    def test_hash_object_key_order_independent(self):
        assert hashing.hash_object({"a": 1, "b": 2}) == hashing.hash_object({"b": 2, "a": 1})

    def test_hash_object_encodes_bytes(self):
        assert hashing.hash_object({"k": b"\x01\x02"}) == hashing.hash_object({"k": b"\x01\x02"})

    def test_hash_object_rejects_unencodable(self):
        with pytest.raises(TypeError):
            hashing.hash_object({"k": object()})

    def test_encode_int_width(self):
        assert hashing.encode_int(1) == b"\x00" * 7 + b"\x01"


class TestPrimes:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 97, 229):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 100, 221, 561, 41041):  # includes Carmichael numbers
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        assert is_probable_prime(2 ** 127 - 1)  # Mersenne prime

    def test_large_known_composite(self):
        assert not is_probable_prime((2 ** 127 - 1) * 3)

    def test_generate_prime_has_exact_bit_length(self):
        rng = random.Random(0)
        p = generate_prime(128, rng)
        assert p.bit_length() == 128
        assert is_probable_prime(p)

    def test_generate_prime_rejects_tiny_sizes(self):
        with pytest.raises(KeyGenerationError):
            generate_prime(4, random.Random(0))


class TestRsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(bits=512, seed=99)

    def test_sign_verify_roundtrip(self, keypair):
        signature = keypair.sign(b"hello")
        assert keypair.public.verify(b"hello", signature)

    def test_wrong_message_fails(self, keypair):
        signature = keypair.sign(b"hello")
        assert not keypair.public.verify(b"goodbye", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = bytearray(keypair.sign(b"hello"))
        signature[0] ^= 0xFF
        assert not keypair.public.verify(b"hello", bytes(signature))

    def test_wrong_length_signature_fails(self, keypair):
        assert not keypair.public.verify(b"hello", b"\x00" * 10)

    def test_signature_length_matches_modulus(self, keypair):
        assert len(keypair.sign(b"x")) == keypair.public.byte_length()

    def test_crt_signature_matches_direct_exponentiation(self, keypair):
        # Generated keys carry CRT factors; a key stripped down to (n, d)
        # must produce byte-identical signatures on the slow path.
        assert keypair.prime_p is not None
        plain = RsaPrivateKey(modulus=keypair.modulus,
                              exponent=keypair.exponent,
                              public=keypair.public)
        for message in (b"", b"hello", b"x" * 1000):
            assert keypair.sign(message) == plain.sign(message)

    def test_deterministic_keygen(self):
        a = generate_keypair(bits=512, seed=5)
        b = generate_keypair(bits=512, seed=5)
        assert a.modulus == b.modulus

    def test_different_seeds_different_keys(self):
        a = generate_keypair(bits=512, seed=5)
        b = generate_keypair(bits=512, seed=6)
        assert a.modulus != b.modulus

    def test_fingerprint_stable(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 16

    def test_too_small_modulus_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(bits=128)


class TestSignatureSchemes:
    def test_get_scheme_rsa(self):
        scheme = get_scheme("rsa768")
        assert isinstance(scheme, RsaScheme)
        assert scheme.bits == 768

    def test_get_scheme_cached(self):
        assert get_scheme("rsa768") is get_scheme("rsa768")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SignatureError):
            get_scheme("dsa")

    def test_rsa_scheme_sign_verify(self):
        key = RsaScheme(512).generate("alice", seed=1)
        signature = key.sign(b"msg")
        assert key.verify_key.verify(b"msg", signature)
        assert not key.verify_key.verify(b"other", signature)

    def test_esign_scheme_sign_verify(self):
        key = SimulatedEsignScheme().generate("alice", seed=1)
        signature = key.sign(b"msg")
        assert key.verify_key.verify(b"msg", signature)
        assert not key.verify_key.verify(b"other", signature)

    def test_null_scheme_accepts_everything(self):
        key = NullScheme().generate("alice")
        assert key.sign(b"msg") == b""
        assert key.verify_key.verify(b"anything", b"")

    def test_costs_ordering(self):
        rsa = get_scheme("rsa768").costs()
        esign = get_scheme("esign2046-sim").costs()
        null = get_scheme("nosig").costs()
        assert rsa.sign_seconds > esign.sign_seconds > null.sign_seconds
        assert null.signature_bytes == 0

    def test_rsa_cost_scales_with_key_size(self):
        assert get_scheme("rsa2048").costs().sign_seconds > get_scheme("rsa768").costs().sign_seconds


class TestCertificates:
    def test_issue_and_verify(self, ca):
        pair = ca.issue("dave")
        assert ca.verify_certificate(pair.certificate)

    def test_issue_is_idempotent(self, ca):
        assert ca.issue("erin") is ca.issue("erin")

    def test_keystore_verifies_signatures(self, ca, keystore):
        alice = ca.issue("alice")
        signature = alice.sign(b"payload")
        assert keystore.verify("alice", b"payload", signature)
        assert not keystore.verify("alice", b"other", signature)
        assert not keystore.verify("bob", b"payload", signature)

    def test_keystore_rejects_unknown_identity(self, keystore):
        with pytest.raises(CertificateError):
            keystore.verify_key_for("nobody")
        assert not keystore.verify("nobody", b"x", b"y")

    def test_keystore_rejects_foreign_certificate(self, keystore):
        other_ca = CertificateAuthority(scheme="rsa768", seed=999, identity="rogue-ca")
        rogue = other_ca.issue("mallory")
        with pytest.raises(CertificateError):
            keystore.add_certificate(rogue.certificate)

    def test_keystore_rejects_conflicting_certificate(self, ca):
        store = KeyStore(ca)
        store.add_certificate(ca.issue("alice").certificate)
        # Re-adding the same certificate is fine.
        store.add_certificate(ca.issue("alice").certificate)
        assert store.has_identity("alice")

    def test_require_valid_raises(self, ca, keystore):
        alice = ca.issue("alice")
        keystore.require_valid("alice", b"m", alice.sign(b"m"))
        with pytest.raises(SignatureError):
            keystore.require_valid("alice", b"m", b"bad")

    def test_identities_sorted(self, keystore):
        identities = keystore.identities()
        assert identities == sorted(identities)
        assert "alice" in identities
