"""Tests for the Byzantine adversary subsystem and the scenario matrix.

The fast tests run a handful of representative cells end to end (one per
detection surface) plus unit tests of the tamper primitives and the
equivocation proof; the slow test runs the full default matrix and asserts
the acceptance criteria: >= 24 cells across >= 6 adversaries, >= 2 workloads
and >= 2 audit modes, 100% detection on misbehaving cells, zero false
accusations, and independently re-verifiable evidence for every accusation.
"""

import pytest

from repro.adversary.catalog import adversary_names, make_adversary
from repro.adversary.matrix import (
    MODES,
    WORKLOADS,
    CellSpec,
    ScenarioMatrix,
    record_scenario,
)
from repro.audit.multiparty import EquivocationProof, find_equivocation
from repro.audit.verdict import AuditPhase
from repro.crypto import hashing
from repro.errors import HashChainError
from repro.log.authenticator import make_authenticator
from repro.log.entries import EntryType
from repro.log.hashchain import verify_chain
from repro.log.tamper_evident import TamperEvidentLog


# ---------------------------------------------------------------------------
# Tamper primitives (the TamperingVMM building blocks)
# ---------------------------------------------------------------------------

def _small_log(machine="bob", entries=8, keypair=None):
    log = TamperEvidentLog(machine, keypair=keypair)
    for index in range(entries):
        log.append(EntryType.ANNOTATION, {"index": index})
    return log


class TestTamperPrimitives:
    def test_remove_renumbers_but_breaks_chain(self):
        log = _small_log()
        log.tamper_remove_entry(4)
        assert len(log) == 7
        assert [e.sequence for e in log] == list(range(1, 8))
        with pytest.raises(HashChainError):
            verify_chain(log.entries, expected_start_hash=hashing.ZERO_HASH)

    def test_swap_keeps_numbering_but_breaks_chain(self):
        log = _small_log()
        log.tamper_swap_entries(3, 4)
        assert [e.sequence for e in log] == list(range(1, 9))
        with pytest.raises(HashChainError):
            verify_chain(log.entries, expected_start_hash=hashing.ZERO_HASH)

    def test_insert_recomputes_a_consistent_but_different_chain(self):
        log = _small_log()
        before = [e.chain_hash for e in log]
        log.tamper_insert_entry(3, EntryType.ANNOTATION, {"forged": True})
        assert len(log) == 9
        # Internally consistent...
        verify_chain(log.entries, expected_start_hash=hashing.ZERO_HASH)
        # ...but every hash from the insertion point differs from history.
        assert log.entry_at(4).chain_hash != before[3]

    def test_truncate_and_fork(self):
        log = _small_log()
        abandoned = log.entry_at(6).chain_hash
        log.tamper_truncate(5)
        assert len(log) == 5
        forked = log.append(EntryType.ANNOTATION, {"fork": True})
        assert forked.sequence == 6
        assert forked.chain_hash != abandoned
        verify_chain(log.entries, expected_start_hash=hashing.ZERO_HASH)


# ---------------------------------------------------------------------------
# Equivocation proofs
# ---------------------------------------------------------------------------

class TestEquivocationProof:
    def _conflicting_pair(self, ca):
        keypair = ca.issue("equivocator")
        content_a = hashing.hash_bytes(b"history-a")
        content_b = hashing.hash_bytes(b"history-b")
        previous = hashing.ZERO_HASH

        def commit(content_hash):
            chain = hashing.hash_concat(previous, hashing.encode_int(1),
                                        b"send", content_hash)
            return make_authenticator(keypair, sequence=1, chain_hash=chain,
                                      previous_hash=previous, entry_type="send",
                                      content_hash=content_hash)

        return keypair, commit(content_a), commit(content_b)

    def test_conflicting_commitments_yield_a_proof(self, ca, keystore):
        keypair, first, second = self._conflicting_pair(ca)
        keystore.add_certificate(keypair.certificate)
        proof = find_equivocation([first, second], keystore)
        assert proof is not None
        assert proof.machine == "equivocator"
        assert proof.sequence == 1
        assert proof.verify(keystore)

    def test_duplicates_and_honest_sets_yield_no_proof(self, ca, keystore):
        keypair, first, _ = self._conflicting_pair(ca)
        keystore.add_certificate(keypair.certificate)
        assert find_equivocation([first, first], keystore) is None
        assert find_equivocation([first], keystore) is None

    def test_proof_with_matching_hashes_does_not_verify(self, ca, keystore):
        keypair, first, _ = self._conflicting_pair(ca)
        keystore.add_certificate(keypair.certificate)
        bogus = EquivocationProof(machine="equivocator", sequence=1,
                                  first=first, second=first)
        assert not bogus.verify(keystore)

    def test_garbage_signed_authenticator_cannot_mask_a_conflict(
            self, ca, keystore):
        """Regression: an unverifiable authenticator shipped first for a
        sequence must not occupy the slot and suppress the real proof."""
        from dataclasses import replace
        keypair, first, second = self._conflicting_pair(ca)
        keystore.add_certificate(keypair.certificate)
        decoy = replace(first, signature=b"\x00" * len(first.signature),
                        chain_hash=hashing.hash_bytes(b"decoy"))
        proof = find_equivocation([decoy, first, second], keystore)
        assert proof is not None
        assert proof.verify(keystore)


# ---------------------------------------------------------------------------
# Representative matrix cells (one per detection surface)
# ---------------------------------------------------------------------------

class TestRepresentativeCells:
    """Fast end-to-end cells; the full grid runs in the slow test below."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return ScenarioMatrix()

    @pytest.mark.parametrize("spec", [
        CellSpec("honest", "kv", "full", 2, 2001),
        CellSpec("tamper-modify", "kv", "full", 2, 2002),
        CellSpec("equivocating-peer", "kv", "full", 2, 2003),
        CellSpec("lying-shipper-segments", "kv", "archive", 2, 2004),
        CellSpec("hidden-nondeterminism", "kv", "spot", 2, 2005),
        CellSpec("snapshot-mutation", "kv", "spot", 2, 2006),
    ], ids=lambda spec: f"{spec.adversary}-{spec.mode}")
    def test_cell_meets_expectations(self, matrix, spec):
        outcome = matrix.run_cell(spec)
        assert outcome.expectation_met, outcome.describe()
        assert not outcome.false_accusations
        adversary = make_adversary(spec.adversary)
        assert outcome.detected == adversary.expects_detection
        if adversary.expects_detection:
            assert outcome.evidence_verified

    def test_equivocation_cell_produces_standalone_proof(self, matrix):
        outcome = matrix.run_cell(CellSpec("equivocating-peer", "kv", "spot",
                                           2, 2007))
        assert outcome.equivocation_proof
        assert outcome.expectation_met, outcome.describe()

    def test_quarantine_cell_records_shipments(self, matrix):
        outcome = matrix.run_cell(CellSpec("lying-shipper-snapshots", "kv",
                                           "archive", 2, 2008))
        assert outcome.quarantined_shipments > 0
        assert outcome.verdict == "suspected"
        assert outcome.expectation_met, outcome.describe()

    def test_online_cell_records_detection_time(self, matrix):
        outcome = matrix.run_cell(CellSpec("unrecorded-input", "kv", "online",
                                           2, 2009))
        assert outcome.expectation_met, outcome.describe()
        assert outcome.detection_time is not None
        assert outcome.detection_time <= matrix.duration

    def test_cells_are_deterministic(self, matrix):
        spec = CellSpec("tamper-forge", "kv", "full", 2, 2010)
        first = matrix.run_cell(spec)
        second = matrix.run_cell(spec)
        assert first.verdict == second.verdict
        assert first.reason == second.reason
        assert first.phase == second.phase


# ---------------------------------------------------------------------------
# The catalog and helpers
# ---------------------------------------------------------------------------

class TestCatalog:
    def test_catalog_size_and_mode_coverage(self):
        names = adversary_names()
        assert names[0] == "honest"
        assert len(names) >= 7  # honest + >= 6 misbehaving adversaries
        modes = set()
        for name in names:
            adversary = make_adversary(name)
            assert adversary.modes, name
            modes.update(adversary.modes)
        assert modes == set(MODES)

    def test_unknown_adversary_rejected(self):
        with pytest.raises(KeyError):
            make_adversary("nonexistent-adversary")

    def test_default_cells_satisfy_acceptance_floor(self):
        cells = ScenarioMatrix().default_cells()
        assert len(cells) >= 24
        assert len({cell.adversary for cell in cells}) >= 7
        assert {cell.workload for cell in cells} == set(WORKLOADS)
        assert len({cell.mode for cell in cells}) >= 2
        assert len({cell.fleet_size for cell in cells}) >= 2
        # Seeds are unique, so every cell is independently reproducible.
        assert len({cell.seed for cell in cells}) == len(cells)

    def test_mode_applicability_enforced(self):
        with pytest.raises(ValueError):
            ScenarioMatrix().run_cell(
                CellSpec("tamper-modify", "kv", "archive", 2, 2011))

    def test_record_scenario_helper(self):
        ctx = record_scenario(fleet_size=2, seed=31, duration=2.0)
        assert len(ctx.monitors) == 2
        assert ctx.byzantine == "db-server-00"
        assert len(ctx.monitor.log) > 0
        assert ctx.peer_committed_sequences()


# ---------------------------------------------------------------------------
# The full matrix (acceptance criteria)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestFullMatrix:
    def test_full_matrix_detects_everything_and_accuses_no_one(self):
        matrix = ScenarioMatrix()
        report = matrix.run(matrix.default_cells())

        assert len(report.cells) >= 24
        assert len(report.adversaries()) >= 7
        assert {cell.spec.workload for cell in report.cells} == set(WORKLOADS)
        assert {cell.spec.mode for cell in report.cells} == set(MODES)

        failures = [cell.describe() for cell in report.cells
                    if not cell.expectation_met]
        assert not failures, "\n".join(failures)
        assert report.detection_rate == 1.0
        assert report.false_accusation_count == 0
        assert report.all_evidence_verified
        assert report.ok

        # Detection surfaces cover all three evidence families.
        phases = {cell.phase for cell in report.misbehaving_cells
                  if cell.verdict == "fail"}
        assert AuditPhase.AUTHENTICATOR_CHECK.value in phases
        assert AuditPhase.SEMANTIC_CHECK.value in phases
        assert any(cell.quarantined_shipments for cell in report.cells)
        assert any(cell.equivocation_proof for cell in report.cells)
