"""Unit tests for the observability subsystem (:mod:`repro.obs`).

Covers the metrics registry (counters, gauges, fixed-bucket histograms,
disabled null path), the two-clock-domain tracer (span nesting, stride
sampling, JSONL and Chrome trace_event export, schema validation), the
always-measuring wall timer, audit progress reporting, and the pickle
round-trips the process-pool audit path relies on.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs import (NULL_OBS, NULL_REGISTRY, NULL_TRACER, AuditProgress,
                       Counter, Gauge, Histogram, MetricsRegistry,
                       Observability, Tracer, WallTimer, ensure_obs,
                       validate_chrome_trace)
from repro.obs.progress import NULL_PROGRESS
from repro.obs.trace import SIM, WALL


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_tracks_high_water(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec(6)
        assert gauge.value == 4
        assert gauge.high_water == 10

    def test_histogram_buckets(self):
        hist = Histogram("h", bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        # one observation per bucket, one in the +inf overflow
        assert hist.bucket_counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.max == 5.0
        assert hist.mean == pytest.approx(5.555 / 4)
        snapshot = hist.to_dict()
        assert snapshot["count"] == 4
        json.dumps(snapshot)  # JSON-ready

    def test_histogram_boundary_is_inclusive(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(1.0)
        assert hist.bucket_counts == [1, 0]

    def test_empty_histogram_snapshot_has_full_bucket_schema(self):
        # An empty histogram must emit the same bucket keys as a populated
        # one — consumers key on bound labels, not on whether data arrived.
        hist = Histogram("h", bounds=(0.01, 1.0))
        empty = hist.to_dict()
        assert empty["buckets"] == {"0.01": 0, "1.0": 0, "+inf": 0}
        assert (empty["count"], empty["sum"], empty["max"]) == (0, 0.0, 0.0)
        hist.observe(0.5)
        assert set(hist.to_dict()["buckets"]) == set(empty["buckets"])

    def test_null_histogram_snapshot_matches_real_schema(self):
        real = Histogram("h").to_dict()
        null = NULL_REGISTRY.histogram("h").to_dict()
        assert set(null["buckets"]) == set(real["buckets"])
        assert null["count"] == 0


class TestRegistry:
    def test_instruments_are_cached_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")

    def test_name_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(3)
        registry.gauge("a").set(1)
        registry.histogram("m").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)

    def test_disabled_registry_hands_out_shared_nulls(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc(10**6)
        assert counter is NULL_REGISTRY.counter("other")
        assert NULL_REGISTRY.snapshot() == {}
        assert not NULL_REGISTRY.enabled

    def test_null_instruments_pickle_to_singletons(self):
        for instrument in (NULL_REGISTRY.counter("c"),
                           NULL_REGISTRY.gauge("g"),
                           NULL_REGISTRY.histogram("h")):
            assert pickle.loads(pickle.dumps(instrument)) is instrument


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_span_nesting_records_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.span.parent_id == outer.span.span_id
        # children finish (and record) before their parents
        assert [span.name for span in tracer.spans] == ["inner", "outer"]
        assert all(span.end >= span.start for span in tracer.spans)

    def test_timed_measures_and_records(self):
        tracer = Tracer()
        with tracer.timed("work", machine="m1") as timer:
            pass
        assert timer.seconds >= 0.0
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.domain == WALL
        assert span.attributes["machine"] == "m1"

    def test_event_uses_explicit_timestamp_and_duration(self):
        tracer = Tracer(sim_time=lambda: 100.0)
        tracer.event("snapshot", domain=SIM, duration=2.5, timestamp=40.0,
                     pages=3)
        tracer.event("tick", domain=SIM)
        first, second = tracer.spans
        assert (first.start, first.end) == (40.0, 42.5)
        assert second.start == 100.0  # falls back to the sim clock
        assert first.attributes == {"pages": 3}

    def test_sample_stride_is_a_deterministic_counter(self):
        tracer = Tracer(sample_stride=3)
        for index in range(9):
            tracer.event("e", timestamp=float(index))
        assert [span.start for span in tracer.spans] == [0.0, 3.0, 6.0]

    def test_max_spans_drops_oldest(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            tracer.event("e", timestamp=float(index))
        assert tracer.dropped_spans == 3
        assert [span.start for span in tracer.spans] == [3.0, 4.0]

    def test_error_exit_flags_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.spans
        assert span.attributes["error"] is True

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", timestamp=1.0, duration=0.5)
        tracer.event("b", timestamp=2.0)
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]
        assert lines[0]["duration"] == 0.5

    def test_chrome_trace_two_processes_and_validates(self, tmp_path):
        tracer = Tracer(sim_time=lambda: 0.0)
        with tracer.timed("audit.segment", track="m1"):
            pass
        tracer.event("monitor.snapshot", domain=SIM, track="m1",
                     timestamp=3.0, duration=1.0)
        path = tracer.export_chrome_trace(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        assert by_name["audit.segment"]["pid"] == 1   # wall domain
        assert by_name["monitor.snapshot"]["pid"] == 2  # sim domain
        assert by_name["monitor.snapshot"]["ts"] == pytest.approx(3e6)
        assert by_name["monitor.snapshot"]["dur"] == pytest.approx(1e6)
        thread_names = [e for e in data["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in thread_names} == {"m1"}


class TestValidateChromeTrace:
    def test_accepts_bare_event_array(self):
        assert validate_chrome_trace(
            [{"ph": "i", "name": "e", "pid": 1, "tid": 1, "ts": 0}]) == []

    @pytest.mark.parametrize("bad,expected", [
        ({"traceEvents": 3}, "traceEvents"),
        ({"traceEvents": [{"ph": "Z", "name": "e", "pid": 1, "tid": 1,
                           "ts": 0}]}, "phase"),
        ({"traceEvents": [{"ph": "i", "pid": 1, "tid": 1, "ts": 0}]},
         "'name'"),
        ({"traceEvents": [{"ph": "i", "name": "e", "pid": "1", "tid": 1,
                           "ts": 0}]}, "'pid'"),
        ({"traceEvents": [{"ph": "i", "name": "e", "pid": 1, "tid": 1,
                           "ts": -1}]}, "'ts'"),
        ({"traceEvents": [{"ph": "X", "name": "e", "pid": 1, "tid": 1,
                           "ts": 0}]}, "'dur'"),
        ({"traceEvents": [{"ph": "i", "name": "e", "pid": 1, "tid": 1,
                           "ts": 0, "args": 7}]}, "'args'"),
        (42, "object or array"),
    ])
    def test_rejects_malformed(self, bad, expected):
        problems = validate_chrome_trace(bad)
        assert problems and expected in problems[0]

    def test_metadata_events_need_no_timestamp(self):
        assert validate_chrome_trace(
            [{"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
              "args": {"name": "p"}}]) == []


class TestWallTimer:
    def test_measures_without_a_handle(self):
        with WallTimer(None) as timer:
            sum(range(1000))
        assert timer.seconds > 0.0

    def test_null_tracer_timed_still_measures(self):
        with NULL_TRACER.timed("anything") as timer:
            sum(range(1000))
        assert timer.seconds > 0.0
        assert NULL_TRACER.spans == []


# ---------------------------------------------------------------------------
# Progress
# ---------------------------------------------------------------------------

class TestAuditProgress:
    def test_lifecycle_and_snapshot(self):
        updates = []
        progress = AuditProgress(on_update=lambda entry: updates.append(
            (entry.machine, entry.chunks_done, entry.done)))
        progress.machine_started("m1", total_chunks=2)
        progress.chunk_done("m1", entries=10, checkpoint_seq=4)
        progress.chunk_done("m1", entries=12, checkpoint_seq=9)
        progress.machine_done("m1", "pass", wall_seconds=1.5)
        (entry,) = progress.snapshot()
        assert entry["chunks_done"] == 2
        assert entry["entries_done"] == 22
        assert entry["checkpoint_seq"] == 9
        assert entry["verdict"] == "pass"
        assert entry["done"] is True
        assert entry["peak_rss_bytes"] > 0
        assert progress.peak_rss == entry["peak_rss_bytes"]
        assert updates[-1] == ("m1", 2, True)
        assert "m1" in progress.render()

    def test_null_progress_is_inert(self):
        NULL_PROGRESS.machine_started("m")
        NULL_PROGRESS.chunk_done("m")
        NULL_PROGRESS.machine_done("m", "pass")
        assert NULL_PROGRESS.snapshot() == []
        assert NULL_PROGRESS.peak_rss == 0


# ---------------------------------------------------------------------------
# The bundle
# ---------------------------------------------------------------------------

class TestObservability:
    def test_ensure_obs_defaults_to_the_shared_null(self):
        assert ensure_obs(None) is NULL_OBS
        bundle = Observability.make()
        assert ensure_obs(bundle) is bundle

    def test_enabled_flags(self):
        assert not NULL_OBS.enabled
        assert Observability.make().enabled

    def test_null_bundle_pickles_to_singleton(self):
        assert pickle.loads(pickle.dumps(NULL_OBS)) is NULL_OBS
        assert pickle.loads(pickle.dumps(NULL_TRACER)) is NULL_TRACER
        assert pickle.loads(pickle.dumps(NULL_PROGRESS)) is NULL_PROGRESS
