"""Differential tests: streaming audit == materializing audit.

The streaming pipeline's contract (:mod:`repro.audit.stream`) is that a
streamed audit of an archived log is *structurally identical* — verdict,
phase, reason, counters, replay report, evidence and modelled costs — to the
serial materializing audit of the same archive, which in turn equals the
in-memory audit of the live machine (established in PR 2).  The fast tests
check this on a small archived fleet, on truncated (GC'd) archives, on the
engine and spot-check front-ends, and on a representative subset of
adversary scenarios; the slow tests sweep every adversary class over both
workloads and the 16-machine archived fleet.  Any divergence fails with the
offending cell printed.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.adversary.catalog import adversary_names, make_adversary
from repro.adversary.matrix import WORKLOADS, CellSpec, ScenarioMatrix
from repro.audit.engine import AuditAssignment, AuditScheduler
from repro.audit.spot_check import SpotChecker
from repro.audit.stream import stream_audit
from repro.audit.verdict import Verdict
from repro.errors import ReproError
from repro.experiments.parallel_audit import build_fleet
from repro.service.ingest import AuditIngestService
from repro.store.archive import LogArchive


# ---------------------------------------------------------------------------
# A small archived fleet shared by the fast tests
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def archived_fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("stream-fleet") / "archive"
    fleet = build_fleet(num_machines=4, duration=8.0, seed=7,
                        snapshot_interval=2.0, archive=LogArchive(root))
    return fleet, root


def _service(root) -> AuditIngestService:
    return AuditIngestService(LogArchive(root))


def _prepared_auditor(fleet, service, machine):
    auditor = fleet.make_auditor(machine, collect=False)
    service.prepare_auditor(auditor, machine)
    return auditor


class TestArchivedFleetEquivalence:
    def test_streaming_equals_materializing_and_memory(self, archived_fleet):
        fleet, root = archived_fleet
        service = _service(root)
        for machine in fleet.machines:
            materialized = _prepared_auditor(fleet, service, machine).audit(
                service.target_for(machine), streaming=False)
            report = stream_audit(_prepared_auditor(fleet, service, machine),
                                  service.target_for(machine))
            in_memory = fleet.make_auditor(machine).audit(
                fleet.monitors[machine])
            assert report.stats.fallback_reason is None
            assert report.result == materialized, \
                f"stream vs materializing diverged for {machine}"
            assert report.result == in_memory, \
                f"stream vs in-memory diverged for {machine}"

    def test_stream_actually_chunks(self, archived_fleet):
        fleet, root = archived_fleet
        service = _service(root)
        machine = fleet.machines[0]
        report = stream_audit(_prepared_auditor(fleet, service, machine),
                              service.target_for(machine))
        assert report.result.verdict is Verdict.PASS
        assert report.stats.chunks > 1
        assert report.stats.peak_chunk_entries < report.stats.entries
        assert report.stats.signature_windows >= report.stats.chunks

    def test_default_audit_path_streams(self, archived_fleet):
        """``Auditor.audit`` of an archive target takes the streaming path
        (same result object, produced without whole-log materialization)."""
        fleet, root = archived_fleet
        service = _service(root)
        machine = fleet.machines[0]
        default = service.audit_machine(
            fleet.make_auditor(machine, collect=False), machine)
        report = stream_audit(_prepared_auditor(fleet, service, machine),
                              service.target_for(machine))
        assert default == report.result

    def test_engine_from_archive_matches_serial(self, archived_fleet):
        fleet, root = archived_fleet
        service = _service(root)
        assignments = []
        for machine in fleet.machines:
            auditor = _prepared_auditor(fleet, service, machine)
            assignments.append(
                AuditAssignment(auditor, service.target_for(machine)))
        engine_report = AuditScheduler(workers=2, executor="thread") \
            .audit_fleet(assignments)
        assert engine_report.chunk_count > len(fleet.machines)
        for machine in fleet.machines:
            serial = _prepared_auditor(fleet, service, machine).audit(
                service.target_for(machine), streaming=False)
            assert engine_report.results[machine].verdict is serial.verdict
            assert engine_report.results[machine].verdict is Verdict.PASS
            # Chunk VMs restore absolute instruction counters from boundary
            # snapshots; the merged fast-path report must not double-count.
            merged = engine_report.results[machine].replay_report
            assert merged.instructions_executed == \
                serial.replay_report.instructions_executed
            assert merged.entries_replayed == \
                serial.replay_report.entries_replayed

    def test_spot_checker_lazy_source_matches(self, archived_fleet):
        fleet, root = archived_fleet
        service = _service(root)
        machine = fleet.machines[0]
        target = service.target_for(machine)
        checker = SpotChecker(_prepared_auditor(fleet, service, machine))
        # Lazy (archive-backed) source vs an explicitly materialized list.
        lazy = checker.check_chunk(target, 1, 2)
        eager = checker.check_chunk(target, 1, 2,
                                    segments=target.get_snapshot_segments())
        assert lazy.result == eager.result
        assert lazy.log_bytes == eager.log_bytes
        report = checker.sample_chunks(target, k=2, sample_size=2, seed=3)
        assert report.ok
        assert report.entries_total == sum(
            len(s) for s in target.get_snapshot_segments())


class TestReviewRegressions:
    """Pinned fixes from the pre-merge review of the streaming pipeline."""

    def test_duplicate_send_id_is_flagged_by_the_stream_checker(self):
        """A forged duplicate-id SEND after its pair matched must be flagged
        (eviction would otherwise forget the pair the whole-segment checker
        compares it against, letting a tampered log pass only when
        streamed)."""
        from repro.audit.stream import StreamingCrossChecker
        from repro.audit.syntactic import SyntacticChecker
        from repro.log.entries import EntryType
        from repro.log.segments import LogSegment
        from repro.log.tamper_evident import TamperEvidentLog

        log = TamperEvidentLog("mallory")
        log.append(EntryType.SEND, {"destination": "bob", "payload_hash": "aa",
                                    "payload_size": 1, "message_id": "m1"})
        log.append(EntryType.MACLAYER, {"direction": "out", "message_id": "m1",
                                        "payload_hash": "aa",
                                        "execution_counter": 1})
        forged = log.append(EntryType.SEND,
                            {"destination": "bob", "payload_hash": "bb",
                             "payload_size": 1, "message_id": "m1"})
        segment = LogSegment(machine="mallory", entries=list(log.entries),
                             start_hash=log.entries[0].previous_hash)
        whole = SyntacticChecker(verify_sender_signatures=False,
                                 check_entry_format=False).check(segment)
        assert not whole.ok  # the serial checker catches the forgery...
        checker = StreamingCrossChecker()
        for entry in segment.entries:
            checker.feed(entry)
        checker.finish(forged.sequence)
        assert not checker.ok  # ...and so must the streaming one

    def test_unverifiable_boundary_snapshot_falls_back(self, archived_fleet,
                                                       monkeypatch):
        """Any inability to anchor a chunk hands over to the materializing
        audit instead of raising out of the pipeline."""
        import repro.audit.stream as stream_module
        from repro.errors import MissingSnapshotError

        def refuse(target, snapshot_entry):
            raise MissingSnapshotError("simulated unverifiable snapshot")

        monkeypatch.setattr(stream_module, "fetch_verified_snapshot_entry",
                            refuse)
        fleet, root = archived_fleet
        service = _service(root)
        machine = fleet.machines[0]
        report = stream_audit(_prepared_auditor(fleet, service, machine),
                              service.target_for(machine))
        assert report.used_fallback
        materialized = _prepared_auditor(fleet, service, machine).audit(
            service.target_for(machine), streaming=False)
        assert report.result == materialized

    def test_streaming_false_bypasses_the_engine(self, archived_fleet):
        """``streaming=False`` forces the serial materializing path even when
        the auditor has an engine (whose plans are stream-built)."""
        fleet, root = archived_fleet
        service = _service(root)
        machine = fleet.machines[0]
        engine_backed = fleet.make_auditor(machine, collect=False)
        engine_backed.workers = 2
        service.prepare_auditor(engine_backed, machine)
        forced = engine_backed.audit(service.target_for(machine),
                                     streaming=False)
        serial = _prepared_auditor(fleet, service, machine).audit(
            service.target_for(machine), streaming=False)
        assert forced == serial

    def test_explicit_initial_state_wins_on_truncated_targets(
            self, archived_fleet, tmp_path):
        """A caller-supplied initial_state must reach the replay unchanged
        (a wrong state must fail; target.initial_state() must not silently
        replace it)."""
        import shutil
        fleet, root = archived_fleet
        clone_root = tmp_path / "archive"
        shutil.copytree(root, clone_root)
        archive = LogArchive(clone_root)
        service = AuditIngestService(archive)
        machine = fleet.machines[0]
        archive.truncate(machine, archive.head_checkpoint(machine).sequence // 2)
        wrong_state = {"bogus": True}
        # The bogus state must reach the replay VM (which rejects it) —
        # were target.initial_state() to silently win, the audit would PASS.
        with pytest.raises(ReproError):
            _prepared_auditor(fleet, service, machine).audit(
                service.target_for(machine), initial_state=wrong_state,
                streaming=False)


def test_full_segment_shim_is_gone(archived_fleet):
    """The deprecated materializing shim was removed; materialized_log is
    the one explicit-materialization entry point."""
    fleet, root = archived_fleet
    archive = LogArchive(root)
    machine = fleet.machines[0]
    assert not hasattr(archive, "full_segment")
    full = archive.materialized_log(machine)
    assert len(full.entries) == archive.entry_count(machine)


class TestTruncatedArchiveEquivalence:
    def test_streaming_audits_gc_truncated_archive(self, archived_fleet):
        fleet, root = archived_fleet
        with tempfile.TemporaryDirectory() as tmp:
            import shutil
            clone_root = tmp + "/archive"
            shutil.copytree(root, clone_root)
            archive = LogArchive(clone_root)
            service = AuditIngestService(archive)
            for machine in fleet.machines:
                head = archive.head_checkpoint(machine)
                archive.truncate(machine, head.sequence // 2)
                assert archive.retained_checkpoint(machine) is not None
                materialized = _prepared_auditor(fleet, service, machine) \
                    .audit(service.target_for(machine), streaming=False)
                report = stream_audit(
                    _prepared_auditor(fleet, service, machine),
                    service.target_for(machine))
                assert report.stats.fallback_reason is None
                assert report.result == materialized, \
                    f"truncated stream vs materializing diverged for {machine}"
                assert report.result.verdict is Verdict.PASS
                assert report.result.cost.snapshot_bytes_downloaded > 0


# ---------------------------------------------------------------------------
# Differential sweep over adversary scenarios
# ---------------------------------------------------------------------------

def _run_archived_scenario(adversary_name: str, workload: str, seed: int,
                           archive_dir: str):
    """Record one adversary cell with archive shipping attached."""
    matrix = ScenarioMatrix(duration=3.0, snapshot_interval=1.0)
    adversary = make_adversary(adversary_name, seed=seed)
    fleet_size = 2 if workload == "kv" else 3
    spec = CellSpec(adversary_name, workload, "archive", fleet_size, seed)
    ctx, run = matrix._build(spec, adversary, archive_dir)
    adversary.install(ctx)
    run()
    matrix._drain_archive(ctx)
    adversary.corrupt(ctx)
    return matrix, adversary, ctx


def _compare_cell(adversary_name: str, workload: str, seed: int) -> None:
    with tempfile.TemporaryDirectory(prefix="stream-diff-") as tmp:
        matrix, adversary, ctx = _run_archived_scenario(
            adversary_name, workload, seed, tmp)
        cell = f"{adversary_name} x {workload}"
        for machine in sorted(ctx.monitors):
            target = ctx.ingest.target_for(machine)

            def _prepared():
                auditor = matrix._make_auditor(ctx, machine, adversary)
                ctx.ingest.prepare_auditor(auditor, machine)
                return auditor

            try:
                materialized = _prepared().audit(target, streaming=False)
                materialized_error = None
            except ReproError as exc:
                materialized, materialized_error = None, exc
            try:
                streamed = stream_audit(_prepared(), target).result
                streamed_error = None
            except ReproError as exc:
                streamed, streamed_error = None, exc

            if materialized_error is not None or streamed_error is not None:
                assert type(streamed_error) is type(materialized_error), (
                    f"cell [{cell}] machine {machine}: error divergence — "
                    f"materializing raised {materialized_error!r}, "
                    f"streaming raised {streamed_error!r}")
                continue
            if streamed != materialized:
                pytest.fail(
                    f"cell [{cell}] machine {machine}: structural divergence\n"
                    f"  materializing: {materialized}\n"
                    f"  streaming:     {streamed}")


#: representative fast subset: one honest control, one in-log fault (replay
#: divergence ships into the archive), one shipping corruptor (quarantine →
#: partial/empty archive)
_FAST_CELLS = [("honest", "kv"), ("cheating-guest", "kv"),
               ("lying-shipper-segments", "kv")]


@pytest.mark.parametrize("adversary_name,workload", _FAST_CELLS)
def test_adversary_cell_differential_fast(adversary_name, workload):
    _compare_cell(adversary_name, workload, seed=5000)


@pytest.mark.slow
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("adversary_name", adversary_names())
def test_adversary_matrix_differential(adversary_name, workload):
    """Every adversary class, both workloads: streaming == materializing."""
    _compare_cell(adversary_name, workload, seed=6000)


@pytest.mark.slow
def test_sixteen_machine_archived_fleet_differential(tmp_path):
    root = tmp_path / "archive"
    fleet = build_fleet(num_machines=16, duration=12.0, seed=11,
                        snapshot_interval=4.0, archive=LogArchive(root))
    service = _service(root)
    for machine in fleet.machines:
        in_memory = fleet.make_auditor(machine).audit(fleet.monitors[machine])
        report = stream_audit(_prepared_auditor(fleet, service, machine),
                              service.target_for(machine))
        assert report.stats.fallback_reason is None
        if report.result != in_memory:
            pytest.fail(f"16-machine fleet, machine {machine}: streaming vs "
                        f"in-memory divergence\n  in-memory: {in_memory}\n"
                        f"  streaming: {report.result}")
    # ...and the parallel engine agrees from the same archive.
    assignments = [AuditAssignment(_prepared_auditor(fleet, service, machine),
                                   service.target_for(machine))
                   for machine in fleet.machines]
    engine_report = AuditScheduler(workers=4).audit_fleet(assignments)
    assert engine_report.all_passed
