"""Unit tests for the versioned LogCodec API (:mod:`repro.log.codec`).

Covers the registry, both codecs' four API layers (entry, framing, segment,
streaming), the single-error taxonomy, and the cache-seeding contract that
makes zero-copy v2 decode safe against stale-cache masking.
"""

import random
from dataclasses import replace

import pytest

from repro.crypto import hashing
from repro.errors import LogFormatError
from repro.log.codec import (
    MAGIC_LENGTH,
    V3_FLAG_COMPRESSED,
    BinaryCodec,
    JsonBz2Codec,
    ModelledCostAccumulator,
    TypedCodec,
    SegmentStreamDecoder,
    codec_for_data,
    decode_segment,
    encode_segment,
    get_codec,
    iter_snapshot_subsegments,
    modelled_compressed_log_bytes,
    require_format_version,
    segment_suffix,
    sniff_format_version,
    supported_format_versions,
)
from repro.log.entries import EntryType, LogEntry, snapshot_content
from repro.log.segments import LogSegment
from repro.log.tamper_evident import TamperEvidentLog


def _build_log(entries: int = 30, snapshot_every: int = 10,
               machine: str = "codec-machine") -> TamperEvidentLog:
    log = TamperEvidentLog(machine, clock=lambda: 3.5)
    rng = random.Random(0xC0DEC)
    snapshot_id = 0
    for index in range(entries):
        if snapshot_every and index and index % snapshot_every == 0:
            snapshot_id += 1
            log.append(EntryType.SNAPSHOT,
                       snapshot_content(snapshot_id,
                                        hashing.hash_bytes(b"state"),
                                        index * 11))
        log.append(rng.choice([EntryType.SEND, EntryType.RECV,
                               EntryType.NONDET]),
                   {"index": index,
                    "payload_hash": hashing.hash_bytes(bytes([index])).hex(),
                    "execution_counter": index * 7})
    return log


@pytest.fixture(scope="module")
def sample_segment() -> LogSegment:
    return _build_log().full_segment()


class TestRegistry:
    def test_all_formats_registered(self):
        assert supported_format_versions() == [1, 2, 3]

    def test_get_codec_returns_fresh_instances(self):
        assert get_codec(1) is not get_codec(1)
        assert isinstance(get_codec(1), JsonBz2Codec)
        assert isinstance(get_codec(2), BinaryCodec)
        assert isinstance(get_codec(3), TypedCodec)

    def test_unknown_version_is_one_well_typed_error(self):
        with pytest.raises(LogFormatError, match="format version"):
            get_codec(99)
        with pytest.raises(LogFormatError, match="format version"):
            require_format_version(None, what="whatever")

    def test_magics_are_distinct_and_sized(self):
        magics = {JsonBz2Codec.MAGIC, BinaryCodec.MAGIC, TypedCodec.MAGIC}
        assert len(magics) == 3
        for magic in magics:
            assert len(magic) == MAGIC_LENGTH

    def test_suffixes(self):
        assert segment_suffix(1) == ".avmlogz"
        assert segment_suffix(2) == ".avmlogb"
        assert segment_suffix(3) == ".avmlogt"

    def test_sniffing(self, sample_segment):
        for version in (1, 2, 3):
            data = get_codec(version).encode_segment(sample_segment)
            assert sniff_format_version(data) == version
            assert codec_for_data(data).format_version == version
        with pytest.raises(LogFormatError, match="magic"):
            sniff_format_version(b"NOTMAGIC" + b"x" * 64)


@pytest.mark.parametrize("format_version", [1, 2, 3])
class TestSegmentRoundTrip:
    def test_round_trip_preserves_everything(self, sample_segment,
                                             format_version):
        codec = get_codec(format_version)
        decoded = codec.decode_segment(codec.encode_segment(sample_segment))
        assert decoded.machine == sample_segment.machine
        assert decoded.start_hash == sample_segment.start_hash
        assert decoded.entries == sample_segment.entries
        decoded.verify_hash_chain()

    def test_empty_segment_round_trips(self, format_version):
        empty = LogSegment(machine="empty", entries=[],
                           start_hash=bytes(32))
        codec = get_codec(format_version)
        decoded = codec.decode_segment(codec.encode_segment(empty))
        assert decoded.machine == "empty"
        assert decoded.entries == []

    def test_module_level_helpers_sniff(self, sample_segment, format_version):
        data = encode_segment(sample_segment, format_version=format_version)
        decoded = decode_segment(data)
        assert decoded.entries == sample_segment.entries

    def test_entry_level_round_trip(self, sample_segment, format_version):
        encoder = get_codec(format_version)
        decoder = get_codec(format_version)
        for entry in sample_segment.entries:
            decoded = decoder.decode_entry(encoder.encode_entry(entry))
            assert decoded == entry

    def test_framing_round_trip(self, sample_segment, format_version):
        codec = get_codec(format_version)
        data = codec.encode_segment(sample_segment)
        whole = codec.decode_segment(data)
        assert len(whole.entries) == len(sample_segment.entries)

    def test_streaming_decoder_matches_one_shot(self, sample_segment,
                                                format_version):
        data = get_codec(format_version).encode_segment(sample_segment)
        for chunk_size in (1, 7, 64, len(data)):
            decoder = SegmentStreamDecoder()
            chunks = (data[offset:offset + chunk_size]
                      for offset in range(0, len(data), chunk_size))
            entries = list(decoder.entries(chunks))
            assert entries == sample_segment.entries
            assert decoder.header["machine"] == sample_segment.machine
            assert decoder.entry_count == len(sample_segment.entries)


class TestBinaryFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(LogFormatError, match="magic"):
            BinaryCodec().decode_segment(b"WRONGMAG" + b"\x00" * 32)

    def test_truncated_header(self, sample_segment):
        data = get_codec(2).encode_segment(sample_segment)
        with pytest.raises(LogFormatError, match="truncated"):
            BinaryCodec().decode_segment(data[:MAGIC_LENGTH + 2])

    def test_truncated_frame(self, sample_segment):
        data = get_codec(2).encode_segment(sample_segment)
        with pytest.raises(LogFormatError):
            BinaryCodec().decode_segment(data[:-3])

    def test_entry_count_mismatch(self, sample_segment):
        codec = get_codec(2)
        data = bytearray(codec.encode_segment(sample_segment))
        # Flip the header's entry count (last 4 bytes of the header).
        header_end = (MAGIC_LENGTH + 4
                      + len(sample_segment.machine.encode()) + 32 + 4)
        data[header_end - 1] ^= 0x01
        with pytest.raises(LogFormatError, match="entry count mismatch"):
            codec.decode_segment(bytes(data))

    def test_unknown_type_tag(self):
        entry = _build_log(entries=1, snapshot_every=0).entries[0]
        payload = bytearray(get_codec(2).encode_entry(entry))
        payload[8] = 0xEE  # the type tag byte (after the u64 sequence)
        with pytest.raises(LogFormatError, match="tag"):
            get_codec(2).decode_entry(bytes(payload))

    def test_short_stream_is_rejected(self):
        decoder = SegmentStreamDecoder()
        with pytest.raises(LogFormatError, match="magic"):
            list(decoder.entries(iter([b"AVM"])))


class TestTypedFormatErrors:
    @staticmethod
    def _header_end(sample_segment) -> int:
        # magic + <HH> prefix + machine + 32-byte hash + flags + count
        return (MAGIC_LENGTH + 4
                + len(sample_segment.machine.encode()) + 32 + 1 + 4)

    def test_bad_magic(self):
        with pytest.raises(LogFormatError, match="magic"):
            TypedCodec().decode_segment(b"WRONGMAG" + b"\x00" * 32)

    def test_truncated_header(self, sample_segment):
        data = get_codec(3).encode_segment(sample_segment)
        with pytest.raises(LogFormatError, match="truncated"):
            TypedCodec().decode_segment(data[:MAGIC_LENGTH + 2])

    def test_truncated_frame(self, sample_segment):
        data = get_codec(3).encode_segment(sample_segment)
        with pytest.raises(LogFormatError):
            TypedCodec().decode_segment(data[:-3])

    def test_entry_count_mismatch(self, sample_segment):
        codec = get_codec(3)
        data = bytearray(codec.encode_segment(sample_segment))
        data[self._header_end(sample_segment) - 1] ^= 0x01
        with pytest.raises(LogFormatError, match="entry count mismatch"):
            codec.decode_segment(bytes(data))

    def test_unknown_header_flags_rejected(self, sample_segment):
        data = bytearray(get_codec(3).encode_segment(sample_segment))
        flags_offset = self._header_end(sample_segment) - 5
        data[flags_offset] |= 0x80
        with pytest.raises(LogFormatError, match="unknown v3 header flags"):
            get_codec(3).decode_segment(bytes(data))

    def test_corrupt_compressed_frame(self, sample_segment):
        data = bytearray(TypedCodec(compress=True)
                         .encode_segment(sample_segment))
        # Clobber the first frame body (after header + 4-byte frame length).
        offset = self._header_end(sample_segment) + 4
        data[offset:offset + 4] = b"\xde\xad\xbe\xef"
        with pytest.raises(LogFormatError,
                           match="corrupt compressed typed log frame"):
            TypedCodec().decode_segment(bytes(data))

    def test_unknown_type_tag(self):
        entry = _build_log(entries=1, snapshot_every=0).entries[0]
        payload = bytearray(get_codec(3).encode_entry(entry))
        payload[8] = 0xEE  # the type tag byte (after the u64 sequence)
        with pytest.raises(LogFormatError, match="tag"):
            get_codec(3).decode_entry(bytes(payload))

    def test_decode_honours_header_flag_not_constructor(self, sample_segment):
        raw = TypedCodec(compress=False).encode_segment(sample_segment)
        compressed = TypedCodec(compress=True).encode_segment(sample_segment)
        assert len(compressed) < len(raw)
        for blob in (raw, compressed):
            for codec in (TypedCodec(compress=False),
                          TypedCodec(compress=True)):
                decoded = codec.decode_segment(blob)
                assert decoded.entries == sample_segment.entries


class TestV1Errors:
    def test_bad_magic(self):
        with pytest.raises(LogFormatError, match="magic"):
            JsonBz2Codec().decode_segment(b"WRONGMAG" + b"\x00" * 16)

    def test_corrupt_body_is_log_format_error(self, sample_segment):
        data = get_codec(1).encode_segment(sample_segment)
        with pytest.raises(LogFormatError, match="corrupt"):
            JsonBz2Codec().decode_segment(
                data[:MAGIC_LENGTH] + b"garbage-after-magic")


class TestCacheSeeding:
    def test_v2_decode_verifies_wire_bytes_not_reencoding(self,
                                                          sample_segment):
        """A forged frame whose content still parses must fail the chain."""
        codec = get_codec(2)
        entry = sample_segment.entries[0]
        forged = replace(entry, content={**entry.content, "index": -999})
        payload = get_codec(2).encode_entry(forged)
        decoded = codec.decode_entry(payload)
        from repro.log.hashchain import verify_entry
        assert not verify_entry(decoded)

    def test_replace_does_not_inherit_the_cache(self, sample_segment):
        entry = sample_segment.entries[0]
        entry.encoded_content()  # populate the cache
        tampered = replace(entry, content={**entry.content, "x": 1})
        assert tampered.encoded_content() != entry.encoded_content()


class TestCostModel:
    def test_subsegments_tile_the_log(self, sample_segment):
        subs = list(iter_snapshot_subsegments(sample_segment))
        assert sum(len(s.entries) for s in subs) == \
            len(sample_segment.entries)
        assert subs[0].start_hash == sample_segment.start_hash
        for previous, current in zip(subs, subs[1:]):
            assert current.start_hash == previous.end_hash
        for sub in subs[:-1]:
            assert sub.entries[-1].entry_type is EntryType.SNAPSHOT

    def test_modelled_size_is_chunking_independent(self, sample_segment):
        whole = modelled_compressed_log_bytes(sample_segment)
        total = sum(modelled_compressed_log_bytes(sub)
                    for sub in iter_snapshot_subsegments(sample_segment))
        assert whole == total
        assert modelled_compressed_log_bytes(
            LogSegment(machine="m", entries=[], start_hash=bytes(32))) == 0

    def test_size_hint_is_an_optimisation_not_a_semantic_change(
            self, sample_segment):
        calls = []

        def hint(first, last):
            calls.append((first, last))
            return None

        assert modelled_compressed_log_bytes(sample_segment, hint) == \
            modelled_compressed_log_bytes(sample_segment)
        assert calls  # the hint was consulted for every sub-segment

    @pytest.mark.parametrize("chunk_sizes", [[1], [3, 7], [100]])
    def test_accumulator_equals_pure_function(self, sample_segment,
                                              chunk_sizes):
        meter = ModelledCostAccumulator(sample_segment.machine,
                                        sample_segment.start_hash)
        entries = sample_segment.entries
        cursor = 0
        step = 0
        while cursor < len(entries):
            size = chunk_sizes[step % len(chunk_sizes)]
            meter.add_many(entries[cursor:cursor + size])
            cursor += size
            step += 1
        assert meter.finish() == modelled_compressed_log_bytes(sample_segment)
        assert meter.raw_bytes == sample_segment.size_bytes()
