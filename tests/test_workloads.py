"""Tests for the secondary workloads (echo, key-value store, sql-bench client)."""

import json


from repro.vm.events import KeyboardInput, PacketDelivery, TimerInterrupt
from repro.vm.machine import FixedNondeterminismSource, VirtualMachine
from repro.workloads.echo import EchoGuest, PingSenderGuest, make_echo_image, make_ping_sender_image
from repro.workloads.kvstore import KvServerGuest, make_kvserver_image
from repro.workloads.sqlbench import SqlBenchClientGuest, SqlBenchSettings, make_sqlbench_image


def boot(image):
    vm = VirtualMachine(image, nondet_source=FixedNondeterminismSource(default=1.0))
    vm.start()
    return vm


class TestEcho:
    def test_echoes_payload_back_to_source(self):
        vm = boot(make_echo_image())
        outputs = vm.deliver_event(PacketDelivery(source="a", payload=b"hello",
                                                  message_id="m1"))
        packets = [o for o in outputs if hasattr(o, "payload")]
        assert packets[0].payload == b"hello"
        assert packets[0].destination == "a"
        assert vm.guest.packets_echoed == 1

    def test_state_roundtrip(self):
        guest = EchoGuest()
        guest.packets_echoed = 5
        other = EchoGuest()
        other.set_state(guest.get_state())
        assert other.packets_echoed == 5

    def test_ping_sender_sends_on_command(self):
        vm = boot(make_ping_sender_image("echo"))
        outputs = vm.deliver_event(KeyboardInput(command="ping 1"))
        packets = [o for o in outputs if hasattr(o, "payload")]
        assert packets[0].destination == "echo"
        assert vm.guest.pings_sent == 1
        vm.deliver_event(PacketDelivery(source="echo", payload=packets[0].payload,
                                        message_id="r1"))
        assert vm.guest.replies_received == 1

    def test_ping_sender_state_roundtrip(self):
        guest = PingSenderGuest("echo")
        guest.pings_sent = 3
        other = PingSenderGuest("other")
        other.set_state(guest.get_state())
        assert other.target == "echo" and other.pings_sent == 3


def query_packet(query, source="client"):
    return PacketDelivery(source=source,
                          payload=json.dumps(query, sort_keys=True).encode("utf-8"),
                          message_id=f"q{query.get('request_id', 0)}")


class TestKvServer:
    def test_insert_select_update_delete(self):
        vm = boot(make_kvserver_image())
        def run(query):
            outputs = vm.deliver_event(query_packet(query))
            reply = [o for o in outputs if hasattr(o, "payload")][0]
            return json.loads(reply.payload.decode("utf-8"))["result"]

        assert run({"request_id": 1, "op": "insert", "table": "t", "key": "k",
                    "value": 42}) == {"inserted": 1}
        assert run({"request_id": 2, "op": "select", "table": "t", "key": "k"}) == {"row": 42}
        assert run({"request_id": 3, "op": "update", "table": "t", "key": "k",
                    "value": 43}) == {"updated": 1}
        assert run({"request_id": 4, "op": "count", "table": "t"}) == {"count": 1}
        assert run({"request_id": 5, "op": "delete", "table": "t", "key": "k"}) == {"deleted": 1}
        assert run({"request_id": 6, "op": "select", "table": "t", "key": "k"}) == {"row": None}

    def test_unknown_op_reported(self):
        guest = KvServerGuest()
        assert "error" in guest.execute({"op": "drop-table"})

    def test_checkpoint_writes_disk(self):
        vm = boot(make_kvserver_image())
        for i in range(KvServerGuest.CHECKPOINT_EVERY_TICKS):
            vm.deliver_event(TimerInterrupt(i + 1))
        assert vm.disk.writes >= 1

    def test_state_roundtrip(self):
        guest = KvServerGuest()
        guest.execute({"op": "insert", "table": "t", "key": "a", "value": 1})
        other = KvServerGuest()
        other.set_state(guest.get_state())
        assert other.execute({"op": "select", "table": "t", "key": "a"}) == {"row": 1}


class TestSqlBench:
    def test_query_sequence_cycles_through_phases(self):
        client = SqlBenchClientGuest(SqlBenchSettings(server="db", rows_per_phase=2))
        ops = [client.next_query()["op"] for _ in range(8)]
        assert ops == ["insert", "insert", "select", "select",
                       "update", "update", "delete", "delete"]

    def test_sequence_is_deterministic(self):
        a = SqlBenchClientGuest(SqlBenchSettings(server="db"))
        b = SqlBenchClientGuest(SqlBenchSettings(server="db"))
        assert [a.next_query() for _ in range(20)] == [b.next_query() for _ in range(20)]

    def test_tick_sends_operations(self):
        settings = SqlBenchSettings(server="db", operations_per_tick=3)
        vm = boot(make_sqlbench_image(settings))
        outputs = vm.deliver_event(TimerInterrupt(1))
        packets = [o for o in outputs if hasattr(o, "payload")]
        assert len(packets) == 3
        assert all(p.destination == "db" for p in packets)

    def test_counts_responses(self):
        vm = boot(make_sqlbench_image(SqlBenchSettings(server="db")))
        vm.deliver_event(PacketDelivery(source="db", payload=b"{}", message_id="r1"))
        assert vm.guest.responses == 1

    def test_state_roundtrip(self):
        client = SqlBenchClientGuest(SqlBenchSettings(server="db"))
        client.next_query()
        other = SqlBenchClientGuest(SqlBenchSettings(server="db"))
        other.set_state(client.get_state())
        assert other.sequence == client.sequence
