"""Tests for the network substrate: envelopes, simulated network, reliable channel."""

import pytest

from repro.errors import ChannelError, DeliveryError
from repro.network.channel import ReliableChannel
from repro.network.message import MessageKind, NetworkMessage
from repro.network.simnet import LinkSpec, SimulatedNetwork
from repro.sim.scheduler import Scheduler


def make_network():
    scheduler = Scheduler()
    network = SimulatedNetwork(scheduler)
    return scheduler, network


class TestNetworkMessage:
    def test_message_ids_unique(self):
        a = NetworkMessage(source="a", destination="b", payload=b"x")
        b = NetworkMessage(source="a", destination="b", payload=b"x")
        assert a.message_id != b.message_id

    def test_payload_hash(self):
        message = NetworkMessage(source="a", destination="b", payload=b"x")
        assert len(message.payload_hash()) == 32

    def test_signed_payload_covers_fields(self):
        a = NetworkMessage(source="a", destination="b", payload=b"x", message_id="m")
        b = NetworkMessage(source="a", destination="c", payload=b"x", message_id="m")
        c = NetworkMessage(source="a", destination="b", payload=b"y", message_id="m")
        assert a.signed_payload() != b.signed_payload()
        assert a.signed_payload() != c.signed_payload()

    def test_wire_size_grows_with_signature_and_authenticator(self):
        bare = NetworkMessage(source="a", destination="b", payload=b"x" * 50)
        signed = NetworkMessage(source="a", destination="b", payload=b"x" * 50,
                                signature=b"s" * 96,
                                authenticator={"chain_hash": "00" * 32, "sequence": 3})
        assert signed.wire_size() > bare.wire_size()
        assert signed.wire_size(encapsulate_tcp=True) > signed.wire_size()

    def test_copy_for_forwarding(self):
        original = NetworkMessage(source="a", destination="b", payload=b"x",
                                  kind=MessageKind.CHALLENGE)
        forwarded = original.copy_for_forwarding("c")
        assert forwarded.destination == "c"
        assert forwarded.source == "a"
        assert forwarded.payload == original.payload
        assert forwarded.message_id != original.message_id


class TestSimulatedNetwork:
    def test_delivery_with_latency(self):
        scheduler, network = make_network()
        received = []
        network.register("bob", received.append)
        network.send(NetworkMessage(source="alice", destination="bob", payload=b"hi"))
        assert received == []  # not delivered synchronously
        scheduler.run_all()
        assert len(received) == 1
        assert scheduler.clock.now > 0

    def test_unknown_destination_raises(self):
        _, network = make_network()
        with pytest.raises(DeliveryError):
            network.send(NetworkMessage(source="a", destination="ghost", payload=b""))

    def test_partition_drops_messages(self):
        scheduler, network = make_network()
        received = []
        network.register("bob", received.append)
        network.partition("alice", "bob")
        assert network.send(NetworkMessage(source="alice", destination="bob",
                                           payload=b"x")) is False
        scheduler.run_all()
        assert received == []
        network.heal_partition("alice", "bob")
        assert network.send(NetworkMessage(source="alice", destination="bob",
                                           payload=b"x")) is True
        scheduler.run_all()
        assert len(received) == 1

    def test_lossy_link_drops_some(self):
        scheduler, network = make_network()
        received = []
        network.register("bob", received.append)
        network.set_link("alice", "bob", LinkSpec(loss_rate=1.0))
        assert not network.send(NetworkMessage(source="alice", destination="bob",
                                               payload=b"x"))
        scheduler.run_all()
        assert received == []

    def test_stats_accounting(self):
        scheduler, network = make_network()
        network.register("bob", lambda m: None)
        network.register("alice", lambda m: None)
        network.send(NetworkMessage(source="alice", destination="bob", payload=b"x" * 100))
        scheduler.run_all()
        alice = network.stats_for("alice")
        bob = network.stats_for("bob")
        assert alice.messages_sent == 1 and bob.messages_received == 1
        assert alice.bytes_sent > 100
        assert alice.sent_kbps(1.0) > 0

    def test_transmission_delay_depends_on_bandwidth(self):
        slow = LinkSpec(bandwidth_bps=1e6)
        fast = LinkSpec(bandwidth_bps=1e9)
        assert slow.transmission_delay(1000) > fast.transmission_delay(1000)

    def test_delivery_log(self):
        scheduler, network = make_network()
        network.register("bob", lambda m: None)
        network.send(NetworkMessage(source="alice", destination="bob", payload=b"x"))
        scheduler.run_all()
        assert len(network.deliveries) == 1
        time, message = network.deliveries[0]
        assert message.destination == "bob"

    def test_unregister_drops_in_flight(self):
        scheduler, network = make_network()
        received = []
        network.register("bob", received.append)
        network.send(NetworkMessage(source="alice", destination="bob", payload=b"x"))
        network.unregister("bob")
        scheduler.run_all()
        assert received == []


class TestReliableChannel:
    def test_retransmits_until_acknowledged(self):
        scheduler, network = make_network()
        received = []
        network.register("bob", received.append)
        channel = ReliableChannel(network, "alice", retransmit_interval=0.1,
                                  max_retransmits=3)
        network.register("alice", lambda m: None)
        message = NetworkMessage(source="alice", destination="bob", payload=b"x")
        channel.send(message)
        scheduler.run_until(0.25)
        assert len(received) >= 2  # original + at least one retransmission
        assert channel.retransmissions >= 1
        assert channel.acknowledge(message.message_id)
        count = len(received)
        scheduler.run_until(5.0)
        assert len(received) == count  # no more retransmissions after the ack

    def test_gives_up_after_max_retransmits(self):
        scheduler, network = make_network()
        gave_up = []
        network.register("bob", lambda m: None)
        channel = ReliableChannel(network, "alice", retransmit_interval=0.1,
                                  max_retransmits=2, on_give_up=gave_up.append)
        message = NetworkMessage(source="alice", destination="bob", payload=b"x")
        channel.send(message)
        scheduler.run_until(5.0)
        assert [m.message_id for m in gave_up] == [message.message_id]
        assert channel.gave_up_on == [message.message_id]
        assert channel.unacknowledged == []

    def test_ack_of_unknown_message(self):
        _, network = make_network()
        channel = ReliableChannel(network, "alice")
        assert channel.acknowledge("nope") is False

    def test_rejects_foreign_source(self):
        _, network = make_network()
        channel = ReliableChannel(network, "alice")
        with pytest.raises(ChannelError):
            channel.send(NetworkMessage(source="bob", destination="alice", payload=b""))

    def test_no_ack_expected_messages_not_tracked(self):
        scheduler, network = make_network()
        network.register("bob", lambda m: None)
        channel = ReliableChannel(network, "alice")
        channel.send(NetworkMessage(source="alice", destination="bob", payload=b"x"),
                     expect_ack=False)
        assert channel.unacknowledged == []
