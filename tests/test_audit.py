"""Tests for auditing: syntactic checks, full audits, evidence, spot checks,
online audits and the multi-party protocol.

These are integration-level tests that reuse the session fixtures from
``conftest.py`` (a short honest game and a short game with a cheater).
"""

import pytest

from repro.audit.evidence import Evidence
from repro.audit.multiparty import (
    ChallengeCoordinator,
    collect_authenticators_for,
    distribute_evidence,
)
from repro.audit.spot_check import SpotChecker
from repro.audit.syntactic import SyntacticChecker
from repro.audit.verdict import AuditPhase, Verdict
from repro.errors import EvidenceError
from repro.game.cheats.external import LogTamperingAdversary, PacketForgingAdversary, boost_fire_commands
from repro.log.entries import EntryType


class TestSyntacticCheck:
    def test_honest_log_passes(self, honest_session):
        checker = SyntacticChecker(honest_session.keystore)
        report = checker.check(honest_session.monitors["server"].get_log_segment())
        assert report.ok, report.problems
        assert report.entries_checked > 100
        assert report.signatures_verified > 0

    def test_detects_forged_sender_signature(self, honest_session):
        # Work on a *copy* of the segment so the shared session stays pristine.
        from dataclasses import replace
        from repro.log.segments import LogSegment
        segment = honest_session.monitors["player1"].get_log_segment()
        entries = list(segment.entries)
        index = next(i for i, e in enumerate(entries)
                     if e.entry_type is EntryType.RECV)
        tampered_content = dict(entries[index].content)
        tampered_content["sender_signature"] = "00" * 96
        entries[index] = replace(entries[index], content=tampered_content)
        tampered = LogSegment(machine=segment.machine, entries=entries,
                              start_hash=segment.start_hash)
        report = SyntacticChecker(honest_session.keystore).check(tampered)
        assert not report.ok
        assert any("signature" in problem for problem in report.problems)

    def test_detects_missing_recv_for_injected_packet(self, honest_session):
        from repro.log.segments import LogSegment
        segment = honest_session.monitors["player2"].get_log_segment()
        # Drop a RECV entry: the corresponding MAC-layer injection is orphaned.
        index = next(i for i, e in enumerate(segment.entries)
                     if e.entry_type is EntryType.RECV)
        entries = segment.entries[:index] + segment.entries[index + 1:]
        tampered = LogSegment(machine=segment.machine, entries=entries,
                              start_hash=segment.start_hash)
        report = SyntacticChecker(honest_session.keystore).check(tampered)
        assert not report.ok


class TestFullAudit:
    def test_honest_players_pass(self, honest_session):
        results = honest_session.audit_all()
        for player, result in results.items():
            assert result.verdict is Verdict.PASS, result.summary()
            assert result.authenticators_checked > 0
            assert result.cost.compressed_log_bytes > 0
            assert result.cost.semantic_seconds > 0

    def test_server_audit_passes(self, honest_session):
        result = honest_session.audit("server")
        assert result.verdict is Verdict.PASS

    def test_cheater_fails_replay(self, cheater_session):
        results = cheater_session.audit_all()
        assert results["player1"].verdict is Verdict.FAIL
        assert results["player1"].phase is AuditPhase.SEMANTIC_CHECK
        assert results["player1"].evidence is not None
        assert results["player2"].verdict is Verdict.PASS

    def test_evidence_verified_by_third_party(self, cheater_session):
        result = cheater_session.audit("player1")
        evidence = result.evidence
        # A third party (the server operator) verifies with its own keystore
        # and its own copy of the reference image.
        confirmed = evidence.verify(cheater_session.keystore,
                                    cheater_session.reference_images["player1"])
        assert confirmed

    def test_evidence_about_honest_player_rejected(self, honest_session):
        # Fabricated evidence that merely *claims* a fault does not verify:
        # the log replays cleanly against the reference image.
        target = "player1"
        auditor = honest_session.make_auditor("player2", target)
        segment = honest_session.monitors[target].get_log_segment()
        fabricated = Evidence(
            machine=target, accuser="player2", reason="made up",
            segment=segment,
            authenticators=auditor.authenticators_for(target),
            reference_image_hash=honest_session.reference_images[target].image_hash())
        assert not fabricated.verify(honest_session.keystore,
                                     honest_session.reference_images[target])

    def test_evidence_with_wrong_image_rejected(self, cheater_session):
        result = cheater_session.audit("player1")
        with pytest.raises(EvidenceError):
            result.evidence.verify(cheater_session.keystore,
                                   cheater_session.reference_images["player2"])

    @pytest.mark.slow
    def test_log_tampering_caught_by_authenticator_check(self):
        # A dedicated (mutable) session: Bob rewrites his own log after the fact.
        from repro.avmm.config import Configuration
        from repro.experiments.harness import GameSession, GameSessionSettings
        session = GameSession(GameSessionSettings(
            configuration=Configuration.AVMM_RSA768, num_players=2,
            duration=4.0, seed=31, snapshot_interval=None))
        session.run()
        target = "player1"
        monitor = session.monitors[target]
        adversary = LogTamperingAdversary(monitor)
        victim_entry = monitor.log.entries_of_type(EntryType.SEND)[0]
        adversary.rewrite_entry(victim_entry.sequence,
                                {**victim_entry.content, "payload_size": 9999},
                                recompute_chain=True)
        result = session.audit(target)
        assert result.verdict is Verdict.FAIL
        assert result.phase is AuditPhase.AUTHENTICATOR_CHECK
        assert result.evidence.verify(session.keystore,
                                      session.reference_images[target])

    def test_suspect_unresponsive_machine(self, honest_session):
        auditor = honest_session.make_auditor("player1", "player2")
        result = auditor.suspect("player2")
        assert result.verdict is Verdict.SUSPECTED
        assert result.evidence.unanswered_challenge
        assert result.evidence.verify(honest_session.keystore,
                                      honest_session.reference_images["player2"])


class TestSpotChecking:
    def test_chunk_audits_pass_for_honest_machine(self, honest_session):
        target = "server"
        auditor = honest_session.make_auditor("player1", target)
        checker = SpotChecker(auditor)
        segments = honest_session.monitors[target].get_snapshot_segments()
        assert len(segments) >= 2
        result = checker.check_chunk(honest_session.monitors[target], 1, 1,
                                     segments=segments)
        assert result.ok
        assert result.snapshot_bytes > 0  # memory + disk snapshot transferred

    def test_chunk_starting_at_log_beginning_needs_no_snapshot(self, honest_session):
        target = "server"
        checker = SpotChecker(honest_session.make_auditor("player1", target))
        result = checker.check_chunk(honest_session.monitors[target], 0, 1)
        assert result.ok
        assert result.snapshot_bytes == 0

    def test_bigger_chunks_cost_more(self, honest_session):
        target = "server"
        checker = SpotChecker(honest_session.make_auditor("player1", target))
        segments = honest_session.monitors[target].get_snapshot_segments()
        small = checker.check_chunk(honest_session.monitors[target], 0, 1,
                                    segments=segments)
        large = checker.check_chunk(honest_session.monitors[target], 0, len(segments),
                                    segments=segments)
        assert large.log_bytes > small.log_bytes
        assert large.replay_seconds >= small.replay_seconds

    def test_out_of_range_chunk_rejected(self, honest_session):
        target = "server"
        checker = SpotChecker(honest_session.make_auditor("player1", target))
        from repro.errors import SegmentError
        with pytest.raises(SegmentError):
            checker.check_chunk(honest_session.monitors[target], 0, 999)


class TestMultiParty:
    def test_collect_authenticators_from_peers(self, honest_session):
        holders = [honest_session.monitors[i] for i in honest_session.identities
                   if i != "player1"]
        collected = collect_authenticators_for("player1", holders)
        assert collected
        assert all(auth.machine == "player1" for auth in collected)

    def test_challenge_blocks_until_answered(self):
        coordinator = ChallengeCoordinator()
        challenge = coordinator.issue("alice", "bob", "produce log segment 1..100")
        assert coordinator.is_blocked("bob")
        assert not coordinator.is_blocked("charlie")
        answered = coordinator.respond("bob", "here is the segment")
        assert challenge in answered
        assert not coordinator.is_blocked("bob")
        assert challenge.response == "here is the segment"

    def test_evidence_distribution(self, cheater_session):
        result = cheater_session.audit("player1")
        verifiers = [("player2", cheater_session.keystore),
                     ("server", cheater_session.keystore)]
        verdicts = distribute_evidence(result.evidence, verifiers,
                                       cheater_session.reference_images["player1"])
        assert verdicts == {"player2": True, "server": True}


class TestExternalAdversaries:
    @pytest.mark.slow
    def test_packet_forging_detected_even_without_image_modification(self):
        # Class-2 detection: the guest image is the reference image, but the
        # machine's outgoing packets are rewritten outside the AVM.
        from repro.avmm.config import Configuration
        from repro.experiments.harness import GameSession, GameSessionSettings
        settings = GameSessionSettings(configuration=Configuration.AVMM_RSA768,
                                       num_players=2, duration=5.0, seed=21,
                                       snapshot_interval=None)
        session = GameSession(settings)
        adversary = PacketForgingAdversary(session.monitors["player1"],
                                           boost_fire_commands)
        session.run()
        assert adversary.packets_forged > 0
        result = session.audit("player1")
        assert result.verdict is Verdict.FAIL
        assert session.audit("player2").verdict is Verdict.PASS
