"""Web-service workload, upstream-call nondeterminism, and the webload audit.

Covers the three layers the webservice tentpole added:

* the guest itself — routing, the TTL response cache (hits skip handler and
  upstream work), eviction, state round-trips;
* the upstream-call nondeterminism channel — recorded on the live path,
  re-served by replay, and checked for timing / question / count mismatches;
* the end-to-end differential — the honest open-loop run passes the
  streaming audit under accountability on and off with identical responses,
  while the stale-cache cheat image is convicted with evidence an
  independent third party can verify.
"""

import json

import pytest

from repro.adversary.guests import (CheatingWebServiceGuest,
                                    make_cheating_webservice_image)
from repro.avmm.replayer import _ReplayClockSource, _UpstreamItem
from repro.crypto import hashing
from repro.errors import VMError
from repro.vm.execution import ExecutionTimestamp
from repro.experiments.webload import LoadModel, run_webload
from repro.vm.events import KeyboardInput, PacketDelivery, TimerInterrupt
from repro.vm.machine import (FixedNondeterminismSource,
                              LiveNondeterminismSource, UpstreamResponse,
                              VirtualMachine)
from repro.workloads.webservice import (SimulatedUpstreamBackend,
                                        WebClientGuest, WebServiceGuest,
                                        WebServiceSettings,
                                        make_webclient_image,
                                        make_webservice_image)


def boot(image, upstream_responses=None, clock_values=None):
    vm = VirtualMachine(image, nondet_source=FixedNondeterminismSource(
        values=clock_values, default=(clock_values or [1.0])[-1],
        upstream_responses=upstream_responses))
    vm.start()
    return vm


def request(vm, request_id, method, path, source="web-client"):
    payload = json.dumps({"id": request_id, "method": method,
                          "path": path}).encode()
    outputs = vm.deliver_event(PacketDelivery(source=source, payload=payload,
                                              message_id=f"m-{request_id}"))
    packets = [o for o in outputs if hasattr(o, "payload")]
    return json.loads(packets[0].payload.decode())


class TestWebServiceGuest:
    def test_routes_and_statuses(self):
        vm = boot(make_webservice_image(), upstream_responses=[
            UpstreamResponse(body=b"catalog-1"),
            UpstreamResponse(body=b"pay-ok"),
        ])
        item = request(vm, "r1", "GET", "/api/item/42")
        assert (item["status"], item["cache"]) == (200, "miss")
        assert json.loads(item["body"])["item"] == "42"
        order = request(vm, "r2", "POST", "/api/order")
        assert (order["status"], order["cache"]) == (201, "bypass")
        health = request(vm, "r3", "GET", "/api/health")
        assert (health["status"], health["cache"]) == (200, "bypass")
        missing = request(vm, "r4", "GET", "/nope")
        assert missing["status"] == 404

    def test_cache_hit_skips_handler_and_upstream(self):
        # One scripted upstream response: the second request must not ask
        # for another, and must cost fewer cycles than the miss did.
        vm = boot(make_webservice_image(),
                  upstream_responses=[UpstreamResponse(body=b"catalog-7")])
        miss = request(vm, "r1", "GET", "/api/item/7")
        before = vm.execution_timestamp.instruction_count
        hit = request(vm, "r2", "GET", "/api/item/7")
        hit_cost = vm.execution_timestamp.instruction_count - before
        assert (miss["cache"], hit["cache"]) == ("miss", "hit")
        assert miss["body"] == hit["body"]
        assert vm.guest.cache_hits == 1
        # FixedNondeterminismSource would have served an empty body had the
        # guest asked upstream again.
        assert json.loads(hit["body"])["catalog"] == "catalog-7"
        assert hit_cost < vm.guest.settings.handler_cycles

    def test_expired_entry_misses_again(self):
        settings = WebServiceSettings(cache_ttl=0.5)
        vm = boot(make_webservice_image(settings),
                  upstream_responses=[UpstreamResponse(body=b"v1"),
                                      UpstreamResponse(body=b"v2")],
                  clock_values=[1.0, 9.0])
        first = request(vm, "r1", "GET", "/api/item/1")
        second = request(vm, "r2", "GET", "/api/item/1")
        assert second["cache"] == "miss"
        assert first["body"] != second["body"]

    def test_cheating_guest_serves_stale(self):
        settings = WebServiceSettings(cache_ttl=0.5)
        vm = boot(make_cheating_webservice_image(settings),
                  upstream_responses=[UpstreamResponse(body=b"v1")],
                  clock_values=[1.0, 9.0])
        first = request(vm, "r1", "GET", "/api/item/1")
        stale = request(vm, "r2", "GET", "/api/item/1")  # honest would miss
        assert isinstance(vm.guest, CheatingWebServiceGuest)
        assert stale["cache"] == "hit"
        assert stale["body"] == first["body"]

    def test_eviction_keeps_capacity(self):
        settings = WebServiceSettings(cache_capacity=3)
        vm = boot(make_webservice_image(settings), upstream_responses=[
            UpstreamResponse(body=f"v{i}".encode()) for i in range(5)])
        for i in range(5):
            request(vm, f"r{i}", "GET", f"/api/item/{i}")
        assert len(vm.guest.cache) == 3

    def test_purge_tick_drops_expired_entries(self):
        settings = WebServiceSettings(cache_ttl=0.5)
        vm = boot(make_webservice_image(settings),
                  upstream_responses=[UpstreamResponse(body=b"v1")],
                  clock_values=[1.0, 9.0])
        request(vm, "r1", "GET", "/api/item/1")
        assert len(vm.guest.cache) == 1
        vm.deliver_event(TimerInterrupt(tick_number=1))
        assert len(vm.guest.cache) == 0

    def test_state_roundtrip(self):
        vm = boot(make_webservice_image(), upstream_responses=[
            UpstreamResponse(body=b"c"), UpstreamResponse(body=b"p")])
        request(vm, "r1", "GET", "/api/item/5")
        request(vm, "r2", "POST", "/api/order")
        state = vm.guest.get_state()
        other = WebServiceGuest()
        other.set_state(state)
        assert other.get_state() == state
        assert other.requests == 2 and len(other.orders) == 1

    def test_client_forwards_and_counts(self):
        guest = WebClientGuest("web-server")
        vm = boot(make_webclient_image("web-server"))
        outputs = vm.deliver_event(KeyboardInput(
            command='{"id":"r1","method":"GET","path":"/api/health"}'))
        packets = [o for o in outputs if hasattr(o, "payload")]
        assert packets[0].destination == "web-server"
        vm.deliver_event(PacketDelivery(source="web-server", payload=b"{}",
                                        message_id="m9"))
        assert vm.guest.requests_sent == 1
        assert vm.guest.responses_received == 1
        state = vm.guest.get_state()
        guest.set_state(state)
        assert guest.get_state() == state


class TestUpstreamChannel:
    def test_backend_is_seed_deterministic(self):
        a = SimulatedUpstreamBackend(seed=9)
        b = SimulatedUpstreamBackend(seed=9)
        responses_a = [a("catalog", b"/api/item/1") for _ in range(5)]
        responses_b = [b("catalog", b"/api/item/1") for _ in range(5)]
        assert responses_a == responses_b
        assert len({r.body for r in responses_a}) == 5  # unique tokens

    def test_live_source_requires_backend(self):
        source = LiveNondeterminismSource(lambda: 0.0)
        vm = VirtualMachine(make_webservice_image(), nondet_source=source)
        vm.start()
        with pytest.raises(VMError, match="no upstream backend"):
            request(vm, "r1", "GET", "/api/item/1")

    def test_fixed_source_serves_in_order_then_empty(self):
        source = FixedNondeterminismSource(upstream_responses=[
            UpstreamResponse(body=b"one"), UpstreamResponse(body=b"two")])
        stamp = ExecutionTimestamp(0, 0)
        assert source.upstream_call(stamp, "s", b"q").body == b"one"
        assert source.upstream_call(stamp, "s", b"q").body == b"two"
        assert source.upstream_call(stamp, "s", b"q").body == b""

    def _item(self, **overrides):
        fields = dict(sequence=3, expected_instructions=100,
                      service="catalog",
                      request_hash=hashing.hash_bytes(b"/api/item/1").hex(),
                      body=b"v1", latency_cycles=7)
        fields.update(overrides)
        return _UpstreamItem(**fields)

    def _stamp(self, instructions):
        return ExecutionTimestamp(instructions, 0)

    def test_replay_source_serves_recorded_response(self):
        source = _ReplayClockSource([], [self._item()])
        response = source.upstream_call(self._stamp(100), "catalog",
                                        b"/api/item/1")
        assert response == UpstreamResponse(body=b"v1", latency_cycles=7)
        assert source.divergence is None
        assert source.upstream_remaining == 0

    def test_replay_source_flags_wrong_execution_point(self):
        source = _ReplayClockSource([], [self._item()])
        source.upstream_call(self._stamp(101), "catalog", b"/api/item/1")
        assert "different execution point" in source.divergence.reason

    def test_replay_source_flags_different_question(self):
        source = _ReplayClockSource([], [self._item()])
        source.upstream_call(self._stamp(100), "catalog", b"/api/item/2")
        assert "differs from the recorded" in source.divergence.reason

    def test_replay_source_flags_unlogged_call(self):
        source = _ReplayClockSource([], [])
        response = source.upstream_call(self._stamp(100), "catalog", b"q")
        assert response.body == b""
        assert "not in the log" in source.divergence.reason


class TestWebloadDifferential:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        model = LoadModel(users=60, seed=11, arrival_rate=400.0)
        return run_webload(model,
                           root=str(tmp_path_factory.mktemp("webload")))

    def test_honest_on_off_structurally_identical(self, result):
        assert result.statuses_identical
        bare = result.point("bare-hw")
        avmm = result.point("avmm-rsa768")
        assert bare.responses_received == avmm.responses_received \
            == result.total_requests

    def test_accountability_costs_latency_not_responses(self, result):
        bare = result.point("bare-hw")
        avmm = result.point("avmm-rsa768")
        assert avmm.rtt.p50 > bare.rtt.p50
        for rtt in (bare.rtt, avmm.rtt):
            assert rtt.p50 <= rtt.p95 <= rtt.p99 <= rtt.p999

    def test_honest_run_passes_streaming_audit(self, result):
        assert result.honest_pass
        assert {o.machine for o in result.honest_audits} == \
            {"web-server", "web-client"}
        assert all(o.fallback_reason is None for o in result.honest_audits)

    def test_cheat_detected_with_verified_evidence(self, result):
        assert result.cheat_detected
        server = next(o for o in result.cheat_audits
                      if o.machine == "web-server")
        assert server.verdict == "fail"
        assert server.evidence_verified is True

    def test_zero_false_accusations(self, result):
        assert result.false_accusations == 0
