"""Tests for Merkle hash trees, including property-based inclusion proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import MerkleTree, verify_partial_state
from repro.errors import SnapshotError


class TestMerkleTree:
    def test_empty_rejected(self):
        with pytest.raises(SnapshotError):
            MerkleTree([])

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree([b"only"])
        assert tree.root == tree.leaf_hash(0)

    def test_root_deterministic(self):
        leaves = [b"a", b"b", b"c"]
        assert MerkleTree(leaves).root == MerkleTree(leaves).root

    def test_root_depends_on_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_root_depends_on_length(self):
        assert MerkleTree([b"a"]).root != MerkleTree([b"a", b"a"]).root

    def test_proof_verifies(self):
        leaves = [bytes([i]) * 10 for i in range(7)]
        tree = MerkleTree(leaves)
        for i in range(len(leaves)):
            assert tree.proof(i).verify(tree.root)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        other = MerkleTree([b"a", b"b", b"d"])
        assert not tree.proof(0).verify(other.root)

    def test_proof_index_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(SnapshotError):
            tree.proof(1)

    def test_root_of_helper(self):
        assert MerkleTree.root_of([b"a", b"b"]) == MerkleTree([b"a", b"b"]).root

    def test_partial_state_verification(self):
        pages = [bytes([i]) * 4 for i in range(5)]
        tree = MerkleTree(pages)
        subset = {1: pages[1], 3: pages[3]}
        proofs = {1: tree.proof(1), 3: tree.proof(3)}
        assert verify_partial_state(tree.root, subset, proofs)

    def test_partial_state_detects_modified_page(self):
        pages = [bytes([i]) * 4 for i in range(5)]
        tree = MerkleTree(pages)
        subset = {1: b"XXXX"}
        proofs = {1: tree.proof(1)}
        assert not verify_partial_state(tree.root, subset, proofs)

    def test_partial_state_requires_proofs(self):
        pages = [b"a", b"b"]
        tree = MerkleTree(pages)
        assert not verify_partial_state(tree.root, {0: pages[0]}, {})


class TestMerkleProperties:
    @given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=40),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_every_proof_verifies(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        assert tree.proof(index).verify(tree.root)

    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=20),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_modified_leaf_changes_root(self, leaves, data):
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        original = MerkleTree(leaves).root
        mutated = list(leaves)
        mutated[index] = mutated[index] + b"\x00tampered"
        assert MerkleTree(mutated).root != original

    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_size_matches_leaf_count(self, leaves):
        assert MerkleTree(leaves).size == len(leaves)
