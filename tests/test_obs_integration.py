"""Integration tests: telemetry threaded through the whole pipeline.

Four contracts, end to end:

* ``AuditResult.wall_seconds`` is populated by every audit front-end
  (serial, streaming, spot-check, engine) through the one shared obs
  timer, and never participates in structural equality;
* the ingest service counts quarantines exactly once (single chokepoint)
  and tracks queue depth, proven against a lying shipper;
* **determinism** — audit outcomes are structurally identical with
  telemetry off, on, and sampled at any stride, across the adversary
  matrix's archive mode;
* the disabled fast path is genuinely free: a streaming audit under
  ``NULL_OBS`` makes no per-entry allocations in the obs layer, and an
  observed fleet run exports a valid Chrome trace covering
  monitor -> shipper -> ingest -> audit.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import tracemalloc

import pytest

import repro.obs
from repro.adversary.catalog import make_adversary
from repro.adversary.matrix import CellSpec, MatrixReport, ScenarioMatrix
from repro.audit.auditor import Auditor
from repro.audit.engine import AuditScheduler
from repro.audit.spot_check import SpotChecker
from repro.audit.stream import stream_audit
from repro.experiments import adversary_matrix
from repro.experiments import stream_audit as stream_audit_experiment
from repro.experiments.observability import run_observed_fleet
from repro.experiments.parallel_audit import build_fleet
from repro.obs import Observability
from repro.service.ingest import AuditIngestService
from repro.store.archive import LogArchive


@pytest.fixture(scope="module")
def archived_fleet(tmp_path_factory):
    """A small archived fleet recorded with telemetry OFF (the default)."""
    root = tmp_path_factory.mktemp("obs-fleet") / "archive"
    fleet = build_fleet(num_machines=4, duration=6.0, seed=11,
                        snapshot_interval=2.0, archive=LogArchive(root))
    return fleet, root


def _prepared(fleet, service, machine, obs=None):
    if obs is None:
        auditor = fleet.make_auditor(machine, collect=False)
    else:
        auditor = Auditor("auditor", fleet.keystore,
                          fleet.reference_images[machine], obs=obs)
    service.prepare_auditor(auditor, machine)
    return auditor


# ---------------------------------------------------------------------------
# Satellite 1: wall_seconds on every front-end, excluded from equality
# ---------------------------------------------------------------------------

class TestWallSeconds:
    def test_serial_audit_populates_wall_seconds(self, archived_fleet):
        fleet, _ = archived_fleet
        machine = fleet.machines[0]
        result = fleet.make_auditor(machine).audit(fleet.monitors[machine])
        assert result.ok
        assert result.wall_seconds > 0.0

    def test_streaming_audit_populates_wall_seconds(self, archived_fleet):
        fleet, root = archived_fleet
        service = AuditIngestService(LogArchive(root))
        machine = fleet.machines[0]
        report = stream_audit(_prepared(fleet, service, machine),
                              service.target_for(machine))
        assert report.result.ok
        assert report.result.wall_seconds > 0.0

    def test_engine_fleet_audit_populates_wall_seconds(self, archived_fleet):
        fleet, _ = archived_fleet
        engine = AuditScheduler(workers=2, executor="thread")
        report = engine.audit_fleet(fleet.assignments())
        assert len(report.results) == len(fleet.machines)
        for result in report.results.values():
            assert result.wall_seconds > 0.0

    def test_spot_check_populates_wall_seconds(self, archived_fleet):
        fleet, _ = archived_fleet
        machine = fleet.machines[0]
        checker = SpotChecker(fleet.make_auditor(machine))
        chunks = checker.check_all_chunks(fleet.monitors[machine], k=1)
        assert chunks
        for chunk in chunks:
            assert chunk.result.wall_seconds > 0.0

    def test_wall_seconds_never_breaks_equality(self, archived_fleet):
        fleet, _ = archived_fleet
        machine = fleet.machines[0]
        result = fleet.make_auditor(machine).audit(fleet.monitors[machine])
        relabeled = dataclasses.replace(result, wall_seconds=12345.0)
        assert relabeled == result


# ---------------------------------------------------------------------------
# Satellite 2: quarantine counted exactly once, queue depth tracked
# ---------------------------------------------------------------------------

class TestIngestMetrics:
    def test_lying_shipper_quarantines_counted_exactly_once(self):
        obs = Observability.make()
        matrix = ScenarioMatrix(duration=3.0, snapshot_interval=1.0, obs=obs)
        name = "lying-shipper-segments"
        adversary = make_adversary(name, seed=4321)
        assert "archive" in adversary.modes
        spec = CellSpec(name, "kv", "archive", 2, 4321)
        with tempfile.TemporaryDirectory(prefix="obs-lying-") as tmp:
            ctx, run = matrix._build(spec, adversary, tmp)
            adversary.install(ctx)
            run()
            matrix._drain_archive(ctx)
            adversary.corrupt(ctx)
            assert ctx.ingest is not None
            quarantined = sum(len(ctx.ingest.quarantine_for(machine))
                              for machine in ctx.monitors)
        assert quarantined > 0
        # _record_quarantine is the single chokepoint: the counter equals
        # the number of quarantined shipments, each counted exactly once.
        assert obs.metrics.value("ingest.quarantined_total") == quarantined
        assert obs.metrics.value("ingest.messages_total") > 0

    def test_queue_depth_gauge_rises_and_drains(self, archived_fleet):
        _, root = archived_fleet
        obs = Observability.make()
        service = AuditIngestService(LogArchive(root), obs=obs)
        # Re-decoding the archive does not touch the live queue; exercise
        # the gauge through the ingest bookkeeping instead.
        gauge = obs.metrics.gauge("ingest.queue_depth")
        assert gauge.value == 0
        service._pending["m1"] = 3
        service._update_queue_depth()
        assert gauge.value == 3
        assert gauge.high_water == 3
        service._pending.clear()
        service._update_queue_depth()
        assert gauge.value == 0
        assert gauge.high_water == 3


# ---------------------------------------------------------------------------
# The determinism invariant: off == on == sampled
# ---------------------------------------------------------------------------

class TestTelemetryDifferential:
    ADVERSARIES = ("honest", "cheating-guest", "lying-shipper-segments")

    @pytest.mark.parametrize("adversary_name", ADVERSARIES)
    def test_archive_cells_identical_at_any_sampling(self, adversary_name):
        adversary = make_adversary(adversary_name)
        if "archive" not in adversary.modes:
            pytest.skip(f"{adversary_name} not observable in archive mode")
        spec = CellSpec(adversary_name, "kv", "archive", 2, 2024)
        outcomes = {}
        for label, obs in (("off", None),
                           ("on", Observability.make()),
                           ("sampled", Observability.make(sample_stride=7))):
            # Message ids are allocated per network instance, so every run
            # records byte-identical logs without any global reset.
            matrix = ScenarioMatrix(duration=3.0, snapshot_interval=1.0,
                                    obs=obs)
            outcomes[label] = matrix.run_cell(spec).to_dict()
        assert outcomes["on"] == outcomes["off"]
        assert outcomes["sampled"] == outcomes["off"]

    def test_same_archive_audits_identically_with_telemetry(
            self, archived_fleet):
        fleet, root = archived_fleet
        service = AuditIngestService(LogArchive(root))
        for machine in fleet.machines:
            baseline = stream_audit(_prepared(fleet, service, machine),
                                    service.target_for(machine)).result
            obs = Observability.make()
            observed_service = AuditIngestService(LogArchive(root), obs=obs)
            observed = stream_audit(
                _prepared(fleet, observed_service, machine, obs=obs),
                observed_service.target_for(machine)).result
            assert observed == baseline, \
                f"telemetry changed the audit of {machine}"
            assert obs.metrics.value("audit.chunks_total") > 0


# ---------------------------------------------------------------------------
# Satellite 4: the disabled fast path allocates nothing per entry
# ---------------------------------------------------------------------------

class TestDisabledFastPath:
    def test_null_obs_stream_audit_makes_no_obs_allocations(
            self, archived_fleet):
        fleet, root = archived_fleet
        service = AuditIngestService(LogArchive(root))
        machine = fleet.machines[0]
        target = service.target_for(machine)
        # Warm up imports and caches outside the traced window.
        stream_audit(_prepared(fleet, service, machine), target)

        obs_dir = os.path.dirname(repro.obs.__file__)
        tracemalloc.start(10)
        report = stream_audit(_prepared(fleet, service, machine), target)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()

        assert report.result.ok
        assert report.stats.entries > 100  # a real, multi-entry audit
        stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, os.path.join(obs_dir, "*"))]
        ).statistics("filename")
        obs_bytes = sum(stat.size for stat in stats)
        # The whole obs layer may allocate only O(1) wall timers — nothing
        # proportional to the hundreds of entries streamed.
        assert obs_bytes < 4096, \
            f"disabled telemetry allocated {obs_bytes} B in repro.obs"


# ---------------------------------------------------------------------------
# The observed fleet: trace export covers every pipeline layer
# ---------------------------------------------------------------------------

class TestObservedFleet:
    def test_trace_covers_all_layers_and_validates(self, tmp_path):
        result = run_observed_fleet(num_machines=2, duration=4.0,
                                    payload_bytes=800,
                                    trace_path=str(tmp_path / "trace.json"),
                                    root=str(tmp_path))
        assert result.all_passed, result.verdicts
        assert result.all_layers_covered, result.layer_coverage
        assert result.trace_valid, result.trace_errors[:5]
        assert result.spans_recorded > 0
        metrics = result.metrics
        assert metrics["monitor.log_entries_total"] > 0
        assert metrics["monitor.segments_shipped_total"] > 0
        assert metrics["ingest.segments_ingested_total"] > 0
        assert metrics["archive.segments_written_total"] > 0
        assert metrics["audit.chunks_total"] > 0
        assert result.peak_rss_bytes > 0


# ---------------------------------------------------------------------------
# Satellite 3: --json output modes
# ---------------------------------------------------------------------------

class TestJsonOutput:
    def test_stream_audit_json_mode(self, capsys):
        result = stream_audit_experiment.main(
            argv=["--duration", "4.0", "--payload-bytes", "1000", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True
        assert payload["entries"] == result.entries
        assert {"peak_ratio", "data_peak_ratio",
                "throughput_ratio"} <= payload.keys()

    def test_adversary_matrix_json_mode(self, capsys, monkeypatch):
        report = MatrixReport()
        monkeypatch.setattr(adversary_matrix, "run_matrix",
                            lambda **kwargs: report)
        adversary_matrix.main(["--json", "--smoke"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == []
        assert payload["ok"] is True
        assert payload["smoke"] is True

    def test_matrix_report_to_dict_round_trips(self):
        matrix = ScenarioMatrix(duration=2.0, snapshot_interval=1.0)
        outcome = matrix.run_cell(CellSpec("honest", "kv", "full", 2, 77))
        payload = MatrixReport(cells=[outcome]).to_dict()
        json.dumps(payload)  # JSON-ready
        (cell,) = payload["cells"]
        assert cell["adversary"] == "honest"
        assert cell["expectation_met"] is True
        assert payload["ok"] is True
