"""Tests for the discrete-event simulation kernel (clock, scheduler, process, rng)."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import HostClock, SimClock
from repro.sim.process import Process, ProcessState
from repro.sim.rng import RngRegistry, RngStream
from repro.sim.scheduler import Scheduler


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_by(self):
        clock = SimClock(1.0)
        clock.advance_by(0.5)
        assert clock.now == 1.5

    def test_cannot_go_backwards(self):
        clock = SimClock(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_cannot_advance_by_negative(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-0.1)


class TestHostClock:
    def test_reads_apply_offset_and_drift(self):
        sim = SimClock(10.0)
        host = HostClock(sim, offset=1.0, drift=0.1)
        assert host.read() == pytest.approx(1.0 + 11.0)

    def test_read_counter(self):
        host = HostClock(SimClock())
        host.read()
        host.read()
        assert host.reads == 2


class TestScheduler:
    def test_events_run_in_time_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.schedule_at(2.0, lambda: order.append("b"))
        scheduler.schedule_at(1.0, lambda: order.append("a"))
        scheduler.run_all()
        assert order == ["a", "b"]

    def test_ties_broken_by_insertion_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.schedule_at(1.0, lambda: order.append("first"))
        scheduler.schedule_at(1.0, lambda: order.append("second"))
        scheduler.run_all()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(4.0, lambda: seen.append(scheduler.clock.now))
        scheduler.run_all()
        assert seen == [4.0]

    def test_schedule_after(self):
        scheduler = Scheduler()
        scheduler.clock.advance_to(10.0)
        event = scheduler.schedule_after(5.0, lambda: None)
        assert event.time == 15.0

    def test_cannot_schedule_in_the_past(self):
        scheduler = Scheduler()
        scheduler.clock.advance_to(5.0)
        with pytest.raises(SchedulingError):
            scheduler.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Scheduler().schedule_after(-1.0, lambda: None)

    def test_cancelled_event_does_not_run(self):
        scheduler = Scheduler()
        ran = []
        event = scheduler.schedule_at(1.0, lambda: ran.append(1))
        event.cancel()
        scheduler.run_all()
        assert ran == []

    def test_run_until_stops_at_horizon(self):
        scheduler = Scheduler()
        ran = []
        scheduler.schedule_at(1.0, lambda: ran.append(1))
        scheduler.schedule_at(10.0, lambda: ran.append(2))
        executed = scheduler.run_until(5.0)
        assert executed == 1
        assert ran == [1]
        assert scheduler.clock.now == 5.0
        assert scheduler.pending == 1

    def test_run_until_advances_clock_even_without_events(self):
        scheduler = Scheduler()
        scheduler.run_until(7.0)
        assert scheduler.clock.now == 7.0

    def test_events_scheduled_during_run(self):
        scheduler = Scheduler()
        order = []

        def first():
            order.append("first")
            scheduler.schedule_after(1.0, lambda: order.append("nested"))

        scheduler.schedule_at(1.0, first)
        scheduler.run_all()
        assert order == ["first", "nested"]

    def test_events_run_counter(self):
        scheduler = Scheduler()
        for i in range(5):
            scheduler.schedule_at(float(i), lambda: None)
        scheduler.run_all()
        assert scheduler.events_run == 5

    def test_run_all_detects_runaway(self):
        scheduler = Scheduler()

        def reschedule():
            scheduler.schedule_after(0.1, reschedule)

        scheduler.schedule_at(0.0, reschedule)
        with pytest.raises(SchedulingError):
            scheduler.run_all(max_events=50)

    def test_peek_time_skips_cancelled(self):
        scheduler = Scheduler()
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        event.cancel()
        assert scheduler.peek_time() == 2.0


class TestProcess:
    def test_periodic_ticks(self):
        scheduler = Scheduler()
        ticks = []
        process = Process(scheduler, period=1.0, on_tick=lambda: ticks.append(scheduler.clock.now))
        process.start(delay=1.0)
        scheduler.run_until(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_cancels_future_ticks(self):
        scheduler = Scheduler()
        ticks = []
        process = Process(scheduler, period=1.0, on_tick=lambda: ticks.append(1))
        process.start(delay=1.0)
        scheduler.run_until(2.5)
        process.stop()
        scheduler.run_until(10.0)
        assert len(ticks) == 2
        assert process.state is ProcessState.STOPPED

    def test_double_start_rejected(self):
        process = Process(Scheduler(), period=1.0)
        process.start()
        with pytest.raises(SimulationError):
            process.start()

    def test_non_positive_period_rejected(self):
        with pytest.raises(SimulationError):
            Process(Scheduler(), period=0.0)

    def test_tick_counter(self):
        scheduler = Scheduler()
        process = Process(scheduler, period=0.5, on_tick=lambda: None)
        process.start(delay=0.0)
        scheduler.run_until(2.0)
        assert process.ticks == 5  # t = 0, 0.5, 1.0, 1.5, 2.0

    def test_process_can_stop_itself(self):
        scheduler = Scheduler()
        seen = []

        process = Process(scheduler, period=1.0)
        def tick():
            seen.append(1)
            if len(seen) == 3:
                process.stop()
        process._on_tick = tick
        process.start(delay=1.0)
        scheduler.run_until(20.0)
        assert len(seen) == 3


class TestRng:
    def test_same_seed_same_sequence(self):
        a = RngStream(seed=7)
        b = RngStream(seed=7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_registry_streams_are_stable(self):
        reg1 = RngRegistry(seed=3)
        reg2 = RngRegistry(seed=3)
        assert reg1.stream("x").random() == reg2.stream("x").random()

    def test_registry_streams_are_independent(self):
        reg = RngRegistry(seed=3)
        a = [reg.stream("a").random() for _ in range(3)]
        b = [reg.stream("b").random() for _ in range(3)]
        assert a != b

    def test_stream_returned_is_cached(self):
        reg = RngRegistry(seed=0)
        assert reg.stream("x") is reg.stream("x")
        assert "x" in reg

    def test_fork_derives_new_stream(self):
        parent = RngStream(seed=1, name="parent")
        child1 = parent.fork("c")
        child2 = parent.fork("c")
        assert child1.seed == child2.seed
        assert child1.seed != parent.seed

    def test_uniform_respects_bounds(self):
        stream = RngStream(seed=2)
        for _ in range(100):
            value = stream.uniform(3.0, 4.0)
            assert 3.0 <= value < 4.0

    def test_randint_respects_bounds(self):
        stream = RngStream(seed=2)
        values = {stream.randint(1, 3) for _ in range(100)}
        assert values <= {1, 2, 3}

    def test_choice_and_shuffle_deterministic(self):
        a, b = RngStream(seed=9), RngStream(seed=9)
        items_a, items_b = list(range(10)), list(range(10))
        a.shuffle(items_a)
        b.shuffle(items_b)
        assert items_a == items_b
        assert a.choice([1, 2, 3]) == b.choice([1, 2, 3])
