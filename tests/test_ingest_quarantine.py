"""Quarantine-path coverage for the audit-ingest service, adversary-driven.

The lying shippers from the adversary catalog exercise the ingest service's
door checks over the real network path; these tests additionally pin down
the persistence guarantee: quarantine records survive a service restart and
an archive recovery, so a crash between ingest and audit cannot launder a
rejected shipment.
"""

import pytest

from repro.adversary.catalog import make_adversary
from repro.adversary.matrix import CellSpec, ScenarioMatrix
from repro.log.entries import EntryType
from repro.log.tamper_evident import TamperEvidentLog
from repro.service.ingest import AuditIngestService, QuarantinedShipment
from repro.store.archive import LogArchive


@pytest.fixture()
def archive(tmp_path):
    return LogArchive(tmp_path / "archive")


def _log_with_entries(machine="shipper", count=6):
    log = TamperEvidentLog(machine)
    for index in range(count):
        log.append(EntryType.ANNOTATION, {"index": index})
    return log


class TestQuarantinePersistence:
    def test_records_survive_service_restart_and_recovery(self, archive,
                                                          tmp_path):
        service = AuditIngestService(archive)
        log = _log_with_entries()
        assert service.ingest_segment(log.segment(1, 3))

        # A forked continuation: same sequence range again, different chain.
        fork = _log_with_entries(count=6)
        fork.tamper_replace_entry(2, {"index": 1, "forked": True},
                                  recompute_chain=True)
        assert not service.ingest_segment(fork.segment(4, 6))
        assert service.quarantined_machines() == ["shipper"]
        record = service.quarantine_for("shipper")[0]
        assert record.first_sequence == 4
        assert record.last_sequence == 6

        # Recover the archive and restart the service: still on file.
        recovered_archive = LogArchive(tmp_path / "archive")
        recovered = AuditIngestService(recovered_archive)
        assert recovered.quarantined_machines() == ["shipper"]
        persisted = recovered.quarantine_for("shipper")[0]
        assert persisted.reason == record.reason
        assert (persisted.first_sequence, persisted.last_sequence) == (4, 6)
        # The archived honest prefix is intact.
        assert recovered_archive.entry_count("shipper") == 3

    def test_records_accumulate_across_incarnations(self, archive, tmp_path):
        service = AuditIngestService(archive)
        log = _log_with_entries(machine="repeat-offender")
        assert service.ingest_segment(log.segment(1, 2))
        bad = log.segment(5, 6)  # skips 3-4: does not extend the head
        assert not service.ingest_segment(bad)

        second = AuditIngestService(LogArchive(tmp_path / "archive"))
        assert not second.ingest_segment(bad)
        assert len(second.quarantine_for("repeat-offender")) == 2

        third = AuditIngestService(LogArchive(tmp_path / "archive"))
        assert len(third.quarantine_for("repeat-offender")) == 2

    def test_roundtrip_of_shipment_records(self):
        record = QuarantinedShipment(machine="m", reason="r",
                                     first_sequence=3, last_sequence=9)
        assert QuarantinedShipment.from_dict(record.to_dict()) == record


class TestAdversaryDrivenQuarantine:
    """Drive the quarantine over the wire with the catalog's lying shippers."""

    @pytest.mark.parametrize("adversary_name,expect_reason", [
        ("lying-shipper-segments", "chain"),
        ("lying-shipper-snapshots", "snapshot"),
    ])
    def test_lying_shipper_is_quarantined_and_survives_recovery(
            self, adversary_name, expect_reason):
        matrix = ScenarioMatrix()
        adversary = make_adversary(adversary_name, seed=51)
        spec = CellSpec(adversary_name, "kv", "archive", 2, 51)

        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            ctx, run = matrix._build(spec, adversary, tmp)
            adversary.install(ctx)
            run()
            matrix._drain_archive(ctx)

            ingest = ctx.ingest
            assert ingest is not None
            byzantine = ctx.byzantine
            records = ingest.quarantine_for(byzantine)
            assert records, "corrupted shipments were not quarantined"
            assert any(expect_reason in record.reason.lower()
                       for record in records), records
            # Honest fleet members shipped clean.
            for machine in ctx.honest_machines:
                assert not ingest.quarantine_for(machine)
            assert adversary.handle is not None
            assert adversary.handle.corrupted > 0

            # Recovery: a fresh archive + service over the same directory
            # still knows about every refused shipment.
            recovered = AuditIngestService(LogArchive(ingest.archive.root))
            survived = recovered.quarantine_for(byzantine)
            assert len(survived) == len(records)
            assert {r.reason for r in survived} == {r.reason for r in records}

    def test_equivocating_shipment_source_is_quarantined(self, archive):
        """A shipment whose payload claims another machine's identity."""
        from repro.log.compression import VmmLogCompressor
        from repro.network.message import MessageKind, NetworkMessage

        service = AuditIngestService(archive)
        log = _log_with_entries(machine="impersonated")
        message = NetworkMessage(
            source="liar", destination=service.identity,
            payload=VmmLogCompressor().compress(log.segment(1, 3)),
            kind=MessageKind.ARCHIVE_SEGMENT)
        service.on_message(message)
        assert service.quarantined_machines() == ["liar"]
        assert "claims to be from" in service.quarantine_for("liar")[0].reason
