"""Tests for the performance model and measurement helpers."""

import pytest

from repro.avmm.config import AvmmConfig, Configuration
from repro.metrics.cpu import CpuModel
from repro.metrics.framerate import FrameRateModel
from repro.errors import DuplicateRequestError
from repro.metrics.latency import LatencyRecorder, percentile, summarize_rtts
from repro.metrics.logstats import LogGrowthSeries, log_content_breakdown
from repro.metrics.perfmodel import CostParameters, PerfModel


def model_for(configuration):
    return PerfModel.for_config(AvmmConfig.for_configuration(configuration))


class TestPerfModel:
    def test_latency_charges_increase_with_configuration(self):
        delays = [model_for(c).outgoing_packet_delay(60) +
                  model_for(c).incoming_packet_delay(60)
                  for c in (Configuration.BARE_HW, Configuration.VMWARE_NOREC,
                            Configuration.VMWARE_REC, Configuration.AVMM_NOSIG,
                            Configuration.AVMM_RSA768)]
        assert delays == sorted(delays)
        assert delays[0] == 0.0
        assert delays[-1] > 2e-3  # signatures dominate

    def test_bare_hw_charges_nothing(self):
        model = model_for(Configuration.BARE_HW)
        assert model.vmm_cpu_for_event() == 0.0
        assert model.vmm_cpu_for_recording(100, 10000) == 0.0
        assert model.daemon_cpu_for_log(10000) == 0.0
        assert model.ack_generation_delay() == 0.0

    def test_nosig_has_no_crypto_cost(self):
        model = model_for(Configuration.AVMM_NOSIG)
        assert model.daemon_cpu_for_signatures(10, 10) == 0.0
        rsa = model_for(Configuration.AVMM_RSA768)
        assert rsa.daemon_cpu_for_signatures(10, 10) > 0.0

    def test_with_scheme_sets_costs(self):
        params = CostParameters().with_scheme("rsa768")
        assert params.sign_seconds > 0
        assert params.signature_bytes == 96

    def test_for_flags_matches_for_config(self):
        by_flags = PerfModel.for_flags(virtualized=True, recording=True,
                                       tamper_evident=True, signature_scheme="rsa768")
        by_config = model_for(Configuration.AVMM_RSA768)
        assert by_flags.outgoing_packet_delay(60) == by_config.outgoing_packet_delay(60)


class TestFrameRateModel:
    def test_frame_rates_ordered_by_configuration(self, honest_session):
        # honest_session runs avmm-rsa768; its overhead must lower the frame
        # rate below the bare-hardware maximum.
        sample = honest_session.frame_rate("player1")
        bare_max = 1.0 / CostParameters().frame_cpu_seconds
        assert 0 < sample.frames_per_second < bare_max
        assert 0 < sample.overhead_fraction < 0.5

    def test_pinned_daemon_costs_frames(self, honest_session):
        normal = honest_session.frame_rate("player1")
        pinned = honest_session.frame_rate("player1", pinned_same_thread=True)
        assert pinned.frames_per_second < normal.frames_per_second

    def test_concurrent_audits_cost_frames_sublinearly(self, honest_session):
        f0 = honest_session.frame_rate("player1", concurrent_audits=0).frames_per_second
        f1 = honest_session.frame_rate("player1", concurrent_audits=1).frames_per_second
        f2 = honest_session.frame_rate("player1", concurrent_audits=2).frames_per_second
        assert f0 > f1 > f2
        assert (f0 - f1) < f0 * 0.5  # far less than losing half the machine

    def test_many_audits_degrade_towards_1_over_a(self, honest_session):
        few = honest_session.frame_rate("player1", concurrent_audits=3).frames_per_second
        many = honest_session.frame_rate("player1", concurrent_audits=6).frames_per_second
        assert many < few

    def test_invalid_duration_rejected(self, honest_session):
        with pytest.raises(ValueError):
            FrameRateModel().compute(honest_session.monitors["player1"], 0.0)


class TestCpuModel:
    def test_average_close_to_one_busy_hyperthread(self, honest_session):
        utilization = CpuModel().compute(honest_session.monitors["player1"],
                                         honest_session.settings.duration)
        assert 0.10 <= utilization.average <= 0.30
        assert len(utilization.per_hyperthread) == 8

    def test_daemon_hyperthread_stays_light(self, honest_session):
        utilization = CpuModel().compute(honest_session.monitors["player1"],
                                         honest_session.settings.duration)
        assert utilization.daemon_ht_utilization < 0.20

    def test_invalid_duration_rejected(self, honest_session):
        with pytest.raises(ValueError):
            CpuModel().compute(honest_session.monitors["player1"], -1.0)


class TestLatencyHelpers:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_recorder_tracks_round_trips(self):
        recorder = LatencyRecorder()
        recorder.note_sent("a", 1.0)
        recorder.note_sent("b", 2.0)
        recorder.note_received("a", 1.5)
        assert recorder.pending == 1
        assert recorder.rtts() == [0.5]

    def test_summary(self):
        summary = summarize_rtts([0.001, 0.002, 0.003])
        assert summary.median == 0.002
        assert summary.count == 3
        with pytest.raises(ValueError):
            summarize_rtts([])

    def test_duplicate_request_id_rejected(self):
        recorder = LatencyRecorder()
        recorder.note_sent("a", 1.0)
        with pytest.raises(DuplicateRequestError):
            recorder.note_sent("a", 2.0)
        # ...even after the first round trip completed: ids name one request.
        recorder.note_received("a", 1.5)
        with pytest.raises(DuplicateRequestError):
            recorder.note_sent("a", 3.0)

    def test_same_id_from_different_clients_is_distinct(self):
        recorder = LatencyRecorder()
        recorder.note_sent("a", 1.0, client="c1")
        recorder.note_sent("a", 2.0, client="c2")
        recorder.note_received("a", 1.5, client="c1")
        recorder.note_received("a", 2.25, client="c2")
        assert sorted(recorder.rtts()) == [0.25, 0.5]

    def test_unknown_receive_is_counted_not_dropped(self):
        recorder = LatencyRecorder()
        recorder.note_received("ghost", 1.0)
        assert recorder.unmatched_received == 1
        assert recorder.rtts() == []

    def test_summary_tail_percentiles(self):
        values = [i / 1000.0 for i in range(1, 1001)]
        summary = summarize_rtts(values)
        assert summary.p50 == summary.median
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.p999
        assert summary.p999 > summary.p99 > summary.p95
        single = summarize_rtts([0.004])
        assert single.p50 == single.p99 == single.p999 == 0.004

    def test_percentile_fraction_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 1.1)


class TestLogStats:
    def test_growth_series(self, honest_session):
        growth = honest_session.log_growth["server"]
        assert len(growth.samples) >= 2
        assert growth.growth_rate_mb_per_minute() > 0
        rows = growth.as_rows()
        assert rows[0][0] <= rows[-1][0]

    def test_growth_series_empty(self):
        assert LogGrowthSeries(machine="x").growth_rate_mb_per_minute() == 0.0

    def test_content_breakdown_fractions_sum_to_one(self, honest_session):
        breakdown = log_content_breakdown(honest_session.monitors["server"].log,
                                          honest_session.settings.duration)
        total_fraction = sum(breakdown.fraction(c) for c in breakdown.bytes_by_category)
        assert total_fraction == pytest.approx(1.0)
        assert breakdown.total_bytes > 0
        assert 0 < breakdown.compressed_bytes < breakdown.total_bytes

    def test_timetracker_dominates_replay_stream(self, honest_session):
        # Figure 4: TimeTracker entries are the largest replay category.
        breakdown = log_content_breakdown(honest_session.monitors["player1"].log,
                                          honest_session.settings.duration)
        assert breakdown.fraction("timetracker") > breakdown.fraction("maclayer")
        assert breakdown.fraction("timetracker") > breakdown.fraction("other_replay")

    def test_compression_reduces_rate(self, honest_session):
        breakdown = log_content_breakdown(honest_session.monitors["server"].log,
                                          honest_session.settings.duration)
        assert breakdown.compressed_mb_per_minute() < breakdown.mb_per_minute()
