"""Property-based (seeded) bit-flip fuzzing of the tamper-evident envelope.

The paper's integrity story rests on two serialised artefacts: log entries
(hash-chained, checked against authenticators) and authenticators (signed
commitments).  These tests flip single bits in the serialised forms and
assert that *every* mutation either

* fails to parse with :class:`~repro.errors.LogFormatError`, or
* fails verification with the right error class
  (:class:`~repro.errors.HashChainError` /
  :class:`~repro.errors.AuthenticatorMismatchError` for segments, a False
  verdict or a :class:`~repro.errors.CryptoError` for authenticators), or
* provably changed nothing that the tamper-evident envelope covers (the
  only such field is the bookkeeping timestamp, which the paper keeps out
  of the hash chain by design — TimeTracker entries carry the real timing).

No new dependencies: plain ``random.Random`` with fixed seeds.
"""

import random
import struct
from dataclasses import replace

import pytest

from repro.crypto import hashing
from repro.errors import (
    AuthenticatorMismatchError,
    CryptoError,
    HashChainError,
    LogFormatError,
)
from repro.log import codec as codec_module
from repro.log.authenticator import Authenticator, batch_verify_authenticators
from repro.log.codec import MAGIC_LENGTH, TypedCodec, get_codec
from repro.log.entries import EntryType
from repro.log.storage import (
    authenticators_from_bytes,
    authenticators_to_bytes,
    segment_from_bytes,
    segment_to_bytes,
)
from repro.log.tamper_evident import TamperEvidentLog

TRIALS = 200


def _flip_bit(data: bytes, rng: random.Random) -> bytes:
    mutated = bytearray(data)
    index = rng.randrange(len(mutated))
    mutated[index] ^= 1 << rng.randrange(8)
    return bytes(mutated)


@pytest.fixture(scope="module")
def recorded(ca):
    """A small signed log plus an authenticator for every entry."""
    keypair = ca.issue("fuzz-machine")
    log = TamperEvidentLog("fuzz-machine", keypair=keypair,
                           clock=lambda: 12.25)
    rng = random.Random(0xF00D)
    authenticators = []
    for index in range(24):
        entry_type = rng.choice([EntryType.SEND, EntryType.RECV,
                                 EntryType.ACK, EntryType.TIMETRACKER])
        entry, auth = log.append_with_authenticator(entry_type, {
            "index": index,
            "payload_hash": hashing.hash_bytes(bytes([index])).hex(),
            "value": rng.random(),
        })
        authenticators.append(auth)
    return log, authenticators, keypair


@pytest.fixture(scope="module")
def fuzz_keystore(ca, keystore, recorded):
    _, _, keypair = recorded
    keystore.add_certificate(keypair.certificate)
    return keystore


def _entries_equal_modulo_timestamp(original, mutated) -> bool:
    """The authenticated projection of every entry (and the header) matches."""
    if original.machine != mutated.machine:
        return False
    if original.start_hash != mutated.start_hash:
        return False
    if len(original.entries) != len(mutated.entries):
        return False
    for ours, theirs in zip(original.entries, mutated.entries):
        if (ours.sequence, ours.entry_type, ours.content,
                ours.chain_hash, ours.previous_hash) != \
                (theirs.sequence, theirs.entry_type, theirs.content,
                 theirs.chain_hash, theirs.previous_hash):
            return False
    return True


class TestSegmentBitFlips:
    def test_any_single_bit_flip_is_detected_or_outside_the_envelope(
            self, recorded, fuzz_keystore):
        log, authenticators, _ = recorded
        segment = log.full_segment()
        data = segment_to_bytes(segment)
        rng = random.Random(0xA5A5)
        parse_rejected = verify_rejected = bookkeeping_only = 0

        for _ in range(TRIALS):
            mutated_bytes = _flip_bit(data, rng)
            try:
                mutated = segment_from_bytes(mutated_bytes)
            except LogFormatError:
                parse_rejected += 1
                continue

            # The auditor knows whose log it requested: a renamed segment is
            # rejected before any check runs (Auditor.audit_segment).
            if mutated.machine != segment.machine:
                verify_rejected += 1
                continue
            try:
                mutated.verify_against_authenticators(authenticators,
                                                      fuzz_keystore)
            except (HashChainError, AuthenticatorMismatchError):
                verify_rejected += 1
                continue

            # Verification passed: the flip must not have touched anything
            # the hash chain covers (i.e. only the bookkeeping timestamp).
            assert _entries_equal_modulo_timestamp(segment, mutated), \
                "a bit flip survived verification but changed covered fields"
            bookkeeping_only += 1

        # The fuzz actually exercised all three classes of outcome.
        assert parse_rejected > 0
        assert verify_rejected > 0
        assert parse_rejected + verify_rejected + bookkeeping_only == TRIALS

    def test_every_entry_position_is_covered(self, recorded, fuzz_keystore):
        """Deterministic sweep: corrupt each entry's content in turn."""
        log, authenticators, _ = recorded
        for sequence in range(1, len(log) + 1):
            segment = log.full_segment()
            entry = segment.entries[sequence - 1]
            # Forge a replacement entry the way a real adversary must: a new
            # entry object with tampered content but the recorded hashes.
            # (In-place dict mutation would bypass the entry's cached
            # canonical encoding — no wire adversary can do that.)
            segment.entries[sequence - 1] = replace(
                entry, content={**entry.content, "index": -1})
            with pytest.raises((HashChainError, AuthenticatorMismatchError)):
                segment.verify_against_authenticators(authenticators,
                                                      fuzz_keystore)


def _wire_codec(wire: str):
    """A fresh codec per call — TypedCodec carries a compression flag."""
    return {
        "v1": get_codec(1),
        "v2": get_codec(2),
        "v3-raw": TypedCodec(compress=False),
        "v3-zlib": TypedCodec(),
    }[wire]


#: wires whose body is not behind a compression stage: there a random flip
#: usually survives parsing, so the chain/authenticator checks must fire
_UNCOMPRESSED_WIRES = ("v2", "v3-raw")


@pytest.mark.parametrize("wire", ["v1", "v2", "v3-raw", "v3-zlib"])
class TestWireCodecBitFlips:
    """The same single-bit-flip sweep over every *wire* codec setting.

    The JSON-lines sweep above covers the debug serialisation; this class
    flips bits in the actual shipped/stored bytes — bz2-compressed v1
    blobs, packed binary v2 blobs and typed v3 blobs (both the raw decode-
    path setting and the compressed archive default) — and demands the
    same trichotomy: reject at parse, reject at verification, or provably
    outside the envelope.  For v2/v3 this also pins the cache-seeding
    contract: a tampered content byte that still parses must fail the
    chain check, because verification hashes the *wire* bytes, never a
    stale re-encoding.  v3's lazy entries may defer the parse failure to
    first content access, which is why the equality probe runs only after
    verification has already accepted the bytes.
    """

    def test_any_single_bit_flip_is_detected_or_outside_the_envelope(
            self, recorded, fuzz_keystore, wire):
        log, authenticators, _ = recorded
        segment = log.full_segment()
        codec = _wire_codec(wire)
        data = codec.encode_segment(segment)
        rng = random.Random(0xD0 + ["v1", "v2", "v3-raw",
                                    "v3-zlib"].index(wire))
        parse_rejected = verify_rejected = bookkeeping_only = 0

        for _ in range(TRIALS):
            mutated_bytes = _flip_bit(data, rng)
            try:
                mutated = codec.decode_segment(mutated_bytes)
            except LogFormatError:
                parse_rejected += 1
                continue

            if mutated.machine != segment.machine:
                verify_rejected += 1
                continue
            try:
                mutated.verify_against_authenticators(authenticators,
                                                      fuzz_keystore)
            except (HashChainError, AuthenticatorMismatchError):
                verify_rejected += 1
                continue

            # Verification passed, so every entry's wire bytes hash to the
            # recorded chain — materializing content here cannot fail.
            assert _entries_equal_modulo_timestamp(segment, mutated), \
                "a bit flip survived verification but changed covered fields"
            bookkeeping_only += 1

        assert parse_rejected > 0
        assert parse_rejected + verify_rejected + bookkeeping_only == TRIALS
        # bz2/zlib swallow most flips at decompression; the uncompressed
        # formats have no such stage, so flips must instead be caught by
        # the chain/authenticator checks (or hit the uncovered timestamp).
        if wire in _UNCOMPRESSED_WIRES:
            assert verify_rejected > 0

    def test_tampered_content_byte_fails_the_chain_check(
            self, recorded, fuzz_keystore, wire):
        """Surgical tamper: change one content byte, keep the blob parseable."""
        log, authenticators, _ = recorded
        codec = _wire_codec(wire)
        segment = log.full_segment()
        data = codec.encode_segment(segment)
        if wire in ("v1", "v3-zlib"):
            # Tamper inside the compressed body, then re-decode: either the
            # compression stream dies (parse reject) or the chain check
            # fires.  Content access on a surviving flip may itself raise
            # LogFormatError (lazy typed decode) — equally a detection.
            rng = random.Random(0xD16)
            for _ in range(80):
                mutated_bytes = _flip_bit(data, rng)
                try:
                    mutated = codec.decode_segment(mutated_bytes)
                    if _entries_equal_modulo_timestamp(segment, mutated):
                        continue  # outside the envelope; try again
                except LogFormatError:
                    continue
                break
            else:
                pytest.skip("every flip died in decompression — covered "
                            "by the sweep")
        else:
            # v2 and v3-raw both store the recorder's committed content
            # bytes verbatim behind a fixed frame prefix (the recorder now
            # commits the typed encoding to every wire): walk the first
            # frame's content bytes from the tail until a one-byte change
            # both parses and alters the materialized content (e.g. inside
            # a hash field's raw bytes).  v3 adds a header flags byte.
            flags_width = 1 if wire == "v3-raw" else 0
            header_end = (MAGIC_LENGTH + 4
                          + len(segment.machine.encode("utf-8"))
                          + 32 + flags_width + 4)
            (frame_len,) = struct.unpack_from("<I", data, header_end)
            content_start = header_end + 4 + codec_module._V2_FIXED.size
            mutated = None
            for offset in range(header_end + 4 + frame_len - 1,
                                content_start - 1, -1):
                raw = bytearray(data)
                raw[offset] ^= 0x01
                try:
                    candidate = codec.decode_segment(bytes(raw))
                    if (candidate.entries[0].content
                            != segment.entries[0].content):
                        mutated = candidate
                        break
                except LogFormatError:
                    continue
            assert mutated is not None, \
                "no single-byte content change produced a parseable segment"
        with pytest.raises((HashChainError, AuthenticatorMismatchError)):
            mutated.verify_against_authenticators(authenticators,
                                                  fuzz_keystore)


class TestAuthenticatorBitFlips:
    def test_any_single_bit_flip_fails_parse_or_verification(
            self, recorded, fuzz_keystore):
        _, authenticators, _ = recorded
        data = authenticators_to_bytes(authenticators)
        originals = {auth.sequence: auth for auth in authenticators}
        rng = random.Random(0x5A5A)
        parse_rejected = verify_rejected = untouched = 0

        for _ in range(TRIALS):
            mutated_bytes = _flip_bit(data, rng)
            try:
                mutated = authenticators_from_bytes(mutated_bytes)
            except LogFormatError:
                parse_rejected += 1
                continue
            for auth in mutated:
                original = originals.get(auth.sequence)
                if original is not None and auth == original:
                    untouched += 1
                    continue
                # Every authenticator field is part of the commitment: any
                # change must kill the signature, the internal consistency
                # check, or the key lookup.
                try:
                    verdict = auth.verify(fuzz_keystore)
                except CryptoError:
                    verdict = False
                assert not verdict, \
                    f"mutated authenticator {auth!r} still verifies"
                verify_rejected += 1

        assert parse_rejected > 0
        assert verify_rejected > 0

    def test_batch_verification_pinpoints_the_mutated_authenticator(
            self, recorded, fuzz_keystore):
        _, authenticators, _ = recorded
        rng = random.Random(0xBEEF)
        for _ in range(20):
            batch = [Authenticator.from_dict(auth.to_dict())
                     for auth in authenticators]
            victim = rng.randrange(len(batch))
            tampered = batch[victim].to_dict()
            tampered["chain_hash"] = hashing.hash_bytes(b"not-the-chain").hex()
            batch[victim] = Authenticator.from_dict(tampered)
            valid, invalid, _ = batch_verify_authenticators(batch,
                                                            fuzz_keystore)
            assert invalid == [victim]
            assert len(valid) == len(batch) - 1

    def test_roundtrip_of_untampered_authenticators(self, recorded,
                                                    fuzz_keystore):
        _, authenticators, _ = recorded
        recovered = authenticators_from_bytes(
            authenticators_to_bytes(authenticators))
        assert recovered == authenticators
        assert all(auth.verify(fuzz_keystore) for auth in recovered)


class TestHashChainRoundTripFuzz:
    def test_random_logs_verify_and_any_field_perturbation_fails(self, ca):
        rng = random.Random(0xCAFE)
        keypair = ca.issue("chain-fuzz")
        for round_index in range(10):
            log = TamperEvidentLog("chain-fuzz", keypair=keypair)
            for index in range(rng.randrange(5, 15)):
                log.append(rng.choice(list(EntryType)),
                           {"i": index, "r": rng.randrange(1 << 20)})
            segment = log.full_segment()
            segment.verify_hash_chain()  # honest round-trip holds

            victim = rng.randrange(len(segment.entries))
            entry = segment.entries[victim]
            mutation = rng.choice(["content", "sequence", "previous", "chain"])
            if mutation == "content":
                # Forged entry object, not in-place mutation — see
                # test_every_entry_position_is_covered.
                segment.entries[victim] = replace(
                    entry, content={**entry.content, "r": -1})
            elif mutation == "sequence":
                object.__setattr__(entry, "sequence", entry.sequence + 1)
            elif mutation == "previous":
                object.__setattr__(entry, "previous_hash",
                                   hashing.hash_bytes(b"x"))
            else:
                object.__setattr__(entry, "chain_hash",
                                   hashing.hash_bytes(b"y"))
            with pytest.raises(HashChainError):
                segment.verify_hash_chain()
