"""Tests for the virtual machine substrate: devices, machine, images, snapshots."""

import pytest

from repro.errors import DeviceError, GuestError, SnapshotError, VMError
from repro.vm.devices import FrameCounter, VirtualDisk, VirtualNic, VirtualTimer
from repro.vm.events import (
    KeyboardInput,
    PacketDelivery,
    TimerInterrupt,
    event_from_payload,
)
from repro.vm.execution import ExecutionTimestamp
from repro.vm.guest import GuestProgram, PacketOutput
from repro.vm.image import VMImage
from repro.vm.machine import FixedNondeterminismSource, VirtualMachine
from repro.vm.snapshot import SnapshotManager, paginate, serialize_state


class CounterGuest(GuestProgram):
    """Small deterministic guest used throughout the VM tests."""

    name = "counter"

    def __init__(self, reply_to="peer"):
        self.reply_to = reply_to
        self.ticks = 0
        self.packets = 0
        self.commands = []
        self.clock_values = []

    def on_start(self, api):
        api.set_timer(0.5)
        self.clock_values.append(api.read_clock())

    def on_event(self, api, event):
        if isinstance(event, TimerInterrupt):
            self.ticks += 1
            self.clock_values.append(api.read_clock())
            api.render_frame(5)
        elif isinstance(event, PacketDelivery):
            self.packets += 1
            api.send_packet(self.reply_to, b"reply:" + event.payload)
        elif isinstance(event, KeyboardInput):
            self.commands.append(event.command)
            api.write_disk(1, event.command.encode())

    def get_state(self):
        return {"ticks": self.ticks, "packets": self.packets,
                "commands": list(self.commands), "clock_values": list(self.clock_values),
                "reply_to": self.reply_to}

    def set_state(self, state):
        self.ticks = state["ticks"]
        self.packets = state["packets"]
        self.commands = list(state["commands"])
        self.clock_values = list(state["clock_values"])
        self.reply_to = state["reply_to"]


def make_image(**kwargs):
    return VMImage(name="counter-image", guest_factory=CounterGuest,
                   disk_blocks={0: b"boot"}, **kwargs)


class TestExecutionTimestamp:
    def test_ordering(self):
        assert ExecutionTimestamp(1, 0) < ExecutionTimestamp(2, 0)
        assert ExecutionTimestamp(1, 0) < ExecutionTimestamp(1, 1)
        assert ExecutionTimestamp(3, 3) == ExecutionTimestamp(3, 3)

    def test_dict_roundtrip(self):
        ts = ExecutionTimestamp(5, 7)
        assert ExecutionTimestamp.from_dict(ts.to_dict()) == ts

    def test_zero(self):
        assert ExecutionTimestamp.ZERO.instruction_count == 0


class TestEvents:
    def test_packet_roundtrip(self):
        event = PacketDelivery(source="a", payload=b"\x01\x02", message_id="m1")
        assert PacketDelivery.from_payload(event.to_payload()) == event

    def test_timer_roundtrip(self):
        event = TimerInterrupt(tick_number=9)
        assert TimerInterrupt.from_payload(event.to_payload()) == event

    def test_keyboard_roundtrip(self):
        event = KeyboardInput(command="fire", device="mouse")
        assert KeyboardInput.from_payload(event.to_payload()) == event

    def test_event_from_payload_dispatch(self):
        event = PacketDelivery(source="a", payload=b"x", message_id="m")
        assert event_from_payload("packet", event.to_payload()) == event
        with pytest.raises(ValueError):
            event_from_payload("bogus", {})

    def test_digest_differs_by_content(self):
        a = PacketDelivery(source="a", payload=b"x", message_id="m")
        b = PacketDelivery(source="a", payload=b"y", message_id="m")
        assert a.digest() != b.digest()


class TestDevices:
    def test_disk_read_write(self):
        disk = VirtualDisk({0: b"boot"})
        assert disk.read(0) == b"boot"
        assert disk.read(5) == b""
        disk.write(5, b"data")
        assert disk.read(5) == b"data"
        assert disk.reads == 3 and disk.writes == 1

    def test_disk_rejects_bad_usage(self):
        disk = VirtualDisk()
        with pytest.raises(DeviceError):
            disk.read(-1)
        with pytest.raises(DeviceError):
            disk.write(0, b"x" * (VirtualDisk.BLOCK_SIZE + 1))

    def test_disk_state_roundtrip(self):
        disk = VirtualDisk({0: b"a", 3: b"b"})
        other = VirtualDisk()
        other.set_state(disk.get_state())
        assert other.read(0) == b"a" and other.read(3) == b"b"

    def test_nic_transmit_and_drain(self):
        nic = VirtualNic()
        nic.transmit("bob", b"hello")
        nic.note_received(10)
        packets = nic.drain()
        assert len(packets) == 1 and packets[0].destination == "bob"
        assert nic.drain() == []
        assert nic.stats["packets_sent"] == 1
        assert nic.stats["bytes_received"] == 10

    def test_timer_request(self):
        timer = VirtualTimer()
        timer.request(0.25)
        assert timer.interval == 0.25
        with pytest.raises(DeviceError):
            timer.request(0.0)

    def test_frame_counter(self):
        counter = FrameCounter()
        first = counter.render(3)
        second = counter.render(3)
        assert (first.frame_number, second.frame_number) == (1, 2)
        counter.reset()
        assert counter.frames == 0


class TestVirtualMachine:
    def test_start_required_before_events(self):
        vm = VirtualMachine(make_image())
        with pytest.raises(VMError):
            vm.deliver_event(TimerInterrupt(1))

    def test_double_start_rejected(self):
        vm = VirtualMachine(make_image())
        vm.start()
        with pytest.raises(VMError):
            vm.start()

    def test_timer_request_visible_to_host(self):
        vm = VirtualMachine(make_image())
        vm.start()
        assert vm.timer.interval == 0.5

    def test_instruction_count_increases(self):
        vm = VirtualMachine(make_image())
        vm.start()
        before = vm.execution_timestamp
        vm.deliver_event(TimerInterrupt(1))
        after = vm.execution_timestamp
        assert after.instruction_count > before.instruction_count
        assert after.branch_count == before.branch_count + 1

    def test_outputs_collected_per_event(self):
        vm = VirtualMachine(make_image())
        vm.start()
        outputs = vm.deliver_event(PacketDelivery(source="x", payload=b"ping",
                                                  message_id="m1"))
        packets = [o for o in outputs if isinstance(o, PacketOutput)]
        assert len(packets) == 1
        assert packets[0].payload == b"reply:ping"

    def test_clock_values_come_from_source(self):
        vm = VirtualMachine(make_image(),
                            nondet_source=FixedNondeterminismSource([1.5, 2.5]))
        vm.start()
        vm.deliver_event(TimerInterrupt(1))
        assert vm.guest.clock_values == [1.5, 2.5]

    def test_clock_hook_can_rewrite_values(self):
        vm = VirtualMachine(make_image(),
                            nondeterminism := FixedNondeterminismSource(default=1.0))
        vm.set_clock_read_hook(lambda ts, value: value + 10.0)
        vm.start()
        assert vm.guest.clock_values == [11.0]

    def test_guest_exception_wrapped(self):
        class FailingGuest(CounterGuest):
            def on_event(self, api, event):
                raise RuntimeError("boom")

        image = VMImage(name="fail", guest_factory=FailingGuest)
        vm = VirtualMachine(image)
        vm.start()
        with pytest.raises(GuestError):
            vm.deliver_event(TimerInterrupt(1))

    def test_determinism_same_inputs_same_state(self):
        def run():
            vm = VirtualMachine(make_image(),
                                nondet_source=FixedNondeterminismSource(default=3.0))
            vm.start()
            vm.deliver_event(TimerInterrupt(1))
            vm.deliver_event(PacketDelivery(source="x", payload=b"a", message_id="m1"))
            vm.deliver_event(KeyboardInput(command="jump"))
            return vm.get_full_state()

        assert run() == run()

    def test_full_state_roundtrip(self):
        vm = VirtualMachine(make_image(),
                            nondet_source=FixedNondeterminismSource(default=1.0))
        vm.start()
        vm.deliver_event(TimerInterrupt(1))
        vm.deliver_event(KeyboardInput(command="duck"))
        state = vm.get_full_state()

        other = VirtualMachine(make_image(),
                               nondet_source=FixedNondeterminismSource(default=1.0))
        other.set_full_state(state)
        assert other.get_full_state() == state
        assert other.execution_timestamp == vm.execution_timestamp

    def test_set_full_state_rejects_garbage(self):
        vm = VirtualMachine(make_image())
        with pytest.raises(VMError):
            vm.set_full_state({"guest": {}})

    def test_image_produces_guest_program(self):
        image = VMImage(name="bad", guest_factory=lambda: object())
        with pytest.raises(VMError):
            VirtualMachine(image)


class TestVMImage:
    def test_image_hash_stable(self):
        assert make_image().image_hash() == make_image().image_hash()

    def test_image_hash_depends_on_disk(self):
        assert make_image().image_hash() != \
            VMImage(name="counter-image", guest_factory=CounterGuest,
                    disk_blocks={0: b"other"}).image_hash()

    def test_image_hash_depends_on_policy(self):
        assert make_image().image_hash() != \
            make_image(allow_software_installation=True).image_hash()

    def test_initial_disk_is_a_copy(self):
        image = make_image()
        disk = image.initial_disk()
        disk[0] = b"mutated"
        assert image.initial_disk()[0] == b"boot"

    def test_same_as(self):
        assert make_image().same_as(make_image())


class TestSnapshots:
    def test_paginate_covers_data(self):
        data = b"x" * 10000
        pages = paginate(data, page_size=4096)
        assert b"".join(pages) == data
        assert len(pages) == 3

    def test_paginate_empty(self):
        assert paginate(b"") == [b""]

    def test_paginate_rejects_bad_page_size(self):
        with pytest.raises(SnapshotError):
            paginate(b"x", page_size=0)

    def test_take_and_reconstruct(self):
        manager = SnapshotManager(page_size=64)
        state = {"a": 1, "nested": {"b": [1, 2, 3]}}
        snapshot = manager.take(state, ExecutionTimestamp(10, 1))
        assert snapshot.verify_root()
        assert manager.reconstruct_state(snapshot.snapshot_id) == state

    def test_incremental_only_stores_changed_pages(self):
        manager = SnapshotManager(page_size=32)
        base = {"key": "A" * 200, "counter": 0}
        manager.take(base, ExecutionTimestamp(1, 0))
        base["counter"] = 1
        second = manager.take(base, ExecutionTimestamp(2, 0))
        incremental = manager.get_incremental(second.snapshot_id)
        assert incremental.base_snapshot_id == 1
        assert 0 < len(incremental.changed_pages) < len(second.pages)

    def test_transfer_cost_includes_memory_dump(self):
        manager = SnapshotManager()
        manager.take({"a": 1}, ExecutionTimestamp(1, 0))
        with_dump = manager.transfer_cost_bytes(1)
        without = manager.transfer_cost_bytes(1, include_memory_dump=False)
        assert with_dump > without

    def test_missing_snapshot_rejected(self):
        manager = SnapshotManager()
        with pytest.raises(SnapshotError):
            manager.get(1)
        with pytest.raises(SnapshotError):
            manager.get_incremental(1)

    def test_latest(self):
        manager = SnapshotManager()
        assert manager.latest() is None
        manager.take({"a": 1}, ExecutionTimestamp(1, 0))
        manager.take({"a": 2}, ExecutionTimestamp(2, 0))
        assert manager.latest().snapshot_id == 2

    def test_serialize_state_is_canonical(self):
        assert serialize_state({"b": 1, "a": 2}) == serialize_state({"a": 2, "b": 1})
