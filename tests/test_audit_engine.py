"""Tests for the parallel batch-audit engine and its crypto/log substrate.

Covers the acceptance points of the engine design: batch signature
verification pinpoints a single bad signature; a chunked audit of a tampered
log yields the same evidence as the serial path; ``workers=1`` and
``workers=4`` produce identical verdicts; and the incremental hash-chain /
chunk-partitioning primitives behave.
"""

import pytest

from repro.audit.engine import (
    AuditAssignment,
    AuditScheduler,
    run_chunk,
)
from repro.audit.spot_check import SpotChecker
from repro.audit.verdict import AuditPhase, Verdict
from repro.crypto.signatures import BatchVerifyResult
from repro.errors import HashChainError
from repro.log.authenticator import batch_verify_authenticators
from repro.log.hashchain import ChainCheckpoint, verify_chain_incremental
from repro.log.segments import concatenate_segments, partition_segments


# ---------------------------------------------------------------------------
# Batch signature verification
# ---------------------------------------------------------------------------

class TestBatchVerify:
    def _signed_items(self, ca, identity="alice", count=12):
        keypair = ca.issue(identity)
        messages = [f"packet-{index}".encode("utf-8") for index in range(count)]
        return messages, [(message, keypair.sign(message)) for message in messages]

    def test_all_valid_batch_costs_one_screen(self, ca, keystore):
        _, items = self._signed_items(ca)
        result = keystore.verify_many("alice", items)
        assert result.ok
        assert result.screen_operations == 1
        assert result.single_verifications == 0

    def test_single_bad_signature_is_pinpointed(self, ca, keystore):
        messages, items = self._signed_items(ca)
        items[7] = (messages[7], items[6][1])  # signature for the wrong message
        result = keystore.verify_many("alice", items)
        assert result.invalid_indices == (7,)
        # Bisection isolates the culprit without verifying everything singly.
        assert result.single_verifications < len(items)

    def test_multiple_bad_signatures_all_found(self, ca, keystore):
        messages, items = self._signed_items(ca, count=16)
        items[0] = (messages[0], items[1][1])
        items[9] = (messages[9], b"\x07" * len(items[9][1]))
        items[15] = (messages[15], items[14][1])
        result = keystore.verify_many("alice", items)
        assert result.invalid_indices == (0, 9, 15)

    def test_structurally_broken_signature_skips_the_screen(self, ca, keystore):
        messages, items = self._signed_items(ca, count=5)
        items[2] = (messages[2], b"short")
        result = keystore.verify_many("alice", items)
        assert result.invalid_indices == (2,)
        assert result.screen_operations == 1  # the other four in one screen

    def test_unknown_identity_rejects_everything(self, ca, keystore):
        _, items = self._signed_items(ca)
        result = keystore.verify_many("nobody", items)
        assert not result.ok
        assert result.invalid_indices == tuple(range(len(items)))

    def test_static_view_matches_keystore(self, ca, keystore):
        messages, items = self._signed_items(ca)
        items[3] = (messages[3], items[2][1])
        view = keystore.static_view()
        assert view.verify_many("alice", items).invalid_indices == \
            keystore.verify_many("alice", items).invalid_indices

    def test_empty_batch(self, keystore):
        result = keystore.verify_many("alice", [])
        assert result == BatchVerifyResult(total=0)


class TestBatchVerifyAuthenticators:
    def test_bad_authenticator_is_pinpointed(self, honest_session):
        machine = "player1"
        auditor = honest_session.make_auditor("player2", machine)
        auths = auditor.authenticators_for(machine)
        assert len(auths) > 4
        from dataclasses import replace
        forged = replace(auths[2], signature=auths[3].signature)
        batch = auths[:2] + [forged] + auths[3:]
        valid, invalid, stats = batch_verify_authenticators(
            batch, honest_session.keystore)
        assert invalid == [2]
        assert len(valid) == len(batch) - 1
        assert stats.total == len(batch)

    def test_inconsistent_chain_hash_fails_without_signature_check(self, honest_session):
        machine = "player1"
        auditor = honest_session.make_auditor("player2", machine)
        auths = auditor.authenticators_for(machine)
        from dataclasses import replace
        broken = replace(auths[0], chain_hash=b"\x00" * 32)
        valid, invalid, stats = batch_verify_authenticators(
            [broken] + auths[1:], honest_session.keystore)
        assert invalid == [0]
        assert stats.total == len(auths) - 1  # the broken one never reaches the screen


# ---------------------------------------------------------------------------
# Incremental hash chain + chunk partitioning
# ---------------------------------------------------------------------------

class TestIncrementalChain:
    def test_chunks_tile_into_a_full_proof(self, honest_session):
        segment = honest_session.monitors["server"].get_log_segment()
        segments = honest_session.monitors["server"].get_snapshot_segments()
        chunks = partition_segments(segments, 3)
        assert 1 < len(chunks) <= 3
        assert concatenate_segments(chunks).to_dict() == segment.to_dict()
        checkpoint = ChainCheckpoint.genesis()
        for chunk in chunks:
            assert chunk.start_checkpoint() == checkpoint
            checkpoint = verify_chain_incremental(chunk.entries, checkpoint)
        assert checkpoint == segment.end_checkpoint()

    def test_wrong_checkpoint_is_rejected(self, honest_session):
        segments = honest_session.monitors["server"].get_snapshot_segments()
        chunk = segments[1]
        with pytest.raises(HashChainError):
            verify_chain_incremental(chunk.entries, ChainCheckpoint.genesis())

    def test_checkpoint_from_authenticator_resumes_verification(self, honest_session):
        machine = "player1"
        monitor = honest_session.monitors[machine]
        auditor = honest_session.make_auditor("player2", machine)
        auth = sorted(auditor.authenticators_for(machine),
                      key=lambda a: a.sequence)[0]
        suffix = monitor.log.segment(auth.sequence + 1, len(monitor.log))
        end = verify_chain_incremental(
            suffix.entries, ChainCheckpoint.from_authenticator(auth))
        assert end.sequence == len(monitor.log)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class TestAuditScheduler:
    def test_workers_1_and_4_produce_identical_verdicts(self, honest_session):
        for machine in honest_session.player_ids + ["server"]:
            serial = AuditScheduler(workers=1).audit_machine(
                honest_session.make_auditor("player2" if machine != "player2"
                                            else "player1", machine),
                honest_session.monitors[machine])
            parallel = AuditScheduler(workers=4).audit_machine(
                honest_session.make_auditor("player2" if machine != "player2"
                                            else "player1", machine),
                honest_session.monitors[machine])
            assert serial.verdict is parallel.verdict is Verdict.PASS
            assert serial.phase is parallel.phase
            assert serial.authenticators_checked == parallel.authenticators_checked
            assert serial.replay_report.events_injected == \
                parallel.replay_report.events_injected

    def test_cheater_chunked_audit_matches_serial_evidence(self, cheater_session):
        machine = "player1"
        serial = cheater_session.audit(machine)
        parallel = AuditScheduler(workers=4).audit_machine(
            cheater_session.make_auditor("server", machine),
            cheater_session.monitors[machine])
        assert parallel.verdict is serial.verdict is Verdict.FAIL
        assert parallel.phase is serial.phase
        assert parallel.reason == serial.reason
        assert parallel.evidence.reason == serial.evidence.reason
        assert parallel.evidence.segment.to_dict() == serial.evidence.segment.to_dict()
        assert parallel.evidence.verify(
            cheater_session.keystore,
            cheater_session.reference_images[machine])

    def test_tampered_log_chunked_audit_matches_serial_evidence(self):
        from repro.avmm.config import Configuration
        from repro.experiments.harness import GameSession, GameSessionSettings
        from repro.game.cheats.external import LogTamperingAdversary
        from repro.log.entries import EntryType
        session = GameSession(GameSessionSettings(
            configuration=Configuration.AVMM_RSA768, num_players=2,
            duration=4.0, seed=37, snapshot_interval=2.0))
        session.run()
        machine = "player1"
        monitor = session.monitors[machine]
        # Tamper with an entry that is still covered by an issued
        # authenticator (the uncovered tail of the log is the paper's known
        # detection window), and late enough to land in a later chunk.
        covered = max(auth.sequence for auth in
                      session.make_auditor("server", machine)
                      .authenticators_for(machine))
        victim = [entry for entry in monitor.log.entries_of_type(EntryType.SEND)
                  if entry.sequence <= covered][-1]
        LogTamperingAdversary(monitor).rewrite_entry(
            victim.sequence, {**victim.content, "payload_size": 4242},
            recompute_chain=True)
        serial = session.audit(machine)
        parallel = AuditScheduler(workers=4).audit_machine(
            session.make_auditor("server", machine), monitor)
        assert parallel.verdict is serial.verdict is Verdict.FAIL
        assert parallel.phase is serial.phase is AuditPhase.AUTHENTICATOR_CHECK
        assert parallel.reason == serial.reason
        assert parallel.evidence.segment.to_dict() == serial.evidence.segment.to_dict()
        assert parallel.evidence.verify(session.keystore,
                                        session.reference_images[machine])

    def test_fleet_report_accounting(self, honest_session):
        engine = AuditScheduler(workers=2)
        assignments = [
            AuditAssignment(honest_session.make_auditor("server", machine),
                            honest_session.monitors[machine])
            for machine in honest_session.player_ids]
        report = engine.audit_fleet(assignments)
        assert report.all_passed
        assert set(report.results) == set(honest_session.player_ids)
        assert report.chunk_count >= len(honest_session.player_ids)
        assert report.modelled.serial_seconds > 0
        assert report.modelled.makespan_seconds <= report.modelled.serial_seconds
        assert report.total_cost.signatures_verified > 0
        # batching: far fewer screening operations than signatures checked
        assert report.total_cost.signature_screen_operations \
            < report.total_cost.signatures_verified
        for machine_report in report.machine_reports.values():
            assert not machine_report.confirmed_serially

    def test_executor_modes_agree(self, honest_session):
        machine = "player1"
        results = {}
        for executor in ("inline", "thread", "process"):
            engine = AuditScheduler(workers=2, executor=executor)
            results[executor] = engine.audit_machine(
                honest_session.make_auditor("server", machine),
                honest_session.monitors[machine])
        verdicts = {result.verdict for result in results.values()}
        assert verdicts == {Verdict.PASS}
        counts = {result.authenticators_checked for result in results.values()}
        assert len(counts) == 1

    def test_auditor_workers_parameter_uses_engine(self, honest_session):
        from repro.audit.auditor import Auditor
        machine = "player1"
        auditor = Auditor("server", honest_session.keystore,
                          honest_session.reference_images[machine], workers=4)
        for peer_identity, peer in honest_session.monitors.items():
            if peer_identity != machine:
                auditor.collect_from_peer(peer, machine)
        assert auditor.engine is not None
        result = auditor.audit(honest_session.monitors[machine])
        assert result.verdict is Verdict.PASS

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AuditScheduler(workers=0)
        with pytest.raises(ValueError):
            AuditScheduler(executor="gpu")

    def test_duplicate_fleet_targets_rejected(self, honest_session):
        machine = "player1"
        assignments = [
            AuditAssignment(honest_session.make_auditor("player2", machine),
                            honest_session.monitors[machine]),
            AuditAssignment(honest_session.make_auditor("server", machine),
                            honest_session.monitors[machine]),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            AuditScheduler(workers=2).audit_fleet(assignments)

    def test_corrupt_stored_snapshot_falls_back_to_serial(self):
        # A target whose *stored* snapshot does not verify cannot be chunked,
        # but the serial audit replays from the start and does not need it —
        # the engine must produce the same verdict as workers=1, not crash.
        from repro.avmm.config import Configuration
        from repro.experiments.harness import GameSession, GameSessionSettings
        session = GameSession(GameSessionSettings(
            configuration=Configuration.AVMM_RSA768, num_players=2,
            duration=4.0, seed=41, snapshot_interval=2.0))
        session.run()
        machine = "player1"
        monitor = session.monitors[machine]
        snapshot = monitor.snapshots.get(1)
        snapshot.state_root = b"\x00" * 32
        serial = session.audit(machine)
        engine = AuditScheduler(workers=4)
        parallel = engine.audit_machine(
            session.make_auditor("server", machine), monitor)
        assert parallel.verdict is serial.verdict
        assert parallel.phase is serial.phase


class TestParallelSpotChecker:
    def test_parallel_spot_check_matches_serial(self, honest_session):
        machine = "server"
        serial_checker = SpotChecker(honest_session.make_auditor("player1", machine))
        parallel_checker = SpotChecker(
            honest_session.make_auditor("player1", machine),
            engine=AuditScheduler(workers=4))
        serial_results = serial_checker.check_all_chunks(
            honest_session.monitors[machine], k=1)
        parallel_results = parallel_checker.check_all_chunks(
            honest_session.monitors[machine], k=1)
        assert len(serial_results) == len(parallel_results) >= 1
        for serial_result, parallel_result in zip(serial_results, parallel_results):
            assert serial_result.chunk_start_index == parallel_result.chunk_start_index
            assert serial_result.ok and parallel_result.ok
            assert serial_result.snapshot_bytes == parallel_result.snapshot_bytes
            assert serial_result.log_bytes == parallel_result.log_bytes


class TestChunkJobPickling:
    def test_jobs_for_game_sessions_pickle(self, honest_session):
        import pickle
        machine = "player1"
        engine = AuditScheduler(workers=4)
        auditor = honest_session.make_auditor("server", machine)
        plan = engine._plan(AuditAssignment(auditor, honest_session.monitors[machine]))
        assert len(plan.jobs) > 1
        job = pickle.loads(pickle.dumps(plan.jobs[-1]))
        outcome = run_chunk(job)
        assert outcome.ok, outcome.reason
