"""Tests for the AVMM: configuration, clock optimiser, recorder, monitor, replayer."""

import pytest

from repro.avmm.clockopt import ClockReadOptimizer
from repro.avmm.config import ALL_CONFIGURATIONS, AvmmConfig, Configuration
from repro.avmm.monitor import AccountableVMM
from repro.avmm.recorder import ExecutionRecorder
from repro.avmm.replayer import DeterministicReplayer
from repro.experiments.harness import build_trust
from repro.log.entries import EntryType
from repro.log.tamper_evident import TamperEvidentLog
from repro.network.simnet import SimulatedNetwork
from repro.sim.scheduler import Scheduler
from repro.vm.events import KeyboardInput, PacketDelivery, TimerInterrupt
from repro.vm.execution import ExecutionTimestamp
from repro.workloads.echo import EchoGuest, make_echo_image
from repro.vm.image import VMImage


class TestConfig:
    def test_five_configurations(self):
        assert len(ALL_CONFIGURATIONS) == 5

    def test_bare_hw_has_everything_off(self):
        config = AvmmConfig.for_configuration(Configuration.BARE_HW)
        assert not config.virtualized
        assert not config.record_replay_info
        assert not config.tamper_evident
        assert not config.signs_packets
        assert not config.is_accountable

    def test_vmware_rec_records_but_is_not_accountable(self):
        config = AvmmConfig.for_configuration(Configuration.VMWARE_REC)
        assert config.record_replay_info and not config.tamper_evident
        assert not config.is_accountable

    def test_avmm_nosig_is_accountable_without_signatures(self):
        config = AvmmConfig.for_configuration(Configuration.AVMM_NOSIG)
        assert config.is_accountable and not config.signs_packets

    def test_avmm_rsa768_signs(self):
        config = AvmmConfig.for_configuration(Configuration.AVMM_RSA768)
        assert config.signs_packets and config.signature_scheme == "rsa768"

    def test_overrides(self):
        config = AvmmConfig.for_configuration(Configuration.AVMM_RSA768,
                                              snapshot_interval=1.0)
        assert config.snapshot_interval == 1.0
        assert config.with_overrides(audit_slowdown=0.05).audit_slowdown == 0.05


class TestClockOptimizer:
    def test_disabled_is_identity(self):
        optimizer = ClockReadOptimizer(enabled=False)
        assert optimizer.observe(1.0) == 1.0
        assert optimizer.observe(1.000001) == 1.000001

    def test_spaced_reads_not_delayed(self):
        optimizer = ClockReadOptimizer()
        assert optimizer.observe(1.0) == 1.0
        assert optimizer.observe(1.1) == 1.1
        assert optimizer.stats.reads_delayed == 0

    def test_consecutive_reads_delayed_exponentially(self):
        optimizer = ClockReadOptimizer()
        values = [optimizer.observe(1.0 + i * 1e-6) for i in range(6)]
        # Returned values must be strictly increasing and pull ahead of the
        # raw clock quickly.
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[-1] - (1.0 + 5e-6) >= 50e-6
        assert optimizer.stats.reads_delayed >= 4

    def test_delay_capped(self):
        optimizer = ClockReadOptimizer(max_delay=5e-3)
        previous = 0.0
        for i in range(40):
            value = optimizer.observe(i * 1e-6)
            step = value - previous
            previous = value
        assert step <= 5e-3 + 1e-6 + 1e-9

    def test_busy_wait_terminates_quickly(self):
        optimizer = ClockReadOptimizer()
        target = 0.002  # 2 ms busy-wait
        now = 0.0
        reads = 0
        while now < target and reads < 10_000:
            reads += 1
            now = optimizer.observe(reads * 2e-6)
        assert reads < 20  # without the optimiser this would be ~1000 reads

    def test_reset_forgets_history(self):
        optimizer = ClockReadOptimizer()
        optimizer.observe(1.0)
        optimizer.observe(1.000001)
        optimizer.reset()
        before = optimizer.stats.reads_delayed
        optimizer.observe(1.000002)
        assert optimizer.stats.reads_delayed == before


class TestRecorder:
    def test_disabled_recorder_writes_only_snapshots(self):
        log = TamperEvidentLog("m")
        recorder = ExecutionRecorder(log, enabled=False)
        recorder.record_clock_read(ExecutionTimestamp(1, 0), 1.0)
        recorder.record_guest_event(ExecutionTimestamp(2, 0), TimerInterrupt(1))
        assert len(log) == 0
        recorder.record_snapshot(1, b"\x00" * 32, ExecutionTimestamp(3, 0))
        assert len(log) == 1

    def test_entry_types_by_event(self):
        log = TamperEvidentLog("m")
        recorder = ExecutionRecorder(log)
        recorder.record_clock_read(ExecutionTimestamp(1, 0), 1.0)
        recorder.record_guest_event(ExecutionTimestamp(2, 1), TimerInterrupt(1))
        recorder.record_guest_event(ExecutionTimestamp(3, 2),
                                    PacketDelivery(source="a", payload=b"x",
                                                   message_id="m1"))
        recorder.record_guest_event(ExecutionTimestamp(4, 3),
                                    KeyboardInput(command="fire"))
        recorder.record_packet_out(ExecutionTimestamp(5, 3), "b", b"\x00" * 32, 4, "m2")
        types = [e.entry_type for e in log]
        assert types == [EntryType.TIMETRACKER, EntryType.TIMETRACKER,
                         EntryType.MACLAYER, EntryType.NONDET, EntryType.MACLAYER]
        assert recorder.stats.clock_reads == 1
        assert recorder.stats.packets_in == 1
        assert recorder.stats.packets_out == 1
        assert recorder.stats.keyboard_inputs == 1
        assert recorder.stats.bytes_written > 0


def build_echo_pair(configuration=Configuration.AVMM_RSA768, snapshot_interval=None):
    """Two machines running echo / ping guests under one configuration."""
    scheduler = Scheduler()
    network = SimulatedNetwork(scheduler)
    config = AvmmConfig.for_configuration(configuration,
                                          snapshot_interval=snapshot_interval)
    ca, keypairs, keystore = build_trust(["alpha", "beta"],
                                         scheme=config.signature_scheme)
    alpha = AccountableVMM("alpha", make_echo_image(), config, scheduler, network,
                           keypair=keypairs["alpha"], keystore=keystore)
    beta = AccountableVMM("beta", make_echo_image(), config, scheduler, network,
                          keypair=keypairs["beta"], keystore=keystore)
    return scheduler, network, keystore, alpha, beta


class TestMonitor:
    def test_start_and_stop(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair()
        alpha.start()
        assert alpha.running
        alpha.stop()
        assert not alpha.running

    def test_double_start_rejected(self):
        _, _, _, alpha, _ = build_echo_pair()
        alpha.start()
        with pytest.raises(Exception):
            alpha.start()

    @pytest.mark.slow
    def test_message_exchange_logs_send_recv_ack(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair()
        alpha.start()
        beta.start()
        # Deliver a packet to beta's guest that looks like it came from alpha,
        # so the echo reply travels over the network back to alpha.
        beta.deliver_event(PacketDelivery(source="alpha", payload=b"ping",
                                          message_id="ping-1"))
        scheduler.run_until(4.0)
        assert any(e.entry_type is EntryType.SEND for e in beta.log)
        assert any(e.entry_type is EntryType.RECV for e in alpha.log)
        assert any(e.entry_type is EntryType.ACK for e in alpha.log)
        assert beta.stats.signatures_generated > 0
        # alpha collected an authenticator from beta's data message
        assert beta.identity in alpha.received_authenticators

    def test_duplicate_delivery_not_replayed_to_guest(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair()
        alpha.start()
        beta.start()
        # A silent endpoint so the echo replies do not bounce back and forth.
        network.register("charlie", lambda m: None)
        from repro.network.message import NetworkMessage
        message = NetworkMessage(source="charlie", destination="alpha", payload=b"hello",
                                 message_id="dup-1")
        alpha.on_network_message(message)
        alpha.on_network_message(message)  # retransmission of the same message
        scheduler.run_until(1.0)
        recvs = [e for e in alpha.log if e.entry_type is EntryType.RECV
                 and e.content["message_id"] == "dup-1"]
        assert len(recvs) == 1
        assert alpha.guest.packets_echoed == 1

    def test_bare_hw_keeps_no_log(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair(Configuration.BARE_HW)
        alpha.start()
        beta.start()
        beta.deliver_event(PacketDelivery(source="alpha", payload=b"x",
                                          message_id="m1"))
        assert len(beta.log) == 0
        assert beta.stats.messages_sent == 1
        assert beta.stats.signatures_generated == 0

    def test_vmware_rec_records_replay_info_without_tamper_evidence(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair(Configuration.VMWARE_REC)
        beta.start()
        beta.deliver_event(PacketDelivery(source="alpha", payload=b"x", message_id="m1"))
        types = {e.entry_type for e in beta.log}
        assert EntryType.MACLAYER in types
        assert EntryType.SEND not in types

    def test_snapshots_taken_periodically(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair(
            snapshot_interval=1.0)
        alpha.start()
        scheduler.run_until(3.5)
        assert alpha.snapshots.count == 3
        snapshot_entries = [e for e in alpha.log if e.entry_type is EntryType.SNAPSHOT]
        assert len(snapshot_entries) == 3

    def test_inject_local_input_recorded(self):
        _, _, _, alpha, _ = build_echo_pair()
        alpha.start()
        alpha.inject_local_input("fire", device="mouse")
        nondet = [e for e in alpha.log if e.entry_type is EntryType.NONDET]
        assert len(nondet) == 1
        assert nondet[0].content["data"]["command"] == "fire"

    def test_describe(self):
        _, _, _, alpha, _ = build_echo_pair()
        alpha.start()
        info = alpha.describe()
        assert info["identity"] == "alpha"
        assert info["configuration"] == "avmm-rsa768"


class TestReplayer:
    @staticmethod
    def _run_exchange(scheduler, alpha, beta, packets=3, horizon=0.1):
        """Kick off echo traffic so beta's log contains network-delivered packets."""
        for i in range(packets):
            alpha.deliver_event(PacketDelivery(source="beta", payload=f"p{i}".encode(),
                                               message_id=f"seed-{i}"))
        scheduler.run_until(horizon)

    def test_honest_echo_replays_cleanly(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair()
        alpha.start()
        beta.start()
        self._run_exchange(scheduler, alpha, beta)
        report = DeterministicReplayer(make_echo_image()).replay(beta.get_log_segment())
        assert report.ok
        assert report.events_injected > 0
        assert report.outputs_checked >= 3

    def test_wrong_reference_image_diverges(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair()
        alpha.start()
        beta.start()
        self._run_exchange(scheduler, alpha, beta, packets=1)

        class DifferentEcho(EchoGuest):
            def on_event(self, api, event):
                if isinstance(event, PacketDelivery):
                    api.send_packet(event.source, b"not-an-echo")
                    self.packets_echoed += 1

        wrong_image = VMImage(name="wrong", guest_factory=DifferentEcho)
        report = DeterministicReplayer(wrong_image).replay(beta.get_log_segment())
        assert report.diverged
        assert "differs" in report.divergence.reason or "execution point" in report.divergence.reason

    def test_tampered_payload_detected_by_replay(self):
        scheduler, network, keystore, alpha, beta = build_echo_pair()
        alpha.start()
        beta.start()
        self._run_exchange(scheduler, alpha, beta, packets=1)
        # Bob rewrites the payload hash of his SEND entry (and recomputes the
        # chain): replay now disagrees with the recorded output.
        send_entries = [e for e in beta.log if e.entry_type is EntryType.MACLAYER
                        and e.content.get("direction") == "out"]
        entry = send_entries[0]
        tampered = dict(entry.content)
        tampered["payload_hash"] = "00" * 32
        beta.log.tamper_replace_entry(entry.sequence, tampered, recompute_chain=True)
        report = DeterministicReplayer(make_echo_image()).replay(beta.get_log_segment())
        assert report.diverged
