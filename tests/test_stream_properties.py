"""Seeded-random property tests for the streaming audit pipeline.

Two properties pin the stream's correctness (stdlib ``random`` only — the
container has no network, so no hypothesis):

* **Resumability** — interrupting the verified entry stream at any segment
  or chunk boundary and resuming from the persisted
  :class:`~repro.log.hashchain.ChainCheckpoint` yields exactly the entry
  sequence and checkpoints of one uninterrupted pass.
* **Corruption parity** — any single-bit flip in an archived segment file
  surfaces through the streaming reader as the same error class the
  in-memory reader raises (and, for hash-chain breaks, at the same sequence
  number); flips that touch only uncovered bookkeeping (the timestamp) leave
  both readers returning identical entries.

Plus the byte-exactness property of the incremental compression meter, which
the cost-model equivalence of the whole pipeline rests on.
"""

from __future__ import annotations

import random

import pytest

from repro.audit.stream import ArchiveEntryStream, iter_stream_chunks
from repro.errors import HashChainError, ReproError
from repro.experiments.parallel_audit import build_fleet
from repro.log.compression import (
    IncrementalCompressionMeter,
    SegmentStreamDecoder,
    VmmLogCompressor,
)
from repro.log.entries import EntryType
from repro.log.hashchain import verify_chain_incremental
from repro.log.segments import LogSegment
from repro.log.tamper_evident import TamperEvidentLog
from repro.service.target import ArchiveBackedMachine
from repro.store.archive import LogArchive


@pytest.fixture(scope="module")
def archived_run(tmp_path_factory):
    """A short honest archived run with a dozen-odd segments per machine."""
    root = tmp_path_factory.mktemp("stream-props") / "archive"
    build_fleet(num_machines=2, duration=10.0, seed=13,
                snapshot_interval=1.0, archive=LogArchive(root))
    archive = LogArchive(root)
    machine = archive.machines()[0]
    assert len(archive.segment_records(machine)) >= 8
    return archive, machine


# ---------------------------------------------------------------------------
# Property (a): resuming at any boundary reproduces the uninterrupted pass
# ---------------------------------------------------------------------------

class TestResumeProperty:
    def _boundaries(self, archive, machine):
        """(checkpoint, entries_before) at every segment boundary."""
        boundaries = [(archive.start_checkpoint(machine), 0)]
        count = 0
        for record in archive.segment_records(machine):
            count += record.entry_count
            boundaries.append((record.end_checkpoint(), count))
        return boundaries

    def test_resume_at_random_segment_boundaries(self, archived_run):
        archive, machine = archived_run
        full = list(ArchiveEntryStream(archive, machine))
        boundaries = self._boundaries(archive, machine)
        rng = random.Random(0xA5)
        for checkpoint, consumed in rng.sample(boundaries,
                                               min(6, len(boundaries))):
            resumed_stream = ArchiveEntryStream(archive, machine,
                                                start=checkpoint)
            resumed = list(resumed_stream)
            assert resumed == full[consumed:], \
                f"resume at sequence {checkpoint.sequence} diverged"
            if resumed:
                assert resumed_stream.checkpoint.sequence == full[-1].sequence
            else:  # empty suffix keeps the start checkpoint
                assert resumed_stream.checkpoint == checkpoint

    def test_interrupt_then_resume_equals_one_pass(self, archived_run):
        """Consume a random number of whole segments, persist the checkpoint,
        resume: concatenation equals the uninterrupted pass, checkpoint
        trajectories included."""
        archive, machine = archived_run
        records = archive.segment_records(machine)
        full_stream = ArchiveEntryStream(archive, machine)
        full = list(full_stream)
        rng = random.Random(0x5EED)
        for _ in range(5):
            cut = rng.randrange(1, len(records))
            first_stream = ArchiveEntryStream(archive, machine)
            consumed = []
            iterator = iter(first_stream)
            target_count = sum(record.entry_count for record in records[:cut])
            for _ in range(target_count):
                consumed.append(next(iterator))
            checkpoint = first_stream.checkpoint
            assert checkpoint == records[cut - 1].end_checkpoint()
            rest = list(ArchiveEntryStream(archive, machine, start=checkpoint))
            assert consumed + rest == full
            # Chain checkpoints agree with a scratch verification pass.
            assert verify_chain_incremental(
                rest, checkpoint) == full_stream.checkpoint

    def test_resume_chunk_iterator_at_chunk_boundaries(self, archived_run):
        archive, machine = archived_run
        target = ArchiveBackedMachine(archive, machine)
        chunks = list(iter_stream_chunks(target))
        assert len(chunks) > 2
        rng = random.Random(7)
        for cut in rng.sample(range(1, len(chunks)), min(4, len(chunks) - 1)):
            resumed = list(iter_stream_chunks(
                target, start=chunks[cut - 1].end_checkpoint))
            assert [c.segment.entries for c in resumed] == \
                [c.segment.entries for c in chunks[cut:]]
            assert [c.end_checkpoint for c in resumed] == \
                [c.end_checkpoint for c in chunks[cut:]]

    def test_resume_off_boundary_is_refused(self, archived_run):
        archive, machine = archived_run
        records = archive.segment_records(machine)
        wide = [r for r in records if r.entry_count > 1]
        assert wide
        from repro.log.hashchain import ChainCheckpoint
        mid = ChainCheckpoint(sequence=wide[0].first_sequence,
                              chain_hash=b"\x00" * 32)
        with pytest.raises(ReproError):
            list(ArchiveEntryStream(archive, machine, start=mid))
        # Mid-segment inside the LAST record and past-the-end checkpoints
        # must also refuse — an empty stream would let the suffix pass as
        # "fully audited".
        head = records[-1].end_checkpoint()
        inside_last = ChainCheckpoint(sequence=head.sequence - 1,
                                      chain_hash=b"\x11" * 32)
        with pytest.raises(ReproError):
            list(ArchiveEntryStream(archive, machine, start=inside_last))
        beyond = ChainCheckpoint(sequence=head.sequence + 99,
                                 chain_hash=b"\x22" * 32)
        with pytest.raises(ReproError):
            list(ArchiveEntryStream(archive, machine, start=beyond))
        # Resume exactly at the head is the legitimate empty suffix...
        assert list(ArchiveEntryStream(archive, machine, start=head)) == []
        # ...but only with the matching chain hash.
        forged_head = ChainCheckpoint(sequence=head.sequence,
                                      chain_hash=b"\x33" * 32)
        with pytest.raises(ReproError):
            list(ArchiveEntryStream(archive, machine, start=forged_head))


# ---------------------------------------------------------------------------
# Property (b): bit flips surface identically on both readers
# ---------------------------------------------------------------------------

def _read_materializing(archive, machine):
    """Entries via the in-memory reader + whole-chain verification."""
    entries = []
    checkpoint = archive.start_checkpoint(machine)
    for record in archive.segment_records(machine):
        segment = archive.read_segment(record)
        checkpoint = verify_chain_incremental(segment.entries, checkpoint)
        entries.extend(segment.entries)
    return entries


def _read_streaming(archive, machine):
    return list(ArchiveEntryStream(archive, machine))


class TestBitFlipParity:
    TRIALS = 24

    def test_single_bit_flips_surface_identically(self, archived_run):
        archive, machine = archived_run
        records = archive.segment_records(machine)
        rng = random.Random(0xB17F11B)
        outcomes = {"clean": 0, "error": 0}
        for trial in range(self.TRIALS):
            record = rng.choice(records)
            path = archive.root / record.file_name
            original = path.read_bytes()
            position = rng.randrange(len(original))
            bit = 1 << rng.randrange(8)
            corrupted = bytearray(original)
            corrupted[position] ^= bit
            path.write_bytes(bytes(corrupted))
            try:
                fresh = LogArchive(archive.root)
                materializing_entries = materializing_error = None
                streaming_entries = streaming_error = None
                try:
                    materializing_entries = _read_materializing(fresh, machine)
                except Exception as exc:  # noqa: BLE001 - class parity test
                    materializing_error = exc
                try:
                    streaming_entries = _read_streaming(fresh, machine)
                except Exception as exc:  # noqa: BLE001 - class parity test
                    streaming_error = exc

                context = (f"trial {trial}: flip bit {bit:#x} at byte "
                           f"{position} of {record.file_name}")
                if materializing_error is None:
                    assert streaming_error is None, \
                        f"{context}: streaming raised {streaming_error!r}, " \
                        f"in-memory read cleanly"
                    assert streaming_entries == materializing_entries, context
                    outcomes["clean"] += 1
                else:
                    assert streaming_error is not None, \
                        f"{context}: in-memory raised " \
                        f"{materializing_error!r}, streaming read cleanly"
                    assert type(streaming_error) \
                        is type(materializing_error), \
                        f"{context}: class divergence — in-memory " \
                        f"{materializing_error!r}, streaming {streaming_error!r}"
                    if isinstance(materializing_error, HashChainError):
                        # Chain breaks must be attributed to the same entry.
                        assert str(streaming_error) \
                            == str(materializing_error), context
                    outcomes["error"] += 1
            finally:
                path.write_bytes(original)
        # The sweep must have exercised the detection path, not just
        # no-op flips in uncovered bookkeeping bytes.
        assert outcomes["error"] > 0
        print(f"\nbit-flip outcomes: {outcomes}")


# ---------------------------------------------------------------------------
# Meter and decoder properties (randomized)
# ---------------------------------------------------------------------------

def _random_segment(rng: random.Random, entries: int) -> LogSegment:
    log = TamperEvidentLog(f"machine-{rng.randrange(1000)}")
    counter = 0
    for index in range(entries):
        content = {"index": index,
                   "blob": "".join(rng.choice("abcdef0123456789")
                                   for _ in range(rng.randrange(0, 40)))}
        if rng.random() < 0.6:
            counter += rng.randrange(1, 5000)
            content["execution_counter"] = counter
        log.append(EntryType.ANNOTATION, content)
    return LogSegment(machine=log.machine, entries=list(log.entries),
                      start_hash=log.entries[0].previous_hash)


class TestCodecProperties:
    def test_meter_matches_one_shot_compression(self):
        compressor = VmmLogCompressor()
        rng = random.Random(42)
        for _ in range(8):
            segment = _random_segment(rng, rng.randrange(1, 120))
            meter = IncrementalCompressionMeter(segment.machine,
                                                segment.start_hash)
            for entry in segment.entries:
                meter.add(entry)
            assert meter.finish() == len(compressor.compress(segment))
            assert meter.raw_bytes == segment.size_bytes()

    def test_stream_decoder_matches_one_shot_decode(self):
        compressor = VmmLogCompressor()
        rng = random.Random(43)
        for _ in range(6):
            segment = _random_segment(rng, rng.randrange(1, 80))
            data = compressor.compress(segment)
            size = rng.choice([1, 7, 64, 4096, len(data)])
            decoder = SegmentStreamDecoder()
            chunks = [data[i:i + size] for i in range(0, len(data), size)]
            assert list(decoder.entries(chunks)) == segment.entries
            assert decoder.header["machine"] == segment.machine
