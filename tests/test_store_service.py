"""Tests for the durable log archive and the audit-ingest pipeline.

Unit tests exercise the archive against synthetic logs (round-trips through
compression, crash recovery, corruption, retention GC); the slow fleet tests
prove the acceptance property end to end: a 16-machine fleet archived over
the network, the archive reopened from its manifest, GC applied, and audits
from the archive structurally identical to in-memory audits.
"""

import pickle
import shutil

import pytest

from repro.audit.engine import AuditAssignment, AuditScheduler
from repro.audit.online import OnlineAuditor
from repro.audit.spot_check import SpotChecker
from repro.audit.verdict import Verdict
from repro.errors import (
    ArchiveIntegrityError,
    HashChainError,
    RetentionError,
    StoreError,
)
from repro.experiments.parallel_audit import build_fleet
from repro.log.entries import EntryType, nondet_content, snapshot_content
from repro.log.segments import LogSegment
from repro.log.tamper_evident import TamperEvidentLog
from repro.service import AuditIngestService, format_ingest_report
from repro.store import LogArchive
from repro.store.manifest import MANIFEST_NAME


def build_sealed_log(machine="machine", segments=3, entries_per_segment=6):
    """A synthetic log with SNAPSHOT entries sealing each segment."""
    log = TamperEvidentLog(machine)
    for s in range(segments):
        for i in range(entries_per_segment):
            log.append(EntryType.TIMETRACKER, {
                "event_kind": "clock_read",
                "execution_counter": s * 100 + i,
                "branch_counter": s,
                "value": 0.25 * i,
            })
        log.append(EntryType.SNAPSHOT,
                   snapshot_content(s + 1, bytes([s + 1]) * 32, s * 100))
    return log


def archive_sealed_log(archive, log, with_snapshots=True):
    """Append each snapshot-sealed segment of ``log`` to the archive.

    ``with_snapshots`` also archives a (synthetic) boundary snapshot per
    seal, as the shipping pipeline would — truncation requires the boundary
    snapshot to be present.
    """
    records = []
    for segment in log.segments_between_snapshots():
        seals = segment.entries_of_type(EntryType.SNAPSHOT)
        sealed_by = None
        if seals and seals[-1] is segment.entries[-1]:
            sealed_by = int(seals[-1].content["snapshot_id"])
            if with_snapshots:
                archive.store_snapshot(
                    log.machine, sealed_by, {"sid": sealed_by},
                    bytes.fromhex(seals[-1].content["state_root"]),
                    500 + sealed_by)
        records.append(archive.append_segment(segment,
                                              sealed_by_snapshot=sealed_by))
    return records


class TestArchiveRoundTrip:
    def test_segments_roundtrip_bit_exact(self, tmp_path):
        log = build_sealed_log()
        archive = LogArchive(tmp_path / "a")
        archive_sealed_log(archive, log)
        assert archive.materialized_log("machine").entries == log.entries
        assert [s.entries for s in archive.segments_for("machine")] == \
            [s.entries for s in log.segments_between_snapshots()]

    def test_reopen_from_manifest(self, tmp_path):
        log = build_sealed_log()
        archive_sealed_log(archive=LogArchive(tmp_path / "a"), log=log)
        reopened = LogArchive(tmp_path / "a")
        assert reopened.recovery.clean
        assert reopened.recovery.machines == 1
        assert reopened.entry_count("machine") == len(log)
        assert reopened.materialized_log("machine").entries == log.entries
        assert reopened.head_checkpoint("machine").chain_hash == log.head_hash

    def test_deep_verify_on_open(self, tmp_path):
        archive_sealed_log(LogArchive(tmp_path / "a"), build_sealed_log())
        assert LogArchive(tmp_path / "a", deep_verify=True).recovery.clean

    def test_range_lookup(self, tmp_path):
        log = build_sealed_log(segments=5)
        archive = LogArchive(tmp_path / "a")
        archive_sealed_log(archive, log)
        record = archive.record_covering("machine", 15)
        assert record.first_sequence <= 15 <= record.last_sequence
        chunk = archive.read_range("machine", 3, 17)
        assert [e.sequence for e in chunk.entries] == list(range(3, 18))
        chunk.verify_hash_chain()
        with pytest.raises(StoreError):
            archive.record_covering("machine", 10_000)

    def test_rejects_noncontiguous_and_forked_segments(self, tmp_path):
        log = build_sealed_log()
        archive = LogArchive(tmp_path / "a")
        segments = log.segments_between_snapshots()
        archive.append_segment(segments[0], sealed_by_snapshot=1)
        with pytest.raises(HashChainError):
            archive.append_segment(segments[2])  # gap
        with pytest.raises(HashChainError):
            archive.append_segment(segments[0])  # replay/fork
        with pytest.raises(StoreError):
            archive.append_segment(LogSegment(machine="machine", entries=[],
                                              start_hash=b"\0" * 32))

    def test_rejects_tampered_chain_at_ingest(self, tmp_path):
        log = build_sealed_log(segments=1)
        # Replace an entry's content without recomputing the chain: the
        # shipment is internally inconsistent and must be refused.
        log.tamper_replace_entry(3, {"forged": True})
        with pytest.raises(HashChainError):
            LogArchive(tmp_path / "a").append_segment(log.full_segment())

    def test_authenticator_batches_keep_order(self, tmp_path, ca):
        alice = ca.issue("alice")
        log = TamperEvidentLog("alice", keypair=alice)
        auths = []
        for i in range(6):
            entry = log.append(EntryType.NONDET, nondet_content("x", i))
            auths.append(log.authenticator_for(entry))
        archive = LogArchive(tmp_path / "a")
        archive.store_authenticators("alice", auths[:4])
        archive.store_authenticators("alice", auths[4:])
        assert archive.authenticators_for("alice") == auths
        assert LogArchive(tmp_path / "a").authenticators_for("alice") == auths

    def test_snapshot_roundtrip_verifies_merkle_root(self, tmp_path):
        from repro.vm.execution import ExecutionTimestamp
        from repro.vm.snapshot import SnapshotManager
        manager = SnapshotManager()
        snapshot = manager.take({"counter": 7, "board": [1, 2, 3]},
                                ExecutionTimestamp(10, 2))
        archive = LogArchive(tmp_path / "a")
        archive.store_snapshot("m", snapshot.snapshot_id, snapshot.state,
                               snapshot.state_root,
                               manager.transfer_cost_bytes(snapshot.snapshot_id),
                               execution=snapshot.execution.to_dict())
        restored = LogArchive(tmp_path / "a").load_snapshot("m", 1)
        assert restored.state == snapshot.state
        assert restored.state_root == snapshot.state_root
        assert restored.verify_root()
        store = LogArchive(tmp_path / "a").snapshot_store("m")
        assert store.transfer_cost_bytes(1) == \
            manager.transfer_cost_bytes(snapshot.snapshot_id)


class TestCrashRecoveryAndCorruption:
    def test_orphan_files_are_discarded(self, tmp_path):
        root = tmp_path / "a"
        archive_sealed_log(LogArchive(root), build_sealed_log())
        orphan = root / "machine" / "segment-99999990-99999999.avmlogz"
        orphan.write_bytes(b"half-written segment data")
        leftover_tmp = root / (MANIFEST_NAME + ".tmp")
        leftover_tmp.write_bytes(b"{ torn manifest write")
        reopened = LogArchive(root)
        assert sorted(reopened.recovery.orphan_files) == [
            MANIFEST_NAME + ".tmp",
            "machine/segment-99999990-99999999.avmlogz"]
        assert not orphan.exists() and not leftover_tmp.exists()
        assert reopened.materialized_log("machine").entries

    def test_foreign_files_are_never_deleted(self, tmp_path):
        root = tmp_path / "a"
        archive_sealed_log(LogArchive(root), build_sealed_log())
        foreign = root / "machine" / "notes.txt"
        foreign.write_text("not the archive's file", encoding="utf-8")
        top_level = root / "README"
        top_level.write_text("also not ours", encoding="utf-8")
        reopened = LogArchive(root)
        assert reopened.recovery.orphan_files == []
        assert foreign.exists() and top_level.exists()

    def test_deep_verify_catches_forged_content_with_kept_hashes(self, tmp_path):
        from repro.log.compression import VmmLogCompressor
        from repro.log.entries import LogEntry
        root = tmp_path / "a"
        records = archive_sealed_log(LogArchive(root), build_sealed_log())
        # Forge an entry's *content* inside the file while keeping the
        # recorded chain-hash fields, so all metadata still matches.
        compressor = VmmLogCompressor()
        path = root / records[0].file_name
        segment = compressor.decompress(path.read_bytes())
        victim = segment.entries[1]
        segment.entries[1] = LogEntry(
            sequence=victim.sequence, entry_type=victim.entry_type,
            content={"forged": True}, chain_hash=victim.chain_hash,
            previous_hash=victim.previous_hash, timestamp=victim.timestamp)
        path.write_bytes(compressor.compress(segment))
        assert LogArchive(root).recovery.clean  # metadata-only open passes
        with pytest.raises(ArchiveIntegrityError, match="hash-chain"):
            LogArchive(root, deep_verify=True)

    def test_missing_data_file_is_detected(self, tmp_path):
        root = tmp_path / "a"
        records = archive_sealed_log(LogArchive(root), build_sealed_log())
        (root / records[1].file_name).unlink()
        with pytest.raises(ArchiveIntegrityError, match="missing|contiguous"):
            LogArchive(root)

    def test_truncated_segment_file_is_detected(self, tmp_path):
        root = tmp_path / "a"
        records = archive_sealed_log(LogArchive(root), build_sealed_log())
        path = root / records[0].file_name
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(ArchiveIntegrityError):
            LogArchive(root, deep_verify=True)

    def test_bitflipped_segment_file_is_detected(self, tmp_path):
        root = tmp_path / "a"
        records = archive_sealed_log(LogArchive(root), build_sealed_log())
        path = root / records[0].file_name
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        archive = LogArchive(root)  # shallow open is fine...
        with pytest.raises(ArchiveIntegrityError):  # ...reading is not
            archive.read_segment(records[0])

    def test_corrupt_manifest_is_detected(self, tmp_path):
        root = tmp_path / "a"
        archive_sealed_log(LogArchive(root), build_sealed_log())
        (root / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ArchiveIntegrityError):
            LogArchive(root)

    def test_corrupt_auth_batch_is_detected(self, tmp_path, ca):
        root = tmp_path / "a"
        alice = ca.issue("alice")
        log = TamperEvidentLog("alice", keypair=alice)
        entry = log.append(EntryType.NONDET, nondet_content("x", 1))
        archive = LogArchive(root)
        record = archive.store_authenticators(
            "alice", [log.authenticator_for(entry)])
        (root / record.file_name).write_bytes(b"not bzip2 at all")
        with pytest.raises(ArchiveIntegrityError):
            LogArchive(root).authenticators_for("alice")


class TestRetentionGC:
    def test_truncate_drops_files_and_survives_reopen(self, tmp_path):
        root = tmp_path / "a"
        log = build_sealed_log(segments=4)
        archive = LogArchive(root)
        records = archive_sealed_log(archive, log)
        before = {(root / record.file_name).exists() for record in records}
        assert before == {True}
        checkpoint = archive.truncate("machine", records[1].last_sequence)
        assert checkpoint.sequence == records[1].last_sequence
        assert not (root / records[0].file_name).exists()
        assert not (root / records[1].file_name).exists()
        assert (root / records[2].file_name).exists()
        reopened = LogArchive(root)
        assert reopened.recovery.clean
        assert reopened.retained_checkpoint("machine") == checkpoint
        suffix = reopened.materialized_log("machine")
        assert suffix.first_sequence == checkpoint.sequence + 1
        suffix.verify_hash_chain()

    def test_truncate_lands_on_sealed_boundary(self, tmp_path):
        log = build_sealed_log(segments=3, entries_per_segment=6)
        archive = LogArchive(tmp_path / "a")
        records = archive_sealed_log(archive, log)
        # Mid-segment request rounds *down* to the previous sealed boundary.
        checkpoint = archive.truncate("machine",
                                      records[1].last_sequence - 2)
        assert checkpoint.sequence == records[0].last_sequence

    def test_truncate_noop_without_boundary(self, tmp_path):
        archive = LogArchive(tmp_path / "a")
        records = archive_sealed_log(archive, build_sealed_log())
        checkpoint = archive.truncate("machine",
                                      records[0].last_sequence - 1)
        assert checkpoint.sequence == 0
        assert archive.entry_count("machine") == \
            sum(record.entry_count for record in records)

    def test_truncate_skips_boundary_whose_snapshot_is_missing(self, tmp_path):
        # The snapshot shipments were lost: sealed segments exist but no
        # boundary snapshot is archived, so GC must refuse to strand the
        # suffix without a replay start.
        archive = LogArchive(tmp_path / "a")
        records = archive_sealed_log(archive, build_sealed_log(),
                                     with_snapshots=False)
        checkpoint = archive.truncate("machine", records[-1].last_sequence)
        assert checkpoint.sequence == 0
        assert archive.entry_count("machine") == \
            sum(record.entry_count for record in records)

    def test_truncate_regression_rejected(self, tmp_path):
        archive = LogArchive(tmp_path / "a")
        records = archive_sealed_log(archive, build_sealed_log())
        archive.truncate("machine", records[1].last_sequence)
        with pytest.raises(RetentionError):
            archive.truncate("machine", records[0].last_sequence)

    def test_gc_keeps_boundary_snapshot_and_auths_in_range(self, tmp_path, ca):
        key = ca.issue("machine")
        log = TamperEvidentLog("machine", keypair=key)
        auths = []
        for s in range(3):
            for i in range(4):
                entry = log.append(EntryType.NONDET, nondet_content("x", i))
                auths.append(log.authenticator_for(entry))
            log.append(EntryType.SNAPSHOT,
                       snapshot_content(s + 1, bytes([s + 1]) * 32, s))
        archive = LogArchive(tmp_path / "a")
        from repro.crypto.merkle import MerkleTree
        from repro.vm.snapshot import paginate, serialize_state
        records = archive_sealed_log(archive, log, with_snapshots=False)
        for auth in auths:
            archive.store_authenticators("machine", [auth])
        for sid in (1, 2, 3):
            state = {"s": sid}
            root = MerkleTree(paginate(serialize_state(state))).root
            archive.store_snapshot("machine", sid, state, root, 1000 + sid)
        checkpoint = archive.truncate("machine", records[1].last_sequence)
        # Batches entirely below the checkpoint are gone; the rest survive.
        survivors = archive.authenticators_for("machine")
        assert survivors == [a for a in auths if a.sequence > checkpoint.sequence]
        # The boundary snapshot (id 2) is retained as the replay start.
        assert archive.snapshot_store("machine").snapshot_ids() == [2, 3]
        state, transfer = archive.initial_state_for("machine")
        assert state == {"s": 2} and transfer == 1002


class TestIngestService:
    def test_direct_ingest_and_queue(self, tmp_path):
        log = build_sealed_log()
        service = AuditIngestService(LogArchive(tmp_path / "a"))
        for segment in log.segments_between_snapshots():
            assert service.ingest_segment(segment)
        assert service.pending_machines() == ["machine"]
        assert service.pending_segments("machine") == 3
        assert service.stats.entries_ingested == len(log)
        assert not service.quarantine

    def test_tampered_shipment_is_quarantined(self, tmp_path):
        log = build_sealed_log()
        service = AuditIngestService(LogArchive(tmp_path / "a"))
        segments = log.segments_between_snapshots()
        assert service.ingest_segment(segments[0])
        assert not service.ingest_segment(segments[2])  # gap == fork attempt
        assert service.stats.segments_rejected == 1
        assert service.quarantine[0].machine == "machine"
        # The archive is untouched by the rejected shipment.
        assert service.archive.entry_count("machine") == len(segments[0].entries)

    def test_garbage_network_payloads_quarantine_not_crash(self, tmp_path):
        from repro.log.compression import VmmLogCompressor
        from repro.network.message import MessageKind, NetworkMessage
        service = AuditIngestService(LogArchive(tmp_path / "a"))
        garbage = [
            # bad magic, truncated bz2 stream, undecodable bytes
            NetworkMessage("m", "audit-ingest", b"not compressed",
                           kind=MessageKind.ARCHIVE_SEGMENT),
            NetworkMessage("m", "audit-ingest",
                           VmmLogCompressor.MAGIC + b"\x00\x01garbage",
                           kind=MessageKind.ARCHIVE_SEGMENT),
            NetworkMessage("m", "audit-ingest", b"\xff\xfe\xfd",
                           kind=MessageKind.ARCHIVE_AUTHENTICATORS,
                           headers={"subject": "m"}),
            NetworkMessage("m", "audit-ingest", b"{not json",
                           kind=MessageKind.ARCHIVE_SNAPSHOT),
            NetworkMessage("m", "audit-ingest", b'{"snapshot_id": 1}',
                           kind=MessageKind.ARCHIVE_SNAPSHOT),
        ]
        for message in garbage:
            service.on_message(message)  # must never raise
        assert len(service.quarantine) == len(garbage)
        assert service.archive.machines() == []

    def test_claimed_identity_mismatch_is_quarantined(self, tmp_path):
        from repro.log.compression import VmmLogCompressor
        from repro.network.message import MessageKind, NetworkMessage
        service = AuditIngestService(LogArchive(tmp_path / "a"))
        segment = build_sealed_log(segments=1).full_segment()
        service.on_message(NetworkMessage(
            "impostor", "audit-ingest",
            VmmLogCompressor().compress(segment),
            kind=MessageKind.ARCHIVE_SEGMENT))
        assert service.stats.segments_rejected == 1
        assert "claims to be from" in service.quarantine[0].reason

    def test_format_ingest_report_lists_machines(self, tmp_path):
        log = build_sealed_log()
        service = AuditIngestService(LogArchive(tmp_path / "a"))
        for segment in log.segments_between_snapshots():
            service.ingest_segment(segment)
        report = format_ingest_report(service)
        assert "machine" in report and "segments" in report


class TestArchivePicklableLog:
    def test_archived_entries_pickle_for_worker_pools(self, tmp_path):
        archive = LogArchive(tmp_path / "a")
        archive_sealed_log(archive, build_sealed_log())
        segment = archive.materialized_log("machine")
        assert pickle.loads(pickle.dumps(segment)).entries == segment.entries


# ---------------------------------------------------------------------------
# Fleet-scale end-to-end (the acceptance scenario)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def archived_fleet(tmp_path_factory):
    """A 16-machine fleet recorded while streaming to a disk archive."""
    root = tmp_path_factory.mktemp("fleet-archive") / "archive"
    fleet = build_fleet(num_machines=16, duration=6.0, snapshot_interval=2.0,
                        archive=LogArchive(root))
    return fleet, root


@pytest.mark.slow
class TestFleetArchiveEquivalence:
    def test_archive_mirrors_fleet_exactly(self, archived_fleet):
        fleet, _root = archived_fleet
        archive = fleet.ingest.archive
        assert not fleet.ingest.quarantine
        for machine in fleet.machines:
            monitor = fleet.monitors[machine]
            assert monitor.shipped_through == len(monitor.log)
            assert archive.materialized_log(machine).entries == \
                monitor.log.full_segment().entries
            assert [s.entries for s in archive.segments_for(machine)] == \
                [s.entries for s in monitor.log.segments_between_snapshots()]
            peer = fleet.monitors[fleet.peers[machine]]
            assert archive.authenticators_for(machine) == \
                peer.authenticators_from(machine)

    def test_restart_then_audits_identical(self, archived_fleet):
        fleet, root = archived_fleet
        reopened = LogArchive(root)  # the "process restart"
        assert reopened.recovery.clean
        assert reopened.recovery.machines == 16
        service = AuditIngestService(reopened)
        for machine in fleet.machines:
            memory = fleet.make_auditor(machine).audit(fleet.monitors[machine])
            archived = service.audit_machine(
                fleet.make_auditor(machine, collect=False), machine)
            # Full structural equality: verdict, phase, counters, costs,
            # replay report, evidence — everything.
            assert memory == archived
            assert memory.verdict is Verdict.PASS

    def test_engine_and_spot_checks_from_archive(self, archived_fleet):
        fleet, root = archived_fleet
        service = AuditIngestService(LogArchive(root))
        assignments = []
        for machine in fleet.machines:
            auditor = fleet.make_auditor(machine, collect=False)
            service.prepare_auditor(auditor, machine)
            assignments.append(AuditAssignment(auditor,
                                               service.target_for(machine)))
        report = AuditScheduler(workers=2, executor="thread").audit_fleet(
            assignments)
        assert report.all_passed
        machine = fleet.machines[0]
        live = SpotChecker(fleet.make_auditor(machine)).check_chunk(
            fleet.monitors[machine], 1, 1)
        auditor = fleet.make_auditor(machine, collect=False)
        service.prepare_auditor(auditor, machine)
        archived = SpotChecker(auditor).check_chunk(
            service.target_for(machine), 1, 1)
        assert live.result == archived.result
        assert live.snapshot_bytes == archived.snapshot_bytes

    def test_online_auditor_runs_from_archive(self, archived_fleet):
        fleet, root = archived_fleet
        service = AuditIngestService(LogArchive(root))
        machine = fleet.machines[0]
        auditor = fleet.make_auditor(machine, collect=False)
        online = OnlineAuditor(auditor, service.target_for(machine),
                               fleet.scheduler)
        record = online.run_once()
        assert record is not None and record.verdict is Verdict.PASS
        assert online.lag_entries == 0

    def test_gc_then_audit_equivalence(self, archived_fleet, tmp_path):
        fleet, root = archived_fleet
        # Work on a copy so the other tests keep the full archive.
        gc_root = tmp_path / "gc-archive"
        shutil.copytree(root, gc_root)
        archive = LogArchive(gc_root)
        service = AuditIngestService(archive)
        for machine in fleet.machines[:4]:
            head = archive.head_checkpoint(machine)
            checkpoint = archive.truncate(machine, head.sequence // 2)
            assert 0 < checkpoint.sequence < head.sequence
            archived = service.audit_machine(
                fleet.make_auditor(machine, collect=False), machine)
            assert archived.verdict is Verdict.PASS
            # In-memory equivalent: audit the same suffix from the boundary
            # snapshot, with the same (GC-surviving) authenticators.
            monitor = fleet.monitors[machine]
            suffix = monitor.log.segment(checkpoint.sequence + 1,
                                         len(monitor.log))
            state, snapshot_bytes = archive.initial_state_for(machine)
            auditor = fleet.make_auditor(machine, collect=False)
            auditor.collect_authenticators(
                machine, archive.authenticators_for(machine))
            memory = auditor.audit_segment(machine, suffix,
                                           initial_state=state,
                                           snapshot_bytes=snapshot_bytes)
            assert memory == archived


@pytest.mark.slow
class TestLossyShipping:
    def test_dropped_shipment_is_reshipped_not_skipped(self, tmp_path):
        """A partition to the ingest endpoint must not desynchronize the
        shipping cursor: the entries are re-shipped once it heals."""
        from repro.log.entries import nondet_content as nc
        fleet = build_fleet(num_machines=2, duration=3.0,
                            snapshot_interval=1.0,
                            archive=LogArchive(tmp_path / "a"))
        machine = fleet.machines[0]
        monitor = fleet.monitors[machine]
        network = monitor.network
        archive = fleet.ingest.archive
        assert monitor.shipped_through == len(monitor.log)

        network.partition(machine, fleet.ingest.identity)
        monitor.log.append(EntryType.NONDET, nc("late-event", 1))
        assert not monitor.ship_archive_tail()  # dropped at send time
        assert monitor.shipped_through == len(monitor.log) - 1
        assert not monitor.archive_shipping_complete

        network.heal_partition(machine, fleet.ingest.identity)
        assert monitor.ship_archive_tail()
        assert monitor.archive_shipping_complete
        fleet.scheduler.run_until(fleet.scheduler.clock.now + 1.0)
        assert monitor.shipped_through == len(monitor.log)
        assert archive.materialized_log(machine).entries == \
            monitor.log.full_segment().entries
        assert not fleet.ingest.quarantine


@pytest.mark.slow
class TestFleetArchiveTamperEvidence:
    def test_fail_evidence_identical_from_archive(self, tmp_path):
        """A tampered log fails the archive-backed audit with evidence
        byte-identical to the in-memory audit's."""
        fleet = build_fleet(num_machines=4, duration=5.0,
                            snapshot_interval=2.0)
        machine = fleet.machines[0]
        monitor = fleet.monitors[machine]
        peer = fleet.monitors[fleet.peers[machine]]
        covered = max(a.sequence for a in peer.authenticators_from(machine))
        # Tamper *before* shipping: recompute the chain so the log is
        # internally consistent (and passes ingest), but no longer matches
        # the authenticators the machine issued.
        target_sequence = min(5, covered)
        monitor.log.tamper_replace_entry(
            target_sequence,
            {"event_kind": "clock_read", "execution_counter": 1,
             "branch_counter": 0, "value": 99.0},
            recompute_chain=True)
        service = AuditIngestService(LogArchive(tmp_path / "a"))
        for name in fleet.machines:
            mon = fleet.monitors[name]
            for segment in mon.log.segments_between_snapshots():
                seals = segment.entries_of_type(EntryType.SNAPSHOT)
                sealed_by = None
                if seals and seals[-1] is segment.entries[-1]:
                    sealed_by = int(seals[-1].content["snapshot_id"])
                    snapshot = mon.snapshots.get(sealed_by)
                    service.ingest_snapshot(
                        name, sealed_by, snapshot.state, snapshot.state_root,
                        mon.snapshots.transfer_cost_bytes(sealed_by),
                        execution=snapshot.execution.to_dict())
                assert service.ingest_segment(segment,
                                              sealed_by_snapshot=sealed_by)
            other = fleet.monitors[fleet.peers[name]]
            service.ingest_authenticators(name, other.authenticators_from(name))

        memory = fleet.make_auditor(machine).audit(monitor)
        archived = service.audit_machine(
            fleet.make_auditor(machine, collect=False), machine)
        assert memory.verdict is Verdict.FAIL
        assert memory == archived  # evidence included, field for field
        assert archived.evidence is not None
        assert archived.evidence.verify(fleet.keystore,
                                        fleet.reference_images[machine])


class TestArchiveParseCaches:
    """The stat-validated parse caches for immutable archive files.

    Repeated audits through one archive must not re-read authenticator
    batches, keyframes or delta chains — but the caches have to be
    invisible: cached fetches return structurally equal, *independent*
    results, and any change to an underlying file forces a fresh parse.
    """

    def _snapshot_chain(self, root, machine="machine", snapshots=4):
        from repro.vm.execution import ExecutionTimestamp
        from repro.vm.snapshot import SnapshotManager
        manager = SnapshotManager(keyframe_interval=10)
        archive = LogArchive(root)
        for index in range(snapshots):
            state = {"counter": index,
                     "items": {f"key-{j}": j * (index + 1) for j in range(40)}}
            snapshot = manager.take(state, ExecutionTimestamp(index * 10, index))
            delta = manager._deltas[snapshot.snapshot_id]
            if snapshot.snapshot_id == 1:
                archive.store_snapshot(
                    machine, 1, state, snapshot.state_root, 500,
                    page_size=manager.page_size, page_count=delta.page_count)
            else:
                archive.store_snapshot_delta(
                    machine, snapshot.snapshot_id, delta.base_snapshot_id,
                    delta.changed_pages, delta.page_count,
                    delta.state_root, 100, page_size=delta.page_size)
        return archive, manager

    def test_cached_snapshot_fetches_match_fresh_archive(self, tmp_path):
        archive, manager = self._snapshot_chain(tmp_path / "a")
        warm_first = archive.load_snapshot("machine", 4)
        warm_again = archive.load_snapshot("machine", 4)  # memo hit
        cold = LogArchive(tmp_path / "a").load_snapshot("machine", 4)
        reference = manager.get(4)
        for snapshot in (warm_first, warm_again, cold):
            assert snapshot.state == reference.state
            assert snapshot.state_root == reference.state_root
            assert snapshot.verify_root()

    def test_cached_fetches_return_independent_state_dicts(self, tmp_path):
        archive, _ = self._snapshot_chain(tmp_path / "a")
        for snapshot_id in (1, 4):  # keyframe cache and pages memo
            first = archive.load_snapshot("machine", snapshot_id)
            second = archive.load_snapshot("machine", snapshot_id)
            first.state["counter"] = -999
            assert second.state["counter"] != -999, (
                f"snapshot {snapshot_id}: cached fetches share a state dict")

    def test_pages_memo_is_invalidated_when_a_chain_file_changes(
            self, tmp_path):
        archive, _ = self._snapshot_chain(tmp_path / "a")
        archive.load_snapshot("machine", 4)  # warm the memo
        # Corrupt a file in the *middle* of the dependency chain; a stale
        # memo would happily keep serving snapshot 4 without noticing.
        victim = archive.root / \
            archive._snapshot_index["machine"][3].file_name
        victim.write_text(victim.read_text("utf-8")[:40])
        with pytest.raises(ArchiveIntegrityError):
            archive.load_snapshot("machine", 4)

    def test_keyframe_cache_is_invalidated_on_rewrite(self, tmp_path):
        archive, _ = self._snapshot_chain(tmp_path / "a")
        archive.load_snapshot("machine", 1)
        victim = archive.root / \
            archive._snapshot_index["machine"][1].file_name
        victim.write_text("{not json")
        with pytest.raises(ArchiveIntegrityError):
            archive.load_snapshot("machine", 1)

    def test_caches_stay_bounded(self, tmp_path):
        archive, _ = self._snapshot_chain(tmp_path / "a", snapshots=12)
        for snapshot_id in range(2, 13):
            archive.load_snapshot("machine", snapshot_id)
        assert len(archive._snapshot_pages_cache) <= \
            archive._SNAPSHOT_PAGES_CACHE_LIMIT
        assert len(archive._keyframe_page_cache) <= \
            archive._KEYFRAME_CACHE_LIMIT

    def test_authenticator_cache_matches_and_invalidates(self, tmp_path, ca):
        alice = ca.issue("alice")
        log = TamperEvidentLog("alice", keypair=alice)
        auths = [log.authenticator_for(
                     log.append(EntryType.NONDET, nondet_content("x", i)))
                 for i in range(6)]
        archive = LogArchive(tmp_path / "a")
        record = archive.store_authenticators("alice", auths)
        assert archive.authenticators_for("alice") == auths
        assert archive.authenticators_for("alice") == auths  # cache hit
        (archive.root / record.file_name).write_bytes(b"\x00garbage")
        with pytest.raises(ArchiveIntegrityError,
                           match="corrupt authenticator batch"):
            archive.authenticators_for("alice")
