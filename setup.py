"""Legacy build shim.

All project metadata lives in ``pyproject.toml``; this file exists so
environments whose setuptools cannot build PEP 660 editable wheels (for
example offline containers without the ``wheel`` package) can still do
``python setup.py develop``.
"""

from setuptools import setup

setup()
