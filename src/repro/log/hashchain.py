"""Hash-chain computation and verification.

Section 4.3: ``h_i = H(h_{i-1} || s_i || t_i || H(c_i))`` with ``h_0 := 0``.
Because the hash is second-pre-image resistant, modifying, reordering or
dropping any entry breaks the chain and is detected when the segment is
checked against a previously issued authenticator.

Verification comes in two forms.  :func:`verify_chain` checks a segment in
one pass.  :func:`verify_chain_incremental` checks a segment given a
:class:`ChainCheckpoint` — the ``(sequence, chain hash)`` pair immediately
before its first entry, e.g. taken from the preceding chunk's last entry or
from an authenticator the auditor already holds.  That is what lets the
parallel audit engine hand disjoint chunks of one log to different workers:
each worker proves its chunk extends its predecessor's checkpoint without
rescanning the prefix, and the checkpoints it returns tile back into a proof
for the whole log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.crypto import hashing
from repro.errors import HashChainError, LogFormatError
from repro.log.entries import (
    EntryType, LogEntry, encode_content, encode_content_json,
    seed_encoded_content,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.log.authenticator import Authenticator


#: the UTF-8 wire names, encoded once — ``_expected_chain_hash`` runs once
#: per entry on the audit hot path
_WIRE_NAME_BYTES = {entry_type: entry_type.wire_name.encode("utf-8")
                    for entry_type in EntryType}


def chain_hash(previous_hash: bytes, sequence: int, entry_type: EntryType,
               content: dict) -> bytes:
    """Compute ``h_i`` from ``h_{i-1}`` and the entry fields."""
    content_hash = hashing.hash_bytes(encode_content(content))
    return hashing.hash_concat(
        previous_hash,
        hashing.encode_int(sequence),
        _WIRE_NAME_BYTES[entry_type],
        content_hash,
    )


def _expected_chain_hash(previous_hash: bytes, entry: LogEntry) -> bytes:
    """``h_i`` for an existing entry, using its cached content encoding."""
    return hashing.hash_concat(
        previous_hash,
        hashing.encode_int(entry.sequence),
        _WIRE_NAME_BYTES[entry.entry_type],
        entry.content_hash(),
    )


def _legacy_json_matches(previous_hash: bytes, entry: LogEntry) -> bool:
    """Re-check the chain under the pre-typed canonical-JSON encoding.

    Logs recorded before the typed content codec committed their chains to
    canonical JSON bytes.  When such an entry is rebuilt from a materialized
    dict (e.g. the JSON-lines debug store or a v1 archive), its cached
    encoding is the *typed* one and the fast-path hash comparison fails even
    though the entry is honest.  This fallback recomputes the hash over the
    legacy JSON bytes; on a match it re-seeds the entry's cache with them so
    later wire encoding and cost accounting reuse the committed encoding.

    Both encodings are injective and disjoint on the first byte (typed tags
    0x01..0x1F vs ``{``), so accepting either never admits content that
    differs from what the recorder hashed.
    """
    try:
        legacy = encode_content_json(entry.content)
    except LogFormatError:
        return False
    expected = hashing.hash_concat(
        previous_hash,
        hashing.encode_int(entry.sequence),
        entry.entry_type.wire_name.encode("utf-8"),
        hashing.hash_bytes(legacy),
    )
    if expected != entry.chain_hash:
        return False
    seed_encoded_content(entry, legacy)
    return True


def _matches_chain(previous_hash: bytes, entry: LogEntry) -> bool:
    """True when ``entry`` hashes to its recorded chain value."""
    if _expected_chain_hash(previous_hash, entry) == entry.chain_hash:
        return True
    return _legacy_json_matches(previous_hash, entry)


def verify_entry(entry: LogEntry) -> bool:
    """Check a single entry's chain hash against its own fields."""
    return _matches_chain(entry.previous_hash, entry)


@dataclass(frozen=True)
class ChainCheckpoint:
    """The chain state immediately *after* entry ``sequence``.

    ``sequence == 0`` with the zero hash is the state before the first entry
    of a log.  A checkpoint is all a verifier needs to continue checking the
    chain from that point on — it never has to look at earlier entries.
    """

    sequence: int
    chain_hash: bytes

    @staticmethod
    def genesis() -> "ChainCheckpoint":
        """The checkpoint before the very first log entry (``h_0 = 0``)."""
        return ChainCheckpoint(sequence=0, chain_hash=hashing.ZERO_HASH)

    @staticmethod
    def from_entry(entry: LogEntry) -> "ChainCheckpoint":
        """Checkpoint after a verified entry."""
        return ChainCheckpoint(sequence=entry.sequence, chain_hash=entry.chain_hash)

    @staticmethod
    def from_authenticator(auth: "Authenticator") -> "ChainCheckpoint":
        """Checkpoint after the entry a (verified) authenticator commits to."""
        return ChainCheckpoint(sequence=auth.sequence, chain_hash=auth.chain_hash)


def extend_checkpoint(checkpoint: ChainCheckpoint,
                      entry: LogEntry) -> ChainCheckpoint:
    """Verify that one entry extends ``checkpoint``; return the new checkpoint.

    This is the single step of :func:`verify_chain_incremental`, exposed so a
    *streaming* verifier (:mod:`repro.audit.stream`) can check entries as they
    are decoded, holding only the current checkpoint — O(1) state no matter
    how long the log is.  Raises :class:`HashChainError` on any break.
    """
    if entry.sequence != checkpoint.sequence + 1:
        raise HashChainError(
            f"non-contiguous sequence numbers: "
            f"{checkpoint.sequence} -> {entry.sequence}")
    if entry.previous_hash != checkpoint.chain_hash:
        raise HashChainError(
            f"chain break at sequence {entry.sequence}: previous hash mismatch")
    if not verify_entry(entry):
        raise HashChainError(
            f"entry {entry.sequence} does not hash to its recorded chain value")
    return ChainCheckpoint(sequence=entry.sequence, chain_hash=entry.chain_hash)


def extend_checkpoint_batch(checkpoint: ChainCheckpoint,
                            entries: Sequence[LogEntry]) -> ChainCheckpoint:
    """Verify that a batch of entries extends ``checkpoint``, in one pass.

    Semantically identical to folding :func:`extend_checkpoint` over the
    batch — same checks, same error messages, same resulting checkpoint —
    but the chain state is threaded through two locals instead of a
    :class:`ChainCheckpoint` allocation per entry, which matters when the
    streaming audit steps the chain over decoded record batches.  Raises
    :class:`HashChainError` on any break.
    """
    sequence = checkpoint.sequence
    previous = checkpoint.chain_hash
    for entry in entries:
        if entry.sequence != sequence + 1:
            raise HashChainError(
                f"non-contiguous sequence numbers: "
                f"{sequence} -> {entry.sequence}")
        if entry.previous_hash != previous:
            raise HashChainError(
                f"chain break at sequence {entry.sequence}: "
                f"previous hash mismatch")
        if not _matches_chain(previous, entry):
            raise HashChainError(
                f"entry {entry.sequence} does not hash to its recorded "
                f"chain value")
        sequence = entry.sequence
        previous = entry.chain_hash
    if not entries:
        return checkpoint
    return ChainCheckpoint(sequence=sequence, chain_hash=previous)


def verify_chain_incremental(entries: Sequence[LogEntry],
                             checkpoint: ChainCheckpoint) -> ChainCheckpoint:
    """Verify that ``entries`` extend ``checkpoint`` by an unbroken chain.

    The first entry must carry sequence ``checkpoint.sequence + 1`` and link
    to ``checkpoint.chain_hash``; every later entry must extend its
    predecessor.  Returns the checkpoint after the last entry (the input
    checkpoint when ``entries`` is empty) so verification can resume — the
    chunk-parallel audit checks ``returned == next chunk's checkpoint``.
    Raises :class:`HashChainError` on any break.
    """
    return extend_checkpoint_batch(checkpoint, entries)


def verify_chain(entries: Sequence[LogEntry], *,
                 expected_start_hash: bytes | None = None) -> None:
    """Verify that ``entries`` form an unbroken hash chain.

    ``expected_start_hash`` is the chain value immediately *before* the first
    entry (``h_{i-1}``); when auditing a segment that does not start at the
    beginning of the log it comes from the preceding snapshot entry or an
    earlier authenticator.  Raises :class:`HashChainError` on any break.
    """
    if not entries:
        return
    if expected_start_hash is not None \
            and entries[0].previous_hash != expected_start_hash:
        raise HashChainError(
            f"chain break at sequence {entries[0].sequence}: previous hash mismatch")
    start = ChainCheckpoint(sequence=entries[0].sequence - 1,
                            chain_hash=entries[0].previous_hash)
    verify_chain_incremental(entries, start)


def is_chain_intact(entries: Iterable[LogEntry], *,
                    expected_start_hash: bytes | None = None) -> bool:
    """Boolean form of :func:`verify_chain`."""
    try:
        verify_chain(list(entries), expected_start_hash=expected_start_hash)
    except HashChainError:
        return False
    return True
