"""Hash-chain computation and verification.

Section 4.3: ``h_i = H(h_{i-1} || s_i || t_i || H(c_i))`` with ``h_0 := 0``.
Because the hash is second-pre-image resistant, modifying, reordering or
dropping any entry breaks the chain and is detected when the segment is
checked against a previously issued authenticator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto import hashing
from repro.errors import HashChainError
from repro.log.entries import EntryType, LogEntry, encode_content


def chain_hash(previous_hash: bytes, sequence: int, entry_type: EntryType,
               content: dict) -> bytes:
    """Compute ``h_i`` from ``h_{i-1}`` and the entry fields."""
    content_hash = hashing.hash_bytes(encode_content(content))
    return hashing.hash_concat(
        previous_hash,
        hashing.encode_int(sequence),
        entry_type.wire_name.encode("utf-8"),
        content_hash,
    )


def verify_entry(entry: LogEntry) -> bool:
    """Check a single entry's chain hash against its own fields."""
    expected = chain_hash(entry.previous_hash, entry.sequence, entry.entry_type,
                          entry.content)
    return expected == entry.chain_hash


def verify_chain(entries: Sequence[LogEntry], *,
                 expected_start_hash: bytes | None = None) -> None:
    """Verify that ``entries`` form an unbroken hash chain.

    ``expected_start_hash`` is the chain value immediately *before* the first
    entry (``h_{i-1}``); when auditing a segment that does not start at the
    beginning of the log it comes from the preceding snapshot entry or an
    earlier authenticator.  Raises :class:`HashChainError` on any break.
    """
    previous: bytes | None = expected_start_hash
    previous_sequence: int | None = None
    for entry in entries:
        if previous is not None and entry.previous_hash != previous:
            raise HashChainError(
                f"chain break at sequence {entry.sequence}: previous hash mismatch")
        if previous_sequence is not None and entry.sequence != previous_sequence + 1:
            raise HashChainError(
                f"non-contiguous sequence numbers: {previous_sequence} -> {entry.sequence}")
        if not verify_entry(entry):
            raise HashChainError(
                f"entry {entry.sequence} does not hash to its recorded chain value")
        previous = entry.chain_hash
        previous_sequence = entry.sequence


def is_chain_intact(entries: Iterable[LogEntry], *,
                    expected_start_hash: bytes | None = None) -> bool:
    """Boolean form of :func:`verify_chain`."""
    try:
        verify_chain(list(entries), expected_start_hash=expected_start_hash)
    except HashChainError:
        return False
    return True
