"""Log segments and k-chunks.

A :class:`LogSegment` is the unit an auditor downloads: a contiguous run of
entries plus the chain hash immediately before the first entry.  A *k-chunk*
(Section 6.12) is ``k`` consecutive snapshot-delimited segments audited
together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import AuthenticatorMismatchError, SegmentError
from repro.log.authenticator import Authenticator
from repro.log.entries import EntryType, LogEntry
from repro.log.hashchain import ChainCheckpoint, verify_chain


@dataclass
class LogSegment:
    """A contiguous run of log entries from one machine."""

    machine: str
    entries: List[LogEntry]
    start_hash: bytes

    # -- basic queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def first_sequence(self) -> int:
        if not self.entries:
            raise SegmentError("empty segment has no first sequence")
        return self.entries[0].sequence

    @property
    def last_sequence(self) -> int:
        if not self.entries:
            raise SegmentError("empty segment has no last sequence")
        return self.entries[-1].sequence

    @property
    def end_hash(self) -> bytes:
        """Chain hash after the last entry (``start_hash`` if empty)."""
        return self.entries[-1].chain_hash if self.entries else self.start_hash

    def start_checkpoint(self) -> ChainCheckpoint:
        """Chain state immediately before this segment's first entry."""
        if not self.entries:
            raise SegmentError("empty segment has no checkpoints")
        return ChainCheckpoint(sequence=self.first_sequence - 1,
                               chain_hash=self.start_hash)

    def end_checkpoint(self) -> ChainCheckpoint:
        """Chain state immediately after this segment's last entry."""
        if not self.entries:
            raise SegmentError("empty segment has no checkpoints")
        return ChainCheckpoint(sequence=self.last_sequence,
                               chain_hash=self.end_hash)

    def entries_of_type(self, entry_type: EntryType) -> List[LogEntry]:
        return [e for e in self.entries if e.entry_type is entry_type]

    def size_bytes(self) -> int:
        return sum(entry.size_bytes() for entry in self.entries)

    # -- verification -------------------------------------------------------

    def verify_hash_chain(self) -> None:
        """Raise :class:`HashChainError` if the segment's chain is broken."""
        verify_chain(self.entries, expected_start_hash=self.start_hash)

    def verify_against_authenticators(self, authenticators: Iterable[Authenticator],
                                      keystore) -> int:
        """Check the segment against previously issued authenticators.

        Every authenticator whose sequence number falls inside the segment
        must match the corresponding entry's chain hash exactly; otherwise the
        machine has tampered with (or forked) its log.  Returns the number of
        authenticators checked.  Raises :class:`AuthenticatorMismatchError`
        on any mismatch and :class:`HashChainError` if the chain itself is
        broken.
        """
        self.verify_hash_chain()
        if not self.entries:
            return 0
        by_sequence: Dict[int, LogEntry] = {e.sequence: e for e in self.entries}
        checked = 0
        for auth in authenticators:
            if auth.machine != self.machine:
                continue
            entry = by_sequence.get(auth.sequence)
            if entry is None:
                continue
            if not auth.verify(keystore):
                raise AuthenticatorMismatchError(
                    f"authenticator for sequence {auth.sequence} has an invalid signature")
            if entry.chain_hash != auth.chain_hash:
                raise AuthenticatorMismatchError(
                    f"log entry {auth.sequence} does not match the authenticator "
                    f"issued by {self.machine!r} (log was tampered with or forked)")
            checked += 1
        return checked

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "machine": self.machine,
            "start_hash": self.start_hash.hex(),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @staticmethod
    def from_dict(data: Dict) -> "LogSegment":
        return LogSegment(
            machine=str(data["machine"]),
            start_hash=bytes.fromhex(data["start_hash"]),
            entries=[LogEntry.from_dict(e) for e in data["entries"]],
        )


def concatenate_segments(segments: Sequence[LogSegment]) -> LogSegment:
    """Join consecutive segments into one (used to build k-chunks).

    The segments must belong to the same machine and be contiguous: each
    segment's ``start_hash`` must equal the previous segment's ``end_hash``.
    """
    if not segments:
        raise SegmentError("cannot concatenate zero segments")
    machine = segments[0].machine
    entries: List[LogEntry] = []
    expected_hash = segments[0].start_hash
    for segment in segments:
        if segment.machine != machine:
            raise SegmentError("cannot concatenate segments from different machines")
        if segment.start_hash != expected_hash:
            raise SegmentError("segments are not contiguous (start hash mismatch)")
        entries.extend(segment.entries)
        expected_hash = segment.end_hash
    return LogSegment(machine=machine, entries=entries,
                      start_hash=segments[0].start_hash)


def partition_segments(segments: Sequence[LogSegment],
                       max_chunks: int) -> List[LogSegment]:
    """Group consecutive segments into at most ``max_chunks`` contiguous chunks.

    This is the audit engine's work division: the snapshot-delimited segments
    of one log are tiled (no overlap, unlike :func:`make_chunks`) into chunks
    of near-equal segment count, each of which can be verified — and, because
    chunk boundaries sit on snapshots, replayed — independently.  Returns
    fewer chunks when there are fewer segments than ``max_chunks``.
    """
    if max_chunks < 1:
        raise SegmentError(f"chunk count must be >= 1, got {max_chunks}")
    if not segments:
        return []
    count = min(max_chunks, len(segments))
    base, extra = divmod(len(segments), count)
    chunks: List[LogSegment] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(concatenate_segments(segments[start:start + size]))
        start += size
    return chunks


def make_chunks(segments: Sequence[LogSegment], k: int,
                skip_initial: bool = False) -> List[LogSegment]:
    """Build every k-chunk of consecutive segments (sliding window, stride 1).

    ``skip_initial`` drops chunks that start at the very beginning of the log,
    matching the paper's exclusion of atypical start-of-log chunks in the
    Figure 9 experiment.
    """
    if k < 1:
        raise SegmentError(f"chunk size must be >= 1, got {k}")
    chunks: List[LogSegment] = []
    start = 1 if skip_initial else 0
    for i in range(start, len(segments) - k + 1):
        chunks.append(concatenate_segments(segments[i:i + k]))
    return chunks
