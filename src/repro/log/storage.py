"""Serialisation of logs, segments and authenticators.

Logs travel over the (simulated) network during audits and can be persisted to
disk for offline auditing, so both byte-level and file-level round-trips are
supported.  The wire format is JSON-lines: one JSON object per entry, preceded
by a header object.  JSON keeps the format debuggable; the compression module
(:mod:`repro.log.compression`) handles making it small.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import LogFormatError
from repro.log.authenticator import Authenticator
from repro.log.entries import LogEntry
from repro.log.segments import LogSegment

_FORMAT_VERSION = 1


def segment_to_bytes(segment: LogSegment) -> bytes:
    """Serialise a segment to JSON-lines bytes."""
    header = {
        "format_version": _FORMAT_VERSION,
        "kind": "log_segment",
        "machine": segment.machine,
        "start_hash": segment.start_hash.hex(),
        "entry_count": len(segment.entries),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(entry.to_dict(), sort_keys=True) for entry in segment.entries)
    return ("\n".join(lines) + "\n").encode("utf-8")


def segment_from_bytes(data: bytes) -> LogSegment:
    """Parse a segment previously produced by :func:`segment_to_bytes`."""
    lines = data.decode("utf-8").splitlines()
    if not lines:
        raise LogFormatError("empty segment data")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"bad segment header: {exc}") from exc
    if header.get("kind") != "log_segment":
        raise LogFormatError(f"not a log segment: kind={header.get('kind')!r}")
    if header.get("format_version") != _FORMAT_VERSION:
        raise LogFormatError(f"unsupported format version {header.get('format_version')!r}")
    entries: List[LogEntry] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            entries.append(LogEntry.from_dict(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"bad log entry line: {exc}") from exc
    if len(entries) != int(header.get("entry_count", len(entries))):
        raise LogFormatError(
            f"entry count mismatch: header says {header.get('entry_count')}, "
            f"found {len(entries)}")
    return LogSegment(machine=str(header["machine"]),
                      start_hash=bytes.fromhex(header["start_hash"]),
                      entries=entries)


def write_segment(segment: LogSegment, path: Union[str, Path]) -> int:
    """Write a segment to ``path``; returns the number of bytes written."""
    data = segment_to_bytes(segment)
    Path(path).write_bytes(data)
    return len(data)


def read_segment(path: Union[str, Path]) -> LogSegment:
    """Read a segment previously written with :func:`write_segment`."""
    return segment_from_bytes(Path(path).read_bytes())


def authenticators_to_bytes(authenticators: Iterable[Authenticator]) -> bytes:
    """Serialise a collection of authenticators to JSON-lines bytes."""
    lines = [json.dumps({"format_version": _FORMAT_VERSION, "kind": "authenticators"},
                        sort_keys=True)]
    lines.extend(json.dumps(auth.to_dict(), sort_keys=True) for auth in authenticators)
    return ("\n".join(lines) + "\n").encode("utf-8")


def authenticators_from_bytes(data: bytes) -> List[Authenticator]:
    """Parse authenticators serialised by :func:`authenticators_to_bytes`."""
    lines = data.decode("utf-8").splitlines()
    if not lines:
        raise LogFormatError("empty authenticator data")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"bad authenticator header: {exc}") from exc
    if header.get("kind") != "authenticators":
        raise LogFormatError(f"not an authenticator file: kind={header.get('kind')!r}")
    result = []
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            result.append(Authenticator.from_dict(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"bad authenticator line: {exc}") from exc
    return result
