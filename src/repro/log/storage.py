"""Serialisation of logs, segments and authenticators.

Logs travel over the (simulated) network during audits and can be persisted to
disk for offline auditing, so both byte-level and file-level round-trips are
supported.  The wire format is JSON-lines: one JSON object per entry, preceded
by a header object.  JSON keeps the format debuggable; the compression module
(:mod:`repro.log.compression`) handles making it small.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from repro.errors import LogFormatError
from repro.log.authenticator import Authenticator
from repro.log.codec import require_format_version
from repro.log.entries import EntryType, LogEntry
from repro.log.segments import LogSegment

#: version of the JSON-lines debug format (not a wire codec version; the
#: binary/compressed wire formats live in :mod:`repro.log.codec`)
_FORMAT_VERSION = 1

#: one wire-name -> EntryType table for the line-oriented readers, instead of
#: a per-line ``EntryType(value)`` enum call (which probes the enum machinery
#: and raises/catches on the hot path)
_WIRE_TYPES = {entry_type.value: entry_type for entry_type in EntryType}


def _entry_from_row(row: dict) -> LogEntry:
    """Fast row -> entry used by both line-oriented readers.

    Behaviourally identical to ``LogEntry.from_dict`` (same fields, same
    :class:`LogFormatError` on malformed rows) but resolves the entry type
    through the shared :data:`_WIRE_TYPES` table and constructs the entry
    directly, so per-line work is one dict lookup plus the two fixed-width
    ``bytes.fromhex`` conversions — no enum probing, no redundant
    re-validation of hex lengths the writer already guaranteed.
    """
    try:
        entry_type = _WIRE_TYPES.get(row["type"])
        if entry_type is None:
            raise LogFormatError(
                f"malformed log entry: {row['type']!r} is not a valid EntryType")
        return LogEntry(
            sequence=int(row["sequence"]),
            entry_type=entry_type,
            content=dict(row["content"]),
            chain_hash=bytes.fromhex(row["chain_hash"]),
            previous_hash=bytes.fromhex(row["previous_hash"]),
            timestamp=float(row.get("timestamp", 0.0)),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise LogFormatError(f"malformed log entry: {exc}") from exc


def segment_to_bytes(segment: LogSegment) -> bytes:
    """Serialise a segment to JSON-lines bytes."""
    header = {
        "format_version": _FORMAT_VERSION,
        "kind": "log_segment",
        "machine": segment.machine,
        "start_hash": segment.start_hash.hex(),
        "entry_count": len(segment.entries),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(entry.to_dict(), sort_keys=True) for entry in segment.entries)
    return ("\n".join(lines) + "\n").encode("utf-8")


def segment_from_bytes(data: bytes) -> LogSegment:
    """Parse a segment previously produced by :func:`segment_to_bytes`."""
    try:
        lines = data.decode("utf-8").splitlines()
    except UnicodeDecodeError as exc:
        raise LogFormatError(f"segment data is not valid UTF-8: {exc}") from exc
    if not lines:
        raise LogFormatError("empty segment data")
    header = parse_segment_header(lines[0])
    entries: List[LogEntry] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            entries.append(_entry_from_row(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"bad log entry line: {exc}") from exc
    if len(entries) != int(header.get("entry_count", len(entries))):
        raise LogFormatError(
            f"entry count mismatch: header says {header.get('entry_count')}, "
            f"found {len(entries)}")
    return LogSegment(machine=str(header["machine"]),
                      start_hash=bytes.fromhex(header["start_hash"]),
                      entries=entries)


def write_segment(segment: LogSegment, path: Union[str, Path]) -> int:
    """Write a segment to ``path``; returns the number of bytes written."""
    data = segment_to_bytes(segment)
    Path(path).write_bytes(data)
    return len(data)


def read_segment(path: Union[str, Path]) -> LogSegment:
    """Read a segment previously written with :func:`write_segment`."""
    return segment_from_bytes(Path(path).read_bytes())


def parse_segment_header(line: str) -> dict:
    """Parse and validate the header line of a serialised segment."""
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"bad segment header: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != "log_segment":
        kind = header.get("kind") if isinstance(header, dict) else None
        raise LogFormatError(f"not a log segment: kind={kind!r}")
    require_format_version(header.get("format_version"),
                           what="log segment", supported=(_FORMAT_VERSION,))
    return header


def iter_segment_entries(source: Union[str, Path, IO[str]]) -> Iterator[LogEntry]:
    """Stream the entries of a serialised segment, one at a time.

    ``source`` is a path to a file written by :func:`write_segment`, or an
    open text file object positioned at the header line.  Entries are parsed
    lazily, so a multi-gigabyte segment file never has to be held in memory;
    the header is validated (kind and format version) before the first entry
    is yielded.  The per-entry hash chain is *not* verified here — callers
    feed the stream to :func:`repro.log.hashchain.verify_chain_incremental`.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _iter_entries(handle)
    else:
        yield from _iter_entries(source)


def _iter_entries(handle: IO[str]) -> Iterator[LogEntry]:
    header_line = handle.readline()
    if not header_line.strip():
        raise LogFormatError("empty segment data")
    header = parse_segment_header(header_line)
    count = 0
    for line in handle:
        if not line.strip():
            continue
        try:
            entry = _entry_from_row(json.loads(line))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"bad log entry line: {exc}") from exc
        count += 1
        yield entry
    expected = int(header.get("entry_count", count))
    if count != expected:
        raise LogFormatError(
            f"entry count mismatch: header says {expected}, found {count}")


def authenticators_to_bytes(authenticators: Iterable[Authenticator]) -> bytes:
    """Serialise a collection of authenticators to JSON-lines bytes."""
    lines = [json.dumps({"format_version": _FORMAT_VERSION, "kind": "authenticators"},
                        sort_keys=True)]
    lines.extend(json.dumps(auth.to_dict(), sort_keys=True) for auth in authenticators)
    return ("\n".join(lines) + "\n").encode("utf-8")


def authenticators_from_bytes(data: bytes) -> List[Authenticator]:
    """Parse authenticators serialised by :func:`authenticators_to_bytes`."""
    try:
        lines = data.decode("utf-8").splitlines()
    except UnicodeDecodeError as exc:
        raise LogFormatError(
            f"authenticator data is not valid UTF-8: {exc}") from exc
    if not lines:
        raise LogFormatError("empty authenticator data")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"bad authenticator header: {exc}") from exc
    if header.get("kind") != "authenticators":
        raise LogFormatError(f"not an authenticator file: kind={header.get('kind')!r}")
    require_format_version(header.get("format_version"),
                           what="authenticator file",
                           supported=(_FORMAT_VERSION,))
    result = []
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            result.append(Authenticator.from_dict(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"bad authenticator line: {exc}") from exc
    return result
