"""Authenticators: signed commitments to a log prefix.

Section 4.3: *the authenticator for an entry ``e_i`` is ``a_i := (s_i, h_i,
sigma(s_i || h_i))``*.  The sender attaches an authenticator (plus ``h_{i-1}``
and the entry fields needed to recompute ``h_i``) to every outgoing message,
and includes one in every acknowledgment, so its communication partners
accumulate non-repudiable commitments to its log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.crypto import hashing
from repro.crypto.keys import KeyPair, KeyStore
from repro.crypto.signatures import BatchVerifyResult
from repro.errors import LogFormatError


@dataclass(frozen=True)
class Authenticator:
    """A signed (sequence, chain-hash) pair issued by ``machine``.

    ``previous_hash`` and ``entry_type``/``content_hash`` are included so the
    recipient can recompute ``h_i`` and confirm that the covered entry really
    is, e.g., ``SEND(m)`` for the message it just received (Section 4.3).
    """

    machine: str
    sequence: int
    chain_hash: bytes
    signature: bytes
    previous_hash: bytes
    entry_type: str
    content_hash: bytes

    def signed_payload(self) -> bytes:
        """The byte string covered by the signature: ``s_i || h_i``."""
        return signed_payload(self.sequence, self.chain_hash)

    def verify(self, keystore: KeyStore) -> bool:
        """Verify the signature and internal consistency of the authenticator."""
        recomputed = hashing.hash_concat(
            self.previous_hash,
            hashing.encode_int(self.sequence),
            self.entry_type.encode("utf-8"),
            self.content_hash,
        )
        if recomputed != self.chain_hash:
            return False
        return keystore.verify(self.machine, self.signed_payload(), self.signature)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise for transport or storage."""
        return {
            "machine": self.machine,
            "sequence": self.sequence,
            "chain_hash": self.chain_hash.hex(),
            "signature": self.signature.hex(),
            "previous_hash": self.previous_hash.hex(),
            "entry_type": self.entry_type,
            "content_hash": self.content_hash.hex(),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Authenticator":
        try:
            return Authenticator(
                machine=str(data["machine"]),
                sequence=int(data["sequence"]),
                chain_hash=bytes.fromhex(data["chain_hash"]),
                signature=bytes.fromhex(data["signature"]),
                previous_hash=bytes.fromhex(data["previous_hash"]),
                entry_type=str(data["entry_type"]),
                content_hash=bytes.fromhex(data["content_hash"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise LogFormatError(f"malformed authenticator: {exc}") from exc


def signed_payload(sequence: int, chain_hash: bytes) -> bytes:
    """Canonical byte string the machine signs: ``s_i || h_i``."""
    return hashing.hash_concat(hashing.encode_int(sequence), chain_hash)


def batch_verify_authenticators(
        authenticators: Sequence[Authenticator],
        keystore) -> Tuple[List[Authenticator], List[int], BatchVerifyResult]:
    """Verify many authenticators from one machine with batched signatures.

    Splits verification into its two parts: the internal consistency check
    (recompute ``h_i`` from the advertised fields — pure hashing, done per
    authenticator) and the signature check, which is delegated to the
    keystore's verify-many API so a whole batch usually costs one screening
    operation.  Returns ``(valid, invalid_indices, signature_stats)``; a
    single bad authenticator in a large batch is pinpointed, not smeared over
    the batch.

    ``keystore`` may be a :class:`~repro.crypto.keys.KeyStore` or the
    picklable :class:`~repro.crypto.keys.StaticKeyView` the audit engine
    ships to worker processes.  All authenticators must come from the same
    machine (callers group them per target first).
    """
    if not authenticators:
        return [], [], BatchVerifyResult(total=0)
    machine = authenticators[0].machine
    invalid: List[int] = []
    screenable: List[int] = []
    for index, auth in enumerate(authenticators):
        if auth.machine != machine:
            raise LogFormatError(
                f"batch mixes authenticators from {machine!r} and {auth.machine!r}")
        recomputed = hashing.hash_concat(
            auth.previous_hash,
            hashing.encode_int(auth.sequence),
            auth.entry_type.encode("utf-8"),
            auth.content_hash,
        )
        if recomputed != auth.chain_hash:
            invalid.append(index)
        else:
            screenable.append(index)

    items = [(authenticators[i].signed_payload(), authenticators[i].signature)
             for i in screenable]
    stats = keystore.verify_many(machine, items)
    invalid.extend(screenable[bad] for bad in stats.invalid_indices)
    invalid.sort()
    bad_set = set(invalid)
    valid = [auth for index, auth in enumerate(authenticators)
             if index not in bad_set]
    return valid, invalid, stats


def make_authenticator(keypair: KeyPair, *, sequence: int, chain_hash: bytes,
                       previous_hash: bytes, entry_type: str,
                       content_hash: bytes) -> Authenticator:
    """Create and sign an authenticator for the given log entry fields."""
    signature = keypair.sign(signed_payload(sequence, chain_hash))
    return Authenticator(
        machine=keypair.identity,
        sequence=sequence,
        chain_hash=chain_hash,
        signature=signature,
        previous_hash=previous_hash,
        entry_type=entry_type,
        content_hash=content_hash,
    )
