"""The append-only tamper-evident log object.

This is the data structure the AVMM writes during recording and an auditor
verifies during an audit.  It owns the hash chain state, produces
authenticators on demand (for SEND and ACK entries), and hands out segments
for audits and spot checks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.crypto import hashing
from repro.crypto.keys import KeyPair
from repro.errors import SegmentError
from repro.log.authenticator import Authenticator, make_authenticator
from repro.log.entries import (
    EntryType,
    LogEntry,
    encode_content,
    seed_encoded_content,
)
from repro.log.hashchain import chain_hash
from repro.log.segments import LogSegment


def _zero_clock() -> float:
    """Default clock: timestamps are bookkeeping only, so 0.0 is fine.

    A module-level function (not a lambda) so a log — and anything holding
    one — stays picklable under the process-pool audit path.
    """
    return 0.0


class TamperEvidentLog:
    """A machine's tamper-evident log.

    Parameters
    ----------
    machine:
        Identity of the machine that owns the log.
    keypair:
        The machine's certified key pair, used to sign authenticators.  When
        ``None`` (the ``avmm-nosig`` configuration and plain-VMware baselines)
        authenticators are still produced structurally but carry empty
        signatures.
    clock:
        Optional callable returning the current (host) time for entry
        timestamps; timestamps are bookkeeping only and are *not* part of the
        hash chain, mirroring the paper where timing lives in dedicated
        TimeTracker entries.
    """

    def __init__(self, machine: str, keypair: Optional[KeyPair] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.machine = machine
        self.keypair = keypair
        self._clock = clock if clock is not None else _zero_clock
        self._entries: List[LogEntry] = []
        self._current_hash: bytes = hashing.ZERO_HASH
        self._next_sequence = 1

    # -- appending ----------------------------------------------------------

    def append(self, entry_type: EntryType, content: Dict[str, Any]) -> LogEntry:
        """Append an entry and return it (with its chain hash filled in)."""
        sequence = self._next_sequence
        previous = self._current_hash
        stored_content = dict(content)
        encoded = encode_content(stored_content)
        new_hash = hashing.hash_concat(
            previous,
            hashing.encode_int(sequence),
            entry_type.wire_name.encode("utf-8"),
            hashing.hash_bytes(encoded),
        )
        entry = LogEntry(
            sequence=sequence,
            entry_type=entry_type,
            content=stored_content,
            chain_hash=new_hash,
            previous_hash=previous,
            timestamp=self._clock(),
        )
        # The chain hash above committed to exactly these bytes; cache them
        # so verification and shipping never re-canonicalise the content.
        seed_encoded_content(entry, encoded)
        self._entries.append(entry)
        self._current_hash = new_hash
        self._next_sequence += 1
        return entry

    def append_with_authenticator(self, entry_type: EntryType,
                                  content: Dict[str, Any]) -> tuple[LogEntry, Authenticator]:
        """Append an entry and produce the authenticator that commits to it."""
        entry = self.append(entry_type, content)
        return entry, self.authenticator_for(entry)

    def authenticator_for(self, entry: LogEntry) -> Authenticator:
        """Create an authenticator for an already-appended entry.

        Uses the entry's cached canonical bytes (seeded at append time) so
        the authenticator commits to exactly what the chain hashed, without
        re-encoding — or re-materializing — the content.
        """
        content_hash = entry.content_hash()
        if self.keypair is not None:
            return make_authenticator(
                self.keypair,
                sequence=entry.sequence,
                chain_hash=entry.chain_hash,
                previous_hash=entry.previous_hash,
                entry_type=entry.entry_type.wire_name,
                content_hash=content_hash,
            )
        return Authenticator(
            machine=self.machine,
            sequence=entry.sequence,
            chain_hash=entry.chain_hash,
            signature=b"",
            previous_hash=entry.previous_hash,
            entry_type=entry.entry_type.wire_name,
            content_hash=content_hash,
        )

    # -- queries ------------------------------------------------------------

    @property
    def entries(self) -> List[LogEntry]:
        """All entries, oldest first.  The returned list is a copy."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def head_hash(self) -> bytes:
        """Chain hash of the most recent entry (``0`` for an empty log)."""
        return self._current_hash

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    def entry_at(self, sequence: int) -> LogEntry:
        """Return the entry with the given sequence number."""
        index = sequence - 1
        if index < 0 or index >= len(self._entries):
            raise SegmentError(f"no log entry with sequence {sequence}")
        entry = self._entries[index]
        if entry.sequence != sequence:  # pragma: no cover - defensive
            raise SegmentError(f"log is not densely numbered near {sequence}")
        return entry

    def entries_of_type(self, entry_type: EntryType) -> List[LogEntry]:
        """All entries of a given type, oldest first."""
        return [e for e in self._entries if e.entry_type is entry_type]

    def size_bytes(self) -> int:
        """Approximate total size of the log in bytes."""
        return sum(entry.size_bytes() for entry in self._entries)

    def size_by_type(self) -> Dict[EntryType, int]:
        """Approximate size per entry type (drives the Figure 4 breakdown)."""
        sizes: Dict[EntryType, int] = {}
        for entry in self._entries:
            sizes[entry.entry_type] = sizes.get(entry.entry_type, 0) + entry.size_bytes()
        return sizes

    # -- segments -----------------------------------------------------------

    def segment(self, first_sequence: int, last_sequence: int) -> LogSegment:
        """Extract the segment ``[first_sequence, last_sequence]``.

        The segment records the chain hash immediately before its first entry
        so an auditor can verify it without the rest of the log.
        """
        if first_sequence < 1 or last_sequence >= self._next_sequence:
            raise SegmentError(
                f"segment [{first_sequence}, {last_sequence}] outside the log "
                f"(entries 1..{self._next_sequence - 1})")
        if first_sequence > last_sequence:
            raise SegmentError(
                f"segment start {first_sequence} is after end {last_sequence}")
        entries = [self.entry_at(s) for s in range(first_sequence, last_sequence + 1)]
        start_hash = entries[0].previous_hash
        return LogSegment(machine=self.machine, entries=entries,
                          start_hash=start_hash)

    def full_segment(self) -> LogSegment:
        """The whole log as a segment (for full audits)."""
        if not self._entries:
            return LogSegment(machine=self.machine, entries=[],
                              start_hash=hashing.ZERO_HASH)
        return self.segment(1, len(self._entries))

    def segments_between_snapshots(self) -> List[LogSegment]:
        """Split the log into segments delimited by SNAPSHOT entries.

        Section 6.12 calls the part of the log between two consecutive
        snapshots a *segment*; this helper produces them for spot checking.
        """
        snapshot_sequences = [e.sequence for e in self._entries
                              if e.entry_type is EntryType.SNAPSHOT]
        if not snapshot_sequences:
            return [self.full_segment()] if self._entries else []
        segments: List[LogSegment] = []
        boundaries = [0] + snapshot_sequences
        for start, end in zip(boundaries, boundaries[1:]):
            first = start + 1
            if first <= end:
                segments.append(self.segment(first, end))
        last_snapshot = snapshot_sequences[-1]
        if last_snapshot < len(self._entries):
            segments.append(self.segment(last_snapshot + 1, len(self._entries)))
        return segments

    # -- tampering (test / adversary support) -------------------------------

    def tamper_replace_entry(self, sequence: int, new_content: Dict[str, Any],
                             recompute_chain: bool = False) -> None:
        """Maliciously replace an entry's content (used by adversary models).

        With ``recompute_chain=False`` the stored chain hashes are left
        untouched, so the chain itself is broken.  With
        ``recompute_chain=True`` the chain is recomputed from the tampered
        entry onward — the chain then verifies, but no longer matches
        authenticators issued before the tampering, which is exactly the
        attack the authenticator check catches.
        """
        index = sequence - 1
        if index < 0 or index >= len(self._entries):
            raise SegmentError(f"no log entry with sequence {sequence}")
        old = self._entries[index]
        if not recompute_chain:
            self._entries[index] = LogEntry(
                sequence=old.sequence, entry_type=old.entry_type,
                content=dict(new_content), chain_hash=old.chain_hash,
                previous_hash=old.previous_hash, timestamp=old.timestamp)
            return
        previous = old.previous_hash
        replacement_content: Optional[Dict[str, Any]] = dict(new_content)
        for i in range(index, len(self._entries)):
            current = self._entries[i]
            content = replacement_content if i == index else current.content
            new_hash = chain_hash(previous, current.sequence, current.entry_type, content)
            self._entries[i] = LogEntry(
                sequence=current.sequence, entry_type=current.entry_type,
                content=dict(content), chain_hash=new_hash,
                previous_hash=previous, timestamp=current.timestamp)
            previous = new_hash
        self._current_hash = previous

    def tamper_drop_entry(self, sequence: int) -> None:
        """Maliciously remove an entry (sequence numbers become non-contiguous)."""
        index = sequence - 1
        if index < 0 or index >= len(self._entries):
            raise SegmentError(f"no log entry with sequence {sequence}")
        del self._entries[index]

    def tamper_remove_entry(self, sequence: int) -> None:
        """Remove an entry and renumber the suffix to hide the gap.

        The machine presents a log whose sequence numbers are dense again,
        but the renumbered entries keep their original hashes — so the chain
        no longer verifies at the removal point.  (Contrast with
        :meth:`tamper_drop_entry`, which leaves the numbering gap and makes
        the machine unable to even *produce* a well-formed segment.)
        """
        index = sequence - 1
        if index < 0 or index >= len(self._entries):
            raise SegmentError(f"no log entry with sequence {sequence}")
        del self._entries[index]
        for i in range(index, len(self._entries)):
            old = self._entries[i]
            self._entries[i] = LogEntry(
                sequence=old.sequence - 1, entry_type=old.entry_type,
                content=old.content, chain_hash=old.chain_hash,
                previous_hash=old.previous_hash, timestamp=old.timestamp)
        self._next_sequence -= 1

    def tamper_swap_entries(self, sequence_a: int, sequence_b: int) -> None:
        """Swap two entries' payloads in place (reordering attack).

        The entries trade type, content and hashes but keep their positions'
        sequence numbers, so the log still *looks* well-formed; the chain
        breaks at both positions because neither entry hashes to its
        recorded chain value any more.
        """
        for sequence in (sequence_a, sequence_b):
            if sequence < 1 or sequence > len(self._entries):
                raise SegmentError(f"no log entry with sequence {sequence}")
        ia, ib = sequence_a - 1, sequence_b - 1
        a, b = self._entries[ia], self._entries[ib]
        self._entries[ia] = LogEntry(
            sequence=a.sequence, entry_type=b.entry_type, content=b.content,
            chain_hash=b.chain_hash, previous_hash=b.previous_hash,
            timestamp=a.timestamp)
        self._entries[ib] = LogEntry(
            sequence=b.sequence, entry_type=a.entry_type, content=a.content,
            chain_hash=a.chain_hash, previous_hash=a.previous_hash,
            timestamp=b.timestamp)

    def tamper_insert_entry(self, after_sequence: int, entry_type: EntryType,
                            content: Dict[str, Any]) -> None:
        """Insert a forged entry and recompute the chain from there onward.

        The presented chain is internally consistent, but every entry from
        the insertion point on hashes differently — any authenticator a peer
        holds for those sequence numbers exposes the forgery.
        """
        if after_sequence < 0 or after_sequence > len(self._entries):
            raise SegmentError(f"no log entry with sequence {after_sequence}")
        suffix = self._entries[after_sequence:]
        del self._entries[after_sequence:]
        self._current_hash = (self._entries[-1].chain_hash if self._entries
                              else hashing.ZERO_HASH)
        self._next_sequence = after_sequence + 1
        self.append(entry_type, content)
        for old in suffix:
            self.append(old.entry_type, old.content)

    def tamper_truncate(self, after_sequence: int) -> None:
        """Discard every entry after ``after_sequence`` (history rewriting).

        Used by fork adversaries: truncate, then append an alternate suffix
        with :meth:`append` — the forked chain is self-consistent but no
        longer matches authenticators issued on the abandoned branch.
        """
        if after_sequence < 0 or after_sequence > len(self._entries):
            raise SegmentError(f"no log entry with sequence {after_sequence}")
        del self._entries[after_sequence:]
        self._current_hash = (self._entries[-1].chain_hash if self._entries
                              else hashing.ZERO_HASH)
        self._next_sequence = after_sequence + 1
