"""Tamper-evident log (Section 4.3 of the paper).

The log is a hash chain of typed entries.  Each entry ``e_i = (s_i, t_i, c_i,
h_i)`` carries a monotonically increasing sequence number, a type, typed
content and a chain hash ``h_i = H(h_{i-1} || s_i || t_i || H(c_i))``.
Authenticators — signed (sequence, chain-hash) pairs — provide
non-repudiation: once a machine has sent an authenticator it cannot forge,
omit, reorder or fork the entries the authenticator covers without detection.

Sub-modules:

* :mod:`repro.log.entries` — entry types and canonical encoding.
* :mod:`repro.log.hashchain` — the chain-hash computation.
* :mod:`repro.log.authenticator` — authenticator creation/verification.
* :mod:`repro.log.tamper_evident` — the append-only log object.
* :mod:`repro.log.segments` — segment/chunk extraction for audits.
* :mod:`repro.log.storage` — (de)serialisation.
* :mod:`repro.log.compression` — bzip2 plus the VMM-specific compressor.
"""

from repro.log.authenticator import Authenticator
from repro.log.entries import EntryType, LogEntry
from repro.log.hashchain import chain_hash, verify_chain
from repro.log.segments import LogSegment
from repro.log.tamper_evident import TamperEvidentLog

__all__ = [
    "Authenticator",
    "EntryType",
    "LogEntry",
    "chain_hash",
    "verify_chain",
    "LogSegment",
    "TamperEvidentLog",
]
