"""Log entry types and canonical encodings.

The AVMM's log interleaves two parallel streams of information (Section 4.4):
message exchanges (SEND / RECV / ACK) and nondeterministic inputs (timer
interrupts, clock reads, device inputs).  Snapshot hashes and audit-protocol
records (challenges, evidence references) are also logged so they are covered
by the hash chain.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.crypto import hashing
from repro.errors import LogFormatError


class EntryType(enum.Enum):
    """Types of tamper-evident log entries."""

    SEND = "send"                  # outgoing network message
    RECV = "recv"                  # incoming network message (with sender signature)
    ACK = "ack"                    # acknowledgment sent or received
    NONDET = "nondet"              # nondeterministic input event (replay stream)
    SNAPSHOT = "snapshot"          # hash-tree root of a VM snapshot
    TIMETRACKER = "timetracker"    # VMM timing record (execution timestamps)
    MACLAYER = "maclayer"          # MAC-layer record of a packet entering/leaving the AVM
    CHALLENGE = "challenge"        # audit challenge received
    RESPONSE = "response"          # response to an audit challenge
    ANNOTATION = "annotation"      # free-form marker (experiment bookkeeping)

    @property
    def wire_name(self) -> str:
        return self.value


# Entry types that carry deterministic-replay information (used for the
# Figure 4 log-content breakdown).
REPLAY_ENTRY_TYPES = frozenset({
    EntryType.NONDET, EntryType.TIMETRACKER, EntryType.MACLAYER,
})

# Entry types added purely for tamper evidence / accountability.
ACCOUNTABILITY_ENTRY_TYPES = frozenset({
    EntryType.SEND, EntryType.RECV, EntryType.ACK, EntryType.SNAPSHOT,
    EntryType.CHALLENGE, EntryType.RESPONSE,
})


@dataclass(frozen=True)
class LogEntry:
    """A single tamper-evident log entry.

    ``content`` is a JSON-serialisable dictionary; its canonical encoding is
    what gets hashed into the chain, so two logs with equal content produce
    equal chain hashes.
    """

    sequence: int
    entry_type: EntryType
    content: Dict[str, Any]
    chain_hash: bytes
    previous_hash: bytes
    timestamp: float = 0.0

    def encoded_content(self) -> bytes:
        """The canonical encoding of the entry content, memoised.

        Canonicalisation (:func:`encode_content`) sits on the hot path of
        chain hashing, cost accounting and the binary wire format, so the
        result is cached on first use.  The cache deliberately lives in the
        instance ``__dict__`` rather than as a dataclass field:
        ``dataclasses.replace`` (used e.g. by the tampering adversaries to
        forge variants of an entry) copies fields, and a copied stale cache
        would make a tampered entry hash like the original — the non-field
        cache is simply absent on the new instance and gets recomputed.
        """
        cached = self.__dict__.get("_encoded_content")
        if cached is None:
            cached = encode_content(self.content)
            object.__setattr__(self, "_encoded_content", cached)
        return cached

    def content_hash(self) -> bytes:
        """Hash of the canonical encoding of the entry content."""
        return hashing.hash_bytes(self.encoded_content())

    def size_bytes(self) -> int:
        """Approximate on-disk size of the entry (content + fixed overhead)."""
        # sequence (8) + type tag (up to 12) + chain hash (32) + timestamp (8)
        return len(self.encoded_content()) + 8 + 12 + 32 + 8

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (used by :mod:`repro.log.storage`)."""
        return {
            "sequence": self.sequence,
            "type": self.entry_type.wire_name,
            "content": self.content,
            "chain_hash": self.chain_hash.hex(),
            "previous_hash": self.previous_hash.hex(),
            "timestamp": self.timestamp,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "LogEntry":
        """Reconstruct an entry from :meth:`to_dict` output."""
        try:
            return LogEntry(
                sequence=int(data["sequence"]),
                entry_type=EntryType(data["type"]),
                content=dict(data["content"]),
                chain_hash=bytes.fromhex(data["chain_hash"]),
                previous_hash=bytes.fromhex(data["previous_hash"]),
                timestamp=float(data.get("timestamp", 0.0)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise LogFormatError(f"malformed log entry: {exc}") from exc

    def __getattr__(self, name: str) -> Any:
        # Lazy content materialization: entries decoded from the v3 wire
        # format carry only the verbatim canonical bytes (seeded into
        # ``_encoded_content`` by :func:`lazy_entry`) and defer parsing until
        # a consumer actually reads ``content``.  Chain verification,
        # authenticator checks and cost accounting only touch
        # ``encoded_content()``/hashes, so they never pay for a parse.
        if name == "content":
            encoded = self.__dict__.get("_encoded_content")
            if encoded is not None:
                content = decode_content(encoded)
                _MATERIALIZATIONS.count += 1
                object.__setattr__(self, "content", content)
                return content
        raise AttributeError(name)


def seed_encoded_content(entry: LogEntry, data: bytes) -> None:
    """Pre-populate ``entry``'s encoded-content cache with known-good bytes.

    Used by writers that just produced the canonical encoding (the recorder
    hashes it into the chain as the entry is appended) and by the binary
    codec, whose wire frames carry the canonical bytes verbatim — chain
    verification then hashes exactly the bytes that came off the wire, so a
    non-canonical or tampered serialisation can never verify.
    """
    object.__setattr__(entry, "_encoded_content", bytes(data))


class _MaterializationStats:
    """Process-wide count of content parses (wire bytes -> dict).

    Incremented by every codec path that turns canonical content bytes into
    a ``content`` dictionary: the v1 row decoder, the eager v2 frame decoder
    and the lazy v3 accessor.  A chain-verify-only pass over a v3 stream
    should leave this untouched; :mod:`repro.obs` snapshots it into the
    ``codec.content_materializations_total`` counter.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


_MATERIALIZATIONS = _MaterializationStats()


def content_materializations_total() -> int:
    """Total content materializations performed by this process so far."""
    return _MATERIALIZATIONS.count


def count_materialization() -> None:
    """Record one content parse (used by the eager v1/v2 decode paths)."""
    _MATERIALIZATIONS.count += 1


def lazy_entry(sequence: int, entry_type: EntryType, encoded_content: bytes,
               chain_hash: bytes, previous_hash: bytes,
               timestamp: float = 0.0) -> LogEntry:
    """Construct a :class:`LogEntry` whose content is parsed on first access.

    The verbatim canonical bytes are seeded into the encoded-content cache;
    ``entry.content`` stays unset until a consumer reads it, at which point
    :meth:`LogEntry.__getattr__` decodes the cached bytes.  Hash-chain and
    authenticator verification operate on ``encoded_content()`` alone, so a
    verification-only pass performs zero content parses.
    """
    entry = LogEntry.__new__(LogEntry)
    object.__setattr__(entry, "sequence", sequence)
    object.__setattr__(entry, "entry_type", entry_type)
    object.__setattr__(entry, "chain_hash", chain_hash)
    object.__setattr__(entry, "previous_hash", previous_hash)
    object.__setattr__(entry, "timestamp", timestamp)
    object.__setattr__(entry, "_encoded_content", bytes(encoded_content))
    return entry


# ---------------------------------------------------------------------------
# Typed content codec.
#
# The canonical encoding of entry content used to be canonical JSON for every
# entry; profiling showed the one ``json.loads`` per entry dominating decode.
# The typed layer struct-packs the high-frequency content shapes behind a
# one-byte tag; canonical JSON remains the always-correct fallback for any
# dict the typed encoders cannot represent exactly.  The two encodings are
# disjoint on the first byte — typed tags are 0x01..0x1F while canonical JSON
# for an object always starts with ``{`` (0x7B) — so the decoder dispatches on
# a single byte and a forged cross-encoding collision would require breaking
# the hash function.
#
# Every typed encoder is *strict*: it only claims a dict when the decode of
# its output reproduces the dict exactly (same keys, same value types).  On
# any mismatch it falls through — first to the generic row codec (flat
# str->scalar dicts, the shared encoding for sqlbench rows/counters and kv
# ops), then to JSON — so ``decode_content(encode_content(d)) == d`` holds
# for every encodable dict, whichever tier it lands on.
# ---------------------------------------------------------------------------

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_U64_MAX = 0xFFFFFFFFFFFFFFFF
_I64_MIN = -(1 << 63)

TAG_SEND = 0x01
TAG_RECV = 0x02
TAG_RECV_PAYLOAD = 0x03
TAG_ACK = 0x04
TAG_SNAPSHOT = 0x05
TAG_TIMETRACKER_VALUE = 0x06
TAG_TIMETRACKER_TICK = 0x07
TAG_MACLAYER_IN = 0x08
TAG_MACLAYER_OUT = 0x09
TAG_NONDET = 0x0A
TAG_ROW = 0x0B

_JSON_FIRST_BYTE = 0x7B  # '{'


class _Untypeable(Exception):
    """Internal: the value does not fit the typed encoding; fall back."""


def _hash32_or_none(value: str) -> Optional[bytes]:
    """Return the 32 raw bytes for a canonical (lowercase) 64-char hex digest."""
    if len(value) != 64:
        return None
    try:
        raw = bytes.fromhex(value)
    except ValueError:
        return None
    if raw.hex() != value:  # rejects uppercase and embedded whitespace
        return None
    return raw


def _pack_short_str(value: Any) -> bytes:
    if type(value) is not str:
        raise _Untypeable
    try:
        data = value.encode("utf-8")
    except UnicodeEncodeError:
        raise _Untypeable from None
    if len(data) > 0xFFFF:
        raise _Untypeable
    return _U16.pack(len(data)) + data


def _pack_u64(value: Any) -> bytes:
    if type(value) is not int or not 0 <= value <= _U64_MAX:
        raise _Untypeable
    return _U64.pack(value)


def _pack_f64(value: Any) -> bytes:
    if type(value) is not float:
        raise _Untypeable
    return _F64.pack(value)


def _pack_hash32(value: Any) -> bytes:
    if type(value) is not str:
        raise _Untypeable
    raw = _hash32_or_none(value)
    if raw is None:
        raise _Untypeable
    return raw


def _pack_hexblob(value: Any) -> bytes:
    if type(value) is not str or len(value) % 2:
        raise _Untypeable
    try:
        raw = bytes.fromhex(value)
    except ValueError:
        raise _Untypeable from None
    if raw.hex() != value or len(raw) > 0xFFFFFFFF:
        raise _Untypeable
    return _U32.pack(len(raw)) + raw


_FIELD_PACKERS = {
    "s": _pack_short_str,
    "u64": _pack_u64,
    "f64": _pack_f64,
    "h32": _pack_hash32,
    "hex": _pack_hexblob,
}

_ACK_DIRECTIONS = {"sent": b"\x00", "received": b"\x01"}

# Wire field order for each dedicated content tag.  Field kinds: "s" short
# string (u16 length + UTF-8), "u64"/"f64" little-endian scalars, "h32" a
# 64-char lowercase hex digest stored as 32 raw bytes, "hex" an even-length
# lowercase hex string stored as u32 length + raw bytes, "dir" the ACK
# direction enum byte, "row" a nested flat row body, "const:X" a key whose
# value must equal the literal X and occupies no wire bytes.
_SHAPE_SPECS: Dict[int, Tuple[Tuple[str, str], ...]] = {
    TAG_SEND: (
        ("destination", "s"), ("message_id", "s"),
        ("payload_hash", "h32"), ("payload_size", "u64"),
    ),
    TAG_RECV: (
        ("source", "s"), ("message_id", "s"), ("payload_hash", "h32"),
        ("payload_size", "u64"), ("sender_signature", "hex"),
    ),
    TAG_RECV_PAYLOAD: (
        ("source", "s"), ("message_id", "s"), ("payload_hash", "h32"),
        ("payload_size", "u64"), ("sender_signature", "hex"),
        ("payload", "hex"), ("kind", "s"),
    ),
    TAG_ACK: (
        ("peer", "s"), ("message_id", "s"), ("direction", "dir"),
        ("acked_sequence", "u64"),
    ),
    TAG_SNAPSHOT: (
        ("snapshot_id", "u64"), ("state_root", "h32"),
        ("execution_counter", "u64"),
    ),
    TAG_TIMETRACKER_VALUE: (
        ("event_kind", "s"), ("execution_counter", "u64"),
        ("branch_counter", "u64"), ("value", "f64"),
    ),
    TAG_TIMETRACKER_TICK: (
        ("event_kind", "s"), ("execution_counter", "u64"),
        ("branch_counter", "u64"), ("tick_number", "u64"),
    ),
    TAG_MACLAYER_IN: (
        ("direction", "const:in"), ("message_id", "s"), ("source", "s"),
        ("payload_size", "u64"), ("execution_counter", "u64"),
        ("branch_counter", "u64"),
    ),
    TAG_MACLAYER_OUT: (
        ("direction", "const:out"), ("message_id", "s"),
        ("destination", "s"), ("payload_hash", "h32"),
        ("payload_size", "u64"), ("execution_counter", "u64"),
        ("branch_counter", "u64"),
    ),
    TAG_NONDET: (
        ("event_kind", "s"), ("execution_counter", "u64"), ("data", "row"),
    ),
}

_SHAPE_BY_KEYS = {
    frozenset(key for key, _ in spec): (tag, spec)
    for tag, spec in _SHAPE_SPECS.items()
}


def _pack_row_value(value: Any) -> bytes:
    if value is None:
        return b"\x00"
    kind = type(value)
    if kind is bool:
        return b"\x02" if value else b"\x01"
    if kind is int:
        if 0 <= value:
            if value <= _U64_MAX:
                return b"\x03" + _U64.pack(value)
            raise _Untypeable
        if value >= _I64_MIN:
            return b"\x04" + _I64.pack(value)
        raise _Untypeable
    if kind is float:
        return b"\x05" + _F64.pack(value)
    if kind is str:
        raw = _hash32_or_none(value)
        if raw is not None:
            return b"\x07" + raw
        try:
            data = value.encode("utf-8")
        except UnicodeEncodeError:
            raise _Untypeable from None
        if len(data) > 0xFFFFFFFF:
            raise _Untypeable
        return b"\x06" + _U32.pack(len(data)) + data
    raise _Untypeable


def _pack_row_body(mapping: Dict[str, Any]) -> bytes:
    try:
        items = sorted(mapping.items())
    except TypeError:
        raise _Untypeable from None
    parts = [_U32.pack(len(items))]
    for key, value in items:
        if type(key) is not str:
            raise _Untypeable
        parts.append(_pack_short_str(key))
        parts.append(_pack_row_value(value))
    return b"".join(parts)


def _pack_shape(tag: int, spec: Tuple[Tuple[str, str], ...],
                content: Dict[str, Any]) -> bytes:
    parts = [bytes((tag,))]
    for key, kind in spec:
        value = content[key]
        if kind == "dir":
            if type(value) is not str or value not in _ACK_DIRECTIONS:
                raise _Untypeable
            parts.append(_ACK_DIRECTIONS[value])
        elif kind == "row":
            if type(value) is not dict:
                raise _Untypeable
            parts.append(_pack_row_body(value))
        elif kind.startswith("const:"):
            if value != kind[6:]:
                raise _Untypeable
        else:
            parts.append(_FIELD_PACKERS[kind](value))
    return b"".join(parts)


class _ContentReader:
    """Cursor over typed content bytes; raises LogFormatError on truncation."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 1):
        self.data = data
        self.pos = pos

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise LogFormatError("typed entry content is truncated")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def short_str(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LogFormatError(f"typed entry content has invalid UTF-8: {exc}") from exc

    def long_str(self) -> str:
        raw = self.take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LogFormatError(f"typed entry content has invalid UTF-8: {exc}") from exc

    def hexblob(self) -> str:
        return self.take(self.u32()).hex()

    def hash32(self) -> str:
        return self.take(32).hex()

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise LogFormatError("typed entry content has trailing bytes")


def _read_row_value(reader: _ContentReader) -> Any:
    kind = reader.take(1)
    if kind == b"\x03":
        return reader.u64()
    if kind == b"\x07":
        return reader.hash32()
    if kind == b"\x05":
        return reader.f64()
    if kind == b"\x06":
        return reader.long_str()
    if kind == b"\x00":
        return None
    if kind == b"\x01":
        return False
    if kind == b"\x02":
        return True
    if kind == b"\x04":
        return reader.i64()
    raise LogFormatError(f"unknown row value type 0x{kind.hex()}")


def _unpack_row_body(reader: _ContentReader) -> Dict[str, Any]:
    count = reader.u32()
    content: Dict[str, Any] = {}
    for _ in range(count):
        key = reader.short_str()
        content[key] = _read_row_value(reader)
    return content


def _unpack_shape(spec: Tuple[Tuple[str, str], ...], data: bytes) -> Dict[str, Any]:
    reader = _ContentReader(data)
    content: Dict[str, Any] = {}
    for key, kind in spec:
        if kind == "s":
            content[key] = reader.short_str()
        elif kind == "u64":
            content[key] = reader.u64()
        elif kind == "h32":
            content[key] = reader.hash32()
        elif kind == "hex":
            content[key] = reader.hexblob()
        elif kind == "f64":
            content[key] = reader.f64()
        elif kind == "dir":
            token = reader.take(1)
            if token == b"\x00":
                content[key] = "sent"
            elif token == b"\x01":
                content[key] = "received"
            else:
                raise LogFormatError("invalid ack direction byte")
        elif kind == "row":
            content[key] = _unpack_row_body(reader)
        else:
            content[key] = kind[6:]  # const:X
    reader.expect_end()
    return content


def encode_content(content: Dict[str, Any]) -> bytes:
    """Canonical byte encoding of entry content (typed fast path + JSON).

    Dicts matching one of the dedicated content shapes struct-pack behind
    their tag byte; other flat str->scalar dicts take the generic row tag;
    everything else falls back to canonical JSON (sorted keys, hex-encoded
    bytes).  All three tiers are deterministic, so equal content always
    produces equal canonical bytes and equal chain hashes.
    """
    if isinstance(content, dict):
        shape = _SHAPE_BY_KEYS.get(frozenset(content))
        if shape is not None:
            try:
                return _pack_shape(shape[0], shape[1], content)
            except _Untypeable:
                pass
        try:
            return b"\x0b" + _pack_row_body(content)
        except _Untypeable:
            pass
    return encode_content_json(content)


def encode_content_json(content: Dict[str, Any]) -> bytes:
    """Canonical JSON encoding of entry content (the pre-typed-codec rule).

    Keys are sorted and bytes values are hex-encoded so the encoding is stable
    across processes and Python versions.  Logs recorded before the typed
    fast path existed committed their hash chains to these bytes; chain
    verification falls back to them when the typed encoding does not match
    (:func:`repro.log.hashchain.verify_entry`).
    """
    try:
        return json.dumps(content, sort_keys=True, separators=(",", ":"),
                          default=_default).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise LogFormatError(f"log entry content is not serialisable: {exc}") from exc


def decode_content(data: bytes) -> Dict[str, Any]:
    """Decode canonical content bytes (typed or JSON) back into a dict.

    Raises :class:`LogFormatError` for anything malformed: unknown tags,
    truncated or trailing bytes, invalid UTF-8, or JSON that is not an
    object.
    """
    if not data:
        raise LogFormatError("entry content is empty")
    tag = data[0]
    if tag == _JSON_FIRST_BYTE:
        try:
            content = json.loads(data)
        except (UnicodeDecodeError, ValueError) as exc:
            raise LogFormatError(f"entry content carries undecodable JSON: {exc}") from exc
        if not isinstance(content, dict):
            raise LogFormatError("entry content is not an object")
        return content
    if tag == TAG_ROW:
        reader = _ContentReader(data)
        content = _unpack_row_body(reader)
        reader.expect_end()
        return content
    spec = _SHAPE_SPECS.get(tag)
    if spec is None:
        raise LogFormatError(f"unknown typed-content tag 0x{tag:02x}")
    return _unpack_shape(spec, data)


def _default(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    raise TypeError(f"cannot encode {type(value)!r} in log entry content")


def decode_bytes_fields(content: Dict[str, Any]) -> Dict[str, Any]:
    """Undo the ``{"__bytes__": ...}`` encoding produced by :func:`encode_content`."""
    def convert(value: Any) -> Any:
        if isinstance(value, dict):
            if set(value.keys()) == {"__bytes__"}:
                return bytes.fromhex(value["__bytes__"])
            return {k: convert(v) for k, v in value.items()}
        if isinstance(value, list):
            return [convert(v) for v in value]
        return value

    return {k: convert(v) for k, v in content.items()}


# ---------------------------------------------------------------------------
# Convenience constructors for the common entry payloads.
# ---------------------------------------------------------------------------

def send_content(destination: str, payload_hash: bytes, payload_size: int,
                 message_id: str) -> Dict[str, Any]:
    """Content dictionary for a SEND entry."""
    return {
        "destination": destination,
        "payload_hash": payload_hash.hex(),
        "payload_size": payload_size,
        "message_id": message_id,
    }


def recv_content(source: str, payload_hash: bytes, payload_size: int,
                 message_id: str, sender_signature: bytes) -> Dict[str, Any]:
    """Content dictionary for a RECV entry (includes the sender's signature)."""
    return {
        "source": source,
        "payload_hash": payload_hash.hex(),
        "payload_size": payload_size,
        "message_id": message_id,
        "sender_signature": sender_signature.hex(),
    }


def ack_content(peer: str, message_id: str, direction: str,
                acked_sequence: int) -> Dict[str, Any]:
    """Content dictionary for an ACK entry (direction: 'sent' or 'received')."""
    if direction not in ("sent", "received"):
        raise LogFormatError(f"invalid ack direction {direction!r}")
    return {
        "peer": peer,
        "message_id": message_id,
        "direction": direction,
        "acked_sequence": acked_sequence,
    }


def snapshot_content(snapshot_id: int, state_root: bytes,
                     execution_counter: int) -> Dict[str, Any]:
    """Content dictionary for a SNAPSHOT entry."""
    return {
        "snapshot_id": snapshot_id,
        "state_root": state_root.hex(),
        "execution_counter": execution_counter,
    }


def nondet_content(event_kind: str, execution_counter: int,
                   data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Content dictionary for a NONDET (nondeterministic input) entry."""
    return {
        "event_kind": event_kind,
        "execution_counter": execution_counter,
        "data": data or {},
    }
