"""Log entry types and canonical encodings.

The AVMM's log interleaves two parallel streams of information (Section 4.4):
message exchanges (SEND / RECV / ACK) and nondeterministic inputs (timer
interrupts, clock reads, device inputs).  Snapshot hashes and audit-protocol
records (challenges, evidence references) are also logged so they are covered
by the hash chain.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.crypto import hashing
from repro.errors import LogFormatError


class EntryType(enum.Enum):
    """Types of tamper-evident log entries."""

    SEND = "send"                  # outgoing network message
    RECV = "recv"                  # incoming network message (with sender signature)
    ACK = "ack"                    # acknowledgment sent or received
    NONDET = "nondet"              # nondeterministic input event (replay stream)
    SNAPSHOT = "snapshot"          # hash-tree root of a VM snapshot
    TIMETRACKER = "timetracker"    # VMM timing record (execution timestamps)
    MACLAYER = "maclayer"          # MAC-layer record of a packet entering/leaving the AVM
    CHALLENGE = "challenge"        # audit challenge received
    RESPONSE = "response"          # response to an audit challenge
    ANNOTATION = "annotation"      # free-form marker (experiment bookkeeping)

    @property
    def wire_name(self) -> str:
        return self.value


# Entry types that carry deterministic-replay information (used for the
# Figure 4 log-content breakdown).
REPLAY_ENTRY_TYPES = frozenset({
    EntryType.NONDET, EntryType.TIMETRACKER, EntryType.MACLAYER,
})

# Entry types added purely for tamper evidence / accountability.
ACCOUNTABILITY_ENTRY_TYPES = frozenset({
    EntryType.SEND, EntryType.RECV, EntryType.ACK, EntryType.SNAPSHOT,
    EntryType.CHALLENGE, EntryType.RESPONSE,
})


@dataclass(frozen=True)
class LogEntry:
    """A single tamper-evident log entry.

    ``content`` is a JSON-serialisable dictionary; its canonical encoding is
    what gets hashed into the chain, so two logs with equal content produce
    equal chain hashes.
    """

    sequence: int
    entry_type: EntryType
    content: Dict[str, Any]
    chain_hash: bytes
    previous_hash: bytes
    timestamp: float = 0.0

    def encoded_content(self) -> bytes:
        """The canonical encoding of the entry content, memoised.

        Canonicalisation (:func:`encode_content`) sits on the hot path of
        chain hashing, cost accounting and the binary wire format, so the
        result is cached on first use.  The cache deliberately lives in the
        instance ``__dict__`` rather than as a dataclass field:
        ``dataclasses.replace`` (used e.g. by the tampering adversaries to
        forge variants of an entry) copies fields, and a copied stale cache
        would make a tampered entry hash like the original — the non-field
        cache is simply absent on the new instance and gets recomputed.
        """
        cached = self.__dict__.get("_encoded_content")
        if cached is None:
            cached = encode_content(self.content)
            object.__setattr__(self, "_encoded_content", cached)
        return cached

    def content_hash(self) -> bytes:
        """Hash of the canonical encoding of the entry content."""
        return hashing.hash_bytes(self.encoded_content())

    def size_bytes(self) -> int:
        """Approximate on-disk size of the entry (content + fixed overhead)."""
        # sequence (8) + type tag (up to 12) + chain hash (32) + timestamp (8)
        return len(self.encoded_content()) + 8 + 12 + 32 + 8

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (used by :mod:`repro.log.storage`)."""
        return {
            "sequence": self.sequence,
            "type": self.entry_type.wire_name,
            "content": self.content,
            "chain_hash": self.chain_hash.hex(),
            "previous_hash": self.previous_hash.hex(),
            "timestamp": self.timestamp,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "LogEntry":
        """Reconstruct an entry from :meth:`to_dict` output."""
        try:
            return LogEntry(
                sequence=int(data["sequence"]),
                entry_type=EntryType(data["type"]),
                content=dict(data["content"]),
                chain_hash=bytes.fromhex(data["chain_hash"]),
                previous_hash=bytes.fromhex(data["previous_hash"]),
                timestamp=float(data.get("timestamp", 0.0)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise LogFormatError(f"malformed log entry: {exc}") from exc


def seed_encoded_content(entry: LogEntry, data: bytes) -> None:
    """Pre-populate ``entry``'s encoded-content cache with known-good bytes.

    Used by writers that just produced the canonical encoding (the recorder
    hashes it into the chain as the entry is appended) and by the binary
    codec, whose wire frames carry the canonical bytes verbatim — chain
    verification then hashes exactly the bytes that came off the wire, so a
    non-canonical or tampered serialisation can never verify.
    """
    object.__setattr__(entry, "_encoded_content", bytes(data))


def encode_content(content: Dict[str, Any]) -> bytes:
    """Canonical byte encoding of entry content.

    Keys are sorted and bytes values are hex-encoded so the encoding is stable
    across processes and Python versions.
    """
    try:
        return json.dumps(content, sort_keys=True, separators=(",", ":"),
                          default=_default).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise LogFormatError(f"log entry content is not serialisable: {exc}") from exc


def _default(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    raise TypeError(f"cannot encode {type(value)!r} in log entry content")


def decode_bytes_fields(content: Dict[str, Any]) -> Dict[str, Any]:
    """Undo the ``{"__bytes__": ...}`` encoding produced by :func:`encode_content`."""
    def convert(value: Any) -> Any:
        if isinstance(value, dict):
            if set(value.keys()) == {"__bytes__"}:
                return bytes.fromhex(value["__bytes__"])
            return {k: convert(v) for k, v in value.items()}
        if isinstance(value, list):
            return [convert(v) for v in value]
        return value

    return {k: convert(v) for k, v in content.items()}


# ---------------------------------------------------------------------------
# Convenience constructors for the common entry payloads.
# ---------------------------------------------------------------------------

def send_content(destination: str, payload_hash: bytes, payload_size: int,
                 message_id: str) -> Dict[str, Any]:
    """Content dictionary for a SEND entry."""
    return {
        "destination": destination,
        "payload_hash": payload_hash.hex(),
        "payload_size": payload_size,
        "message_id": message_id,
    }


def recv_content(source: str, payload_hash: bytes, payload_size: int,
                 message_id: str, sender_signature: bytes) -> Dict[str, Any]:
    """Content dictionary for a RECV entry (includes the sender's signature)."""
    return {
        "source": source,
        "payload_hash": payload_hash.hex(),
        "payload_size": payload_size,
        "message_id": message_id,
        "sender_signature": sender_signature.hex(),
    }


def ack_content(peer: str, message_id: str, direction: str,
                acked_sequence: int) -> Dict[str, Any]:
    """Content dictionary for an ACK entry (direction: 'sent' or 'received')."""
    if direction not in ("sent", "received"):
        raise LogFormatError(f"invalid ack direction {direction!r}")
    return {
        "peer": peer,
        "message_id": message_id,
        "direction": direction,
        "acked_sequence": acked_sequence,
    }


def snapshot_content(snapshot_id: int, state_root: bytes,
                     execution_counter: int) -> Dict[str, Any]:
    """Content dictionary for a SNAPSHOT entry."""
    return {
        "snapshot_id": snapshot_id,
        "state_root": state_root.hex(),
        "execution_counter": execution_counter,
    }


def nondet_content(event_kind: str, execution_counter: int,
                   data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Content dictionary for a NONDET (nondeterministic input) entry."""
    return {
        "event_kind": event_kind,
        "execution_counter": execution_counter,
        "data": data or {},
    }
