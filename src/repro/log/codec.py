"""Versioned log codecs: the wire formats of the record/ship/audit hot path.

Every byte of tamper-evident log that crosses a machine boundary — shipped to
the archive service, stored in a segment file, or streamed to an auditor —
goes through a :class:`LogCodec`.  A codec owns one *wire format*, named by an
integer ``format_version`` and an 8-byte magic, and provides four layers of
API:

* **entry level** — :meth:`~LogCodec.encode_entry` / :meth:`~LogCodec.
  decode_entry` turn one :class:`~repro.log.entries.LogEntry` into its wire
  payload and back;
* **framing** — :meth:`~LogCodec.frame` wraps a payload into a
  self-delimiting frame and :meth:`~LogCodec.iter_frames` splits a decoded
  segment body back into payloads;
* **segment level** — :meth:`~LogCodec.encode_segment` / :meth:`~LogCodec.
  decode_segment` handle a whole :class:`~repro.log.segments.LogSegment`
  (header + frames);
* **streaming** — :meth:`~LogCodec.stream_decoder` returns an incremental
  decoder that yields entries as byte chunks arrive, in O(chunk) memory.

Three formats are registered:

* ``format_version=1`` (:class:`JsonBz2Codec`, magic ``AVMLOGZ1``) — the
  original VMM-specific JSON pre-pass + bzip2 pipeline.  Byte-for-byte
  compatible with every archive written before this module existed.
* ``format_version=2`` (:class:`BinaryCodec`, magic ``AVMLOGB2``) — a
  little-endian struct-packed binary format with length-prefixed frames and
  ``memoryview``-based zero-copy decode.  No compression stage: the decode
  hot path is a ``struct.unpack_from`` plus one parse of the verbatim
  canonical content bytes, and the chain hash is verified over those exact
  bytes, so a frame that passes chain verification is authentic by
  collision resistance.
* ``format_version=3`` (:class:`TypedCodec`, magic ``AVMLOGT3``) — the v2
  frame layout with two changes: decode is *lazy* (the frame's verbatim
  canonical content bytes — typed-tagged since the typed content codec in
  :mod:`repro.log.entries` — seed the entry without being parsed, deferring
  materialization to first ``content`` access), and the header carries a
  flags byte enabling optional per-frame ``zlib`` level-1 compression (on
  by default for archives, off for latency-critical decode paths).

The registry (:func:`get_codec`, :func:`codec_for_data`) keys codecs by
``format_version`` and sniffs stored blobs by magic; every
"unsupported format version" error in the repo routes through
:func:`require_format_version` so callers always see one well-typed
:class:`~repro.errors.LogFormatError`.

The module also owns the audit cost model's canonical compressed-log size
(:func:`modelled_compressed_log_bytes`): the sum, over the snapshot-delimited
sub-segments of the audited range, of the v1-compressed size of each
sub-segment.  It is a pure function of the entries — independent of wire
format, chunking, and shipment history — so serial, engine and streaming
audits of the same log model the same download cost, and archives can serve
it from their manifests without recompressing (see
:meth:`~repro.store.archive.LogArchive.cached_wire_bytes`).
"""

from __future__ import annotations

import bz2
import codecs
import json
import struct
import zlib
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Type,
    Union,
)

from repro.errors import LogFormatError
from repro.log.entries import (
    EntryType,
    LogEntry,
    count_materialization,
    decode_content,
    lazy_entry,
    seed_encoded_content,
)
from repro.log.segments import LogSegment

__all__ = [
    "LogCodec",
    "JsonBz2Codec",
    "BinaryCodec",
    "TypedCodec",
    "SegmentStreamDecoder",
    "MAGIC_LENGTH",
    "register_codec",
    "get_codec",
    "codec_for_data",
    "sniff_format_version",
    "supported_format_versions",
    "require_format_version",
    "segment_suffix",
    "encode_segment",
    "decode_segment",
    "iter_snapshot_subsegments",
    "modelled_compressed_log_bytes",
    "ModelledCostAccumulator",
]

#: every codec magic is exactly this long, so sniffing needs 8 bytes
MAGIC_LENGTH = 8


# ---------------------------------------------------------------------------
# The interface and the registry
# ---------------------------------------------------------------------------

class LogCodec:
    """One wire format for tamper-evident log segments.

    Codec instances are cheap and *stateful at the entry level*: the v1
    row codec delta-encodes execution counters across
    :meth:`encode_entry` / :meth:`decode_entry` calls, so use a fresh
    instance (``get_codec(version)``) per segment.  The segment-level
    methods reset their own state and are safe to call repeatedly on one
    instance.
    """

    #: integer wire-format version (the registry key)
    format_version: ClassVar[int]
    #: 8-byte magic prefix of every stored/shipped blob in this format
    MAGIC: ClassVar[bytes]
    #: archive segment-file suffix for this format
    SUFFIX: ClassVar[str]

    # -- entry level ---------------------------------------------------------

    def encode_entry(self, entry: LogEntry) -> bytes:
        """One entry's wire payload (no framing)."""
        raise NotImplementedError

    def decode_entry(self, payload: Union[bytes, memoryview]) -> LogEntry:
        """Inverse of :meth:`encode_entry` (same instance, same order)."""
        raise NotImplementedError

    # -- framing -------------------------------------------------------------

    def frame(self, payload: bytes) -> bytes:
        """Wrap one payload into a self-delimiting frame."""
        raise NotImplementedError

    def iter_frames(self, body: Union[bytes, memoryview]
                    ) -> Iterator[Union[bytes, memoryview]]:
        """Split a segment body (everything after the header) into payloads."""
        raise NotImplementedError

    # -- segment level -------------------------------------------------------

    def encode_segment(self, segment: LogSegment) -> bytes:
        """Serialise a whole segment (magic + header + frames)."""
        raise NotImplementedError

    def decode_segment(self, data: Union[bytes, memoryview]) -> LogSegment:
        """Inverse of :meth:`encode_segment`."""
        raise NotImplementedError

    # -- streaming -----------------------------------------------------------

    def stream_decoder(self) -> "_StreamDecoderBase":
        """A fresh incremental decoder for this format."""
        raise NotImplementedError


_REGISTRY: Dict[int, Type[LogCodec]] = {}


def register_codec(codec_class: Type[LogCodec]) -> Type[LogCodec]:
    """Register a codec class under its ``format_version`` (also a decorator)."""
    version = codec_class.format_version
    if len(codec_class.MAGIC) != MAGIC_LENGTH:
        raise ValueError(
            f"codec magic must be {MAGIC_LENGTH} bytes, "
            f"got {codec_class.MAGIC!r}")
    _REGISTRY[version] = codec_class
    return codec_class


def supported_format_versions() -> List[int]:
    """The registered wire-format versions, ascending."""
    return sorted(_REGISTRY)


def require_format_version(value, *, what: str = "log",
                           supported: Optional[Iterable[int]] = None) -> int:
    """Validate a ``format_version`` field; the repo's single version check.

    ``supported`` defaults to the codec registry; callers with their own
    version space (the JSON-lines debug format, the archive manifest) pass
    theirs explicitly.  Raises :class:`LogFormatError` — one well-typed
    error class for every unsupported-version failure, whatever the call
    site.
    """
    versions = sorted(supported) if supported is not None else \
        supported_format_versions()
    if value not in versions:
        raise LogFormatError(
            f"unsupported {what} format version {value!r} "
            f"(supported: {', '.join(str(v) for v in versions)})")
    return int(value)


def get_codec(format_version: int) -> LogCodec:
    """A fresh codec instance for ``format_version``.

    Fresh because entry-level encode/decode carries per-segment state
    (delta counters); raises :class:`LogFormatError` for unknown versions.
    """
    require_format_version(format_version, what="log codec")
    return _REGISTRY[format_version]()


def sniff_format_version(data: Union[bytes, memoryview]) -> int:
    """Identify a stored/shipped blob's format by its magic."""
    prefix = bytes(data[:MAGIC_LENGTH])
    for version, codec_class in _REGISTRY.items():
        if prefix == codec_class.MAGIC:
            return version
    raise LogFormatError("not a log segment blob (unrecognised codec magic)")


def codec_for_data(data: Union[bytes, memoryview]) -> LogCodec:
    """A fresh codec matching a blob's magic."""
    return get_codec(sniff_format_version(data))


def segment_suffix(format_version: int) -> str:
    """The archive segment-file suffix for a format version."""
    require_format_version(format_version, what="log codec")
    return _REGISTRY[format_version].SUFFIX


def encode_segment(segment: LogSegment, format_version: int = 1) -> bytes:
    """Serialise a segment in the requested wire format."""
    return get_codec(format_version).encode_segment(segment)


def decode_segment(data: Union[bytes, memoryview]) -> LogSegment:
    """Deserialise a segment blob, sniffing its format by magic."""
    return codec_for_data(data).decode_segment(data)


class _StreamDecoderBase:
    """Protocol of the per-format incremental decoders.

    ``header`` (a ``{"machine", "start_hash"}`` dict, hex-encoded hash) is
    populated before the first entry is yielded; ``entry_count`` counts the
    entries yielded so far.
    """

    def __init__(self) -> None:
        self.header: Optional[Dict] = None
        self.entry_count = 0

    def entries(self, chunks: Iterable[bytes]) -> Iterator[LogEntry]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# format_version=1 — the VMM-specific JSON pre-pass + bzip2 pipeline
# ---------------------------------------------------------------------------
#
# One entry <-> one compact JSON row.  The row codec carries the
# delta-encoding state (previous execution counter, previous sequence number)
# across rows, so the whole-segment encoder and the streaming
# encoder/decoder produce and consume *identical* rows: the streaming paths
# are byte-exact with the materializing ones by construction.

def _encode_v1_header(machine: str, start_hash: bytes) -> Dict:
    return {"machine": machine, "start_hash": start_hash.hex()}


class _RowCodec:
    """Stateful per-entry row encoder/decoder (delta counters, dense seqs)."""

    def __init__(self) -> None:
        self._encode_counter = 0
        self._encode_sequence: Optional[int] = None
        self._decode_counter = 0
        self._decode_sequence: Optional[int] = None

    def encode_row(self, entry: LogEntry) -> Dict:
        row: Dict = {"t": entry.entry_type.wire_name}
        # Sequence numbers are dense; store only breaks in density.
        if not (self._encode_sequence is not None
                and entry.sequence == self._encode_sequence + 1):
            row["s"] = entry.sequence
        self._encode_sequence = entry.sequence
        # Timestamps are bookkeeping only; store them verbatim so the
        # round-trip is bit-exact (they still compress well under bzip2).
        if entry.timestamp:
            row["ts"] = entry.timestamp
        content = dict(entry.content)
        # Execution counters in replay entries are monotone; delta-encode.
        counter = content.get("execution_counter")
        if isinstance(counter, int):
            row["dc"] = counter - self._encode_counter
            self._encode_counter = counter
            content.pop("execution_counter")
        row["c"] = content
        # Chain hashes are recomputable from content during decode *only*
        # if we keep them; we keep them (lossless requirement) but they
        # compress well under bzip2 because they are high-entropy anyway.
        row["h"] = entry.chain_hash.hex()
        row["p"] = entry.previous_hash.hex()
        return row

    def decode_row(self, row: Dict) -> LogEntry:
        if "s" in row:
            sequence = row["s"]
        else:
            sequence = (self._decode_sequence + 1
                        if self._decode_sequence is not None else 1)
        self._decode_sequence = sequence
        content = dict(row["c"])
        if "dc" in row:
            self._decode_counter += row["dc"]
            content["execution_counter"] = self._decode_counter
        count_materialization()
        return LogEntry(
            sequence=sequence,
            entry_type=EntryType(row["t"]),
            content=content,
            chain_hash=bytes.fromhex(row["h"]),
            previous_hash=bytes.fromhex(row["p"]),
            timestamp=float(row.get("ts", 0.0)),
        )


@register_codec
class JsonBz2Codec(LogCodec):
    """``format_version=1``: delta/dictionary JSON pre-pass + bzip2."""

    format_version = 1
    MAGIC = b"AVMLOGZ1"
    SUFFIX = ".avmlogz"

    def __init__(self) -> None:
        self._rows = _RowCodec()

    # -- entry level ---------------------------------------------------------

    def encode_entry(self, entry: LogEntry) -> bytes:
        row = self._rows.encode_row(entry)
        return json.dumps(row, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def decode_entry(self, payload: Union[bytes, memoryview]) -> LogEntry:
        try:
            row = json.loads(bytes(payload).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise LogFormatError(f"corrupt v1 log row: {exc}") from exc
        if not isinstance(row, dict):
            raise LogFormatError("corrupt v1 log row: not an object")
        try:
            return self._rows.decode_row(row)
        except (KeyError, ValueError, TypeError) as exc:
            raise LogFormatError(f"corrupt v1 log row: {exc}") from exc

    # -- framing -------------------------------------------------------------
    #
    # v1 rows are elements of one JSON array, so they are self-delimiting by
    # the JSON grammar: frame() is the identity and iter_frames() re-splits
    # the (decompressed) blob body with a C-level raw_decode scan.

    def frame(self, payload: bytes) -> bytes:
        return payload

    def iter_frames(self, body: Union[bytes, memoryview]
                    ) -> Iterator[bytes]:
        text = bytes(body).decode("utf-8")
        scanner = _BlobScanner()
        for row in scanner.feed(text):
            yield json.dumps(row, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        scanner.finish()

    # -- segment level -------------------------------------------------------

    def encode_segment(self, segment: LogSegment) -> bytes:
        rows_codec = _RowCodec()
        rows = [rows_codec.encode_row(entry) for entry in segment.entries]
        blob = {"header": _encode_v1_header(segment.machine,
                                            segment.start_hash),
                "rows": rows}
        encoded = json.dumps(blob, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        return self.MAGIC + bz2.compress(encoded, 9)

    def decode_segment(self, data: Union[bytes, memoryview]) -> LogSegment:
        data = bytes(data)
        if not data.startswith(self.MAGIC):
            raise LogFormatError("not a VMM-compressed log (bad magic)")
        try:
            encoded = bz2.decompress(data[len(self.MAGIC):])
        except (OSError, EOFError, ValueError) as exc:
            raise LogFormatError(f"corrupt VMM-encoded log: {exc}") from exc
        try:
            blob = json.loads(encoded.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"corrupt VMM-encoded log: {exc}") from exc
        try:
            header = blob["header"]
            rows_codec = _RowCodec()
            entries = [rows_codec.decode_row(row) for row in blob["rows"]]
            return LogSegment(machine=str(header["machine"]),
                              start_hash=bytes.fromhex(header["start_hash"]),
                              entries=entries)
        except (KeyError, ValueError, TypeError) as exc:
            raise LogFormatError(f"corrupt VMM-encoded log: {exc}") from exc

    def stream_decoder(self) -> "_JsonStreamDecoder":
        return _JsonStreamDecoder()


class _JsonStreamDecoder(_StreamDecoderBase):
    """Incrementally decode a v1 (VMM-compressed) segment from a byte stream.

    Feeds the bzip2 stream through :class:`bz2.BZ2Decompressor` chunk by
    chunk and scans the decompressed text with a small string-and-depth-aware
    state machine, yielding one :class:`~repro.log.entries.LogEntry` at a
    time; at no point is more than one compressed chunk plus one row held.
    The strict layout produced by the compact, key-sorted encoder
    (``{"header":{...},"rows":[...]}``) is *required*; anything else raises
    :class:`LogFormatError`, exactly like the materializing decoder would.
    """

    def __init__(self) -> None:
        super().__init__()
        self._codec = _RowCodec()

    def entries(self, chunks: Iterable[bytes]) -> Iterator[LogEntry]:
        chunk_iter = iter(chunks)
        magic_buffer = b""
        magic = JsonBz2Codec.MAGIC
        while len(magic_buffer) < len(magic):
            piece = next(chunk_iter, None)
            if piece is None:
                break
            magic_buffer += piece
        if not magic_buffer.startswith(magic):
            raise LogFormatError("not a VMM-compressed log (bad magic)")

        decompressor = bz2.BZ2Decompressor()
        utf8 = codecs.getincrementaldecoder("utf-8")()
        scanner = _BlobScanner()

        def feed(compressed: bytes) -> Iterator[LogEntry]:
            if not compressed:
                return
            text = utf8.decode(decompressor.decompress(compressed))
            for row in scanner.feed(text):
                # The header precedes the first row in the encoded blob, so
                # it is available before (not merely after) any entry is
                # yielded — callers validate metadata up front.
                if self.header is None:
                    self.header = scanner.header
                self.entry_count += 1
                yield self._codec.decode_row(row)
            if self.header is None and scanner.header is not None:
                self.header = scanner.header

        yield from feed(magic_buffer[len(magic):])
        for piece in chunk_iter:
            yield from feed(piece)
        utf8.decode(b"", final=True)
        if not decompressor.eof:
            raise LogFormatError(
                "truncated VMM-compressed log (bzip2 stream did not end)")
        scanner.finish()
        if self.header is None:
            self.header = scanner.header


class _BlobScanner:
    """State machine over ``{"header":H,"rows":[R,R,...]}`` text.

    Consumes arbitrarily split text fragments and emits each complete row as
    a parsed dict.  Values are extracted with
    :meth:`json.JSONDecoder.raw_decode` (a C-level scan, so streaming decode
    keeps one-shot parsing speed); a decode error is indistinguishable from
    a value split across fragments, so errors are held until the stream ends
    — a malformed blob therefore raises :class:`LogFormatError` at
    :meth:`finish`, like the one-shot decoder raises on its single parse.
    """

    _HEADER_PREFIX = '{"header":'
    _ROWS_PREFIX = ',"rows":['

    def __init__(self) -> None:
        self.header: Optional[Dict] = None
        self._decoder = json.JSONDecoder()
        self._buffer = ""
        self._state = "prefix"  # prefix -> header -> rows_prefix -> rows
        #                          -> rows_separator -> suffix -> done

    def feed(self, text: str) -> Iterator[Dict]:
        self._buffer += text
        while True:
            if self._state == "prefix":
                if not self._advance_literal(self._HEADER_PREFIX):
                    return
                self._state = "header"
            elif self._state == "header":
                value = self._extract_value()
                if value is None:
                    return
                self.header = self._as_dict(value, "header")
                self._state = "rows_prefix"
            elif self._state == "rows_prefix":
                if not self._advance_literal(self._ROWS_PREFIX):
                    return
                self._state = "rows"
            elif self._state == "rows":
                if not self._buffer:
                    return
                if self._buffer[0] == "]":
                    self._buffer = self._buffer[1:]
                    self._state = "suffix"
                    continue
                value = self._extract_value()
                if value is None:
                    return
                yield self._as_dict(value, "row")
                self._state = "rows_separator"
            elif self._state == "rows_separator":
                if not self._buffer:
                    return
                head = self._buffer[0]
                self._buffer = self._buffer[1:]
                if head == ",":
                    self._state = "rows"
                elif head == "]":
                    self._state = "suffix"
                else:
                    raise LogFormatError(
                        f"corrupt VMM-encoded log: expected ',' or ']', "
                        f"found {head!r}")
            elif self._state == "suffix":
                if not self._buffer:
                    return
                if self._buffer[0] != "}":
                    raise LogFormatError(
                        "corrupt VMM-encoded log: trailing data after rows")
                self._buffer = self._buffer[1:]
                self._state = "done"
            else:  # done
                if self._buffer.strip():
                    raise LogFormatError(
                        "corrupt VMM-encoded log: data after the closing brace")
                self._buffer = ""
                return

    def finish(self) -> None:
        if self._state != "done" or self._buffer.strip():
            raise LogFormatError(
                "corrupt VMM-encoded log: stream ended mid-structure")

    def _advance_literal(self, literal: str) -> bool:
        if len(self._buffer) < len(literal):
            if not literal.startswith(self._buffer):
                raise LogFormatError(
                    f"corrupt VMM-encoded log: expected {literal!r}")
            return False
        if not self._buffer.startswith(literal):
            raise LogFormatError(
                f"corrupt VMM-encoded log: expected {literal!r}")
        self._buffer = self._buffer[len(literal):]
        return True

    def _extract_value(self):
        """Pop one complete JSON value off the buffer, or ``None`` for more.

        ``None`` also covers a malformed value — the distinction between
        "split across fragments" and "corrupt" is only decidable at stream
        end, where :meth:`finish` raises.
        """
        if not self._buffer:
            return None
        try:
            value, end = self._decoder.raw_decode(self._buffer)
        except json.JSONDecodeError:
            return None
        self._buffer = self._buffer[end:]
        return value

    @staticmethod
    def _as_dict(value, what: str) -> Dict:
        if not isinstance(value, dict):
            raise LogFormatError(
                f"corrupt VMM-encoded log: {what} is not an object")
        return value


# ---------------------------------------------------------------------------
# format_version=2 — struct-packed binary, length-prefixed, zero-copy decode
# ---------------------------------------------------------------------------
#
# Layout (all integers little-endian, documented field by field in
# docs/log-format.md):
#
#   magic     8s   b"AVMLOGB2"
#   header    <HH  format_version (=2), machine_len
#             machine_len bytes of UTF-8 machine name
#             32s  start_hash
#             <I   entry_count
#   frame*    <I   payload_len, then payload_len payload bytes
#   payload   <QBd32s32sI  sequence, entry-type tag, timestamp, chain_hash,
#                          previous_hash, content_len
#             content_len bytes: the entry content's *canonical* encoding
#             (repro.log.entries.encode_content), verbatim
#
# The content bytes are exactly what the hash chain covers (h_i commits to
# H(content bytes)), so decode seeds the entry's encoded-content cache with
# them and chain verification never re-canonicalises: a tampered or
# non-canonical content serialisation hashes differently and fails the chain
# check, which is the same tamper-evidence argument the JSON format relies
# on.

#: fixed entry-type tag table — wire-stable, append-only
_TYPE_TAGS: Dict[EntryType, int] = {
    EntryType.SEND: 1,
    EntryType.RECV: 2,
    EntryType.ACK: 3,
    EntryType.NONDET: 4,
    EntryType.SNAPSHOT: 5,
    EntryType.TIMETRACKER: 6,
    EntryType.MACLAYER: 7,
    EntryType.CHALLENGE: 8,
    EntryType.RESPONSE: 9,
    EntryType.ANNOTATION: 10,
}
_TAG_TYPES: Dict[int, EntryType] = {tag: entry_type
                                    for entry_type, tag in _TYPE_TAGS.items()}

_V2_FIXED = struct.Struct("<QBd32s32sI")
_V2_HEADER_PREFIX = struct.Struct("<HH")
_V2_LENGTH = struct.Struct("<I")
_HASH_LENGTH = 32


@register_codec
class BinaryCodec(LogCodec):
    """``format_version=2``: packed binary frames, zero-copy decode."""

    format_version = 2
    MAGIC = b"AVMLOGB2"
    SUFFIX = ".avmlogb"

    # -- entry level ---------------------------------------------------------

    def encode_entry(self, entry: LogEntry) -> bytes:
        tag = _TYPE_TAGS.get(entry.entry_type)
        if tag is None:  # pragma: no cover - the tag table covers the enum
            raise LogFormatError(
                f"no v2 wire tag for entry type {entry.entry_type!r}")
        content = entry.encoded_content()
        if len(entry.chain_hash) != _HASH_LENGTH \
                or len(entry.previous_hash) != _HASH_LENGTH:
            raise LogFormatError(
                f"entry {entry.sequence} carries a non-{_HASH_LENGTH}-byte "
                f"chain hash")
        return _V2_FIXED.pack(entry.sequence, tag, entry.timestamp,
                              entry.chain_hash, entry.previous_hash,
                              len(content)) + content

    def decode_entry(self, payload: Union[bytes, memoryview]) -> LogEntry:
        size = len(payload)
        if size < _V2_FIXED.size:
            raise LogFormatError(
                f"binary log frame too short ({size} bytes)")
        try:
            sequence, tag, timestamp, chain_hash, previous_hash, content_len \
                = _V2_FIXED.unpack_from(payload, 0)
        except struct.error as exc:  # pragma: no cover - length checked above
            raise LogFormatError(f"corrupt binary log frame: {exc}") from exc
        if _V2_FIXED.size + content_len != size:
            raise LogFormatError(
                f"binary log frame advertises {content_len} content bytes "
                f"but carries {size - _V2_FIXED.size}")
        entry_type = _TAG_TYPES.get(tag)
        if entry_type is None:
            raise LogFormatError(f"unknown binary entry-type tag {tag}")
        content_bytes = bytes(payload[_V2_FIXED.size:])
        try:
            content = decode_content(content_bytes)
        except LogFormatError as exc:
            raise LogFormatError(
                f"binary log frame carries undecodable content: {exc}") from exc
        count_materialization()
        entry = LogEntry(sequence=sequence, entry_type=entry_type,
                         content=content, chain_hash=chain_hash,
                         previous_hash=previous_hash, timestamp=timestamp)
        # The chain hash commits to H(content bytes); seeding the cache with
        # the wire bytes means verification hashes them directly — tampered
        # or non-canonical bytes fail the chain check, never pass silently.
        seed_encoded_content(entry, content_bytes)
        return entry

    # -- framing -------------------------------------------------------------

    def frame(self, payload: bytes) -> bytes:
        return _V2_LENGTH.pack(len(payload)) + payload

    def iter_frames(self, body: Union[bytes, memoryview]
                    ) -> Iterator[memoryview]:
        view = memoryview(body)
        position = 0
        total = len(view)
        while position < total:
            if total - position < _V2_LENGTH.size:
                raise LogFormatError(
                    "truncated binary log (dangling frame length)")
            (length,) = _V2_LENGTH.unpack_from(view, position)
            position += _V2_LENGTH.size
            if total - position < length:
                raise LogFormatError(
                    "truncated binary log (frame shorter than advertised)")
            yield view[position:position + length]
            position += length

    # -- segment level -------------------------------------------------------

    def encode_segment(self, segment: LogSegment) -> bytes:
        parts = [self.MAGIC, self._pack_header(segment.machine,
                                               segment.start_hash,
                                               len(segment.entries))]
        pack_length = _V2_LENGTH.pack
        append = parts.append
        for entry in segment.entries:
            payload = self.encode_entry(entry)
            append(pack_length(len(payload)))
            append(payload)
        return b"".join(parts)

    def decode_segment(self, data: Union[bytes, memoryview]) -> LogSegment:
        view = memoryview(data)
        if bytes(view[:MAGIC_LENGTH]) != self.MAGIC:
            raise LogFormatError("not a binary log segment (bad magic)")
        machine, start_hash, entry_count, body_start = \
            self._unpack_header(view)
        entries: List[LogEntry] = []
        for payload in self.iter_frames(view[body_start:]):
            entries.append(self.decode_entry(payload))
        if len(entries) != entry_count:
            raise LogFormatError(
                f"entry count mismatch: header says {entry_count}, "
                f"found {len(entries)}")
        return LogSegment(machine=machine, start_hash=start_hash,
                          entries=entries)

    def stream_decoder(self) -> "_BinaryStreamDecoder":
        return _BinaryStreamDecoder()

    # -- header helpers ------------------------------------------------------

    @staticmethod
    def _pack_header(machine: str, start_hash: bytes,
                     entry_count: int) -> bytes:
        machine_bytes = machine.encode("utf-8")
        if len(machine_bytes) > 0xFFFF:
            raise LogFormatError("machine name too long for the v2 header")
        if len(start_hash) != _HASH_LENGTH:
            raise LogFormatError(
                f"start hash must be {_HASH_LENGTH} bytes")
        return (_V2_HEADER_PREFIX.pack(BinaryCodec.format_version,
                                       len(machine_bytes))
                + machine_bytes + start_hash
                + _V2_LENGTH.pack(entry_count))

    @staticmethod
    def _unpack_header(view: memoryview):
        """Parse the post-magic header; returns machine, hash, count, offset.

        Raises :class:`LogFormatError` when the buffer cannot possibly hold
        the full header (callers with partial buffers check
        :meth:`_header_size_hint` first).
        """
        offset = MAGIC_LENGTH
        if len(view) < offset + _V2_HEADER_PREFIX.size:
            raise LogFormatError("truncated binary log header")
        version, machine_len = _V2_HEADER_PREFIX.unpack_from(view, offset)
        require_format_version(version, what="binary log segment",
                               supported=(BinaryCodec.format_version,))
        offset += _V2_HEADER_PREFIX.size
        end = offset + machine_len + _HASH_LENGTH + _V2_LENGTH.size
        if len(view) < end:
            raise LogFormatError("truncated binary log header")
        try:
            machine = bytes(view[offset:offset + machine_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LogFormatError(
                f"binary log header machine name is not UTF-8: {exc}") from exc
        offset += machine_len
        start_hash = bytes(view[offset:offset + _HASH_LENGTH])
        offset += _HASH_LENGTH
        (entry_count,) = _V2_LENGTH.unpack_from(view, offset)
        return machine, start_hash, entry_count, end

    @staticmethod
    def _header_size_hint(buffer: Union[bytes, bytearray]) -> Optional[int]:
        """Total header size once enough bytes are buffered, else ``None``."""
        need = MAGIC_LENGTH + _V2_HEADER_PREFIX.size
        if len(buffer) < need:
            return None
        _, machine_len = _V2_HEADER_PREFIX.unpack_from(buffer, MAGIC_LENGTH)
        return need + machine_len + _HASH_LENGTH + _V2_LENGTH.size


class _BinaryStreamDecoder(_StreamDecoderBase):
    """Incrementally decode a v2 segment from a byte stream, zero-copy.

    Complete frames are unpacked with ``struct.unpack_from`` straight out of
    the accumulation buffer through a :class:`memoryview` — no per-frame
    slice copies; the only copy is the content bytes that outlive the buffer
    (they seed the entry's encoded-content cache).  Consumed prefixes are
    compacted away after every chunk, so peak memory is one chunk plus one
    partial frame.
    """

    def __init__(self) -> None:
        super().__init__()
        self._declared_count: Optional[int] = None

    def entries(self, chunks: Iterable[bytes]) -> Iterator[LogEntry]:
        codec = BinaryCodec()
        buffer = bytearray()
        header_done = False
        for piece in chunks:
            buffer += piece
            if not header_done:
                if len(buffer) >= MAGIC_LENGTH \
                        and not buffer.startswith(BinaryCodec.MAGIC):
                    raise LogFormatError(
                        "not a binary log segment (bad magic)")
                header_size = BinaryCodec._header_size_hint(buffer)
                if header_size is None or len(buffer) < header_size:
                    continue
                machine, start_hash, count, _ = \
                    BinaryCodec._unpack_header(memoryview(buffer))
                self.header = _encode_v1_header(machine, start_hash)
                self._declared_count = count
                del buffer[:header_size]
                header_done = True
            # Drain every complete frame currently buffered.  The views are
            # created and dropped inside _drain_frames, so the compaction
            # (and the next chunk append) never hits an exported buffer.
            for entry in self._drain_frames(codec, buffer):
                self.entry_count += 1
                yield entry
        if not header_done:
            if len(buffer) >= MAGIC_LENGTH \
                    and not buffer.startswith(BinaryCodec.MAGIC):
                raise LogFormatError("not a binary log segment (bad magic)")
            raise LogFormatError("truncated binary log header")
        if buffer:
            raise LogFormatError(
                "truncated binary log (stream ended mid-frame)")
        if self._declared_count is not None \
                and self.entry_count != self._declared_count:
            raise LogFormatError(
                f"entry count mismatch: header says {self._declared_count}, "
                f"found {self.entry_count}")

    @staticmethod
    def _drain_frames(codec: BinaryCodec,
                      buffer: bytearray) -> List[LogEntry]:
        drained: List[LogEntry] = []
        position = 0
        total = len(buffer)
        view = memoryview(buffer)
        try:
            while total - position >= _V2_LENGTH.size:
                (length,) = _V2_LENGTH.unpack_from(view, position)
                if total - position - _V2_LENGTH.size < length:
                    break
                start = position + _V2_LENGTH.size
                drained.append(codec.decode_entry(view[start:start + length]))
                position = start + length
        finally:
            view.release()
        if position:
            del buffer[:position]
        return drained


# ---------------------------------------------------------------------------
# format_version=3 — typed content, lazy decode, optional zlib frames
# ---------------------------------------------------------------------------
#
# Layout (all integers little-endian, documented field by field in
# docs/log-format.md):
#
#   magic     8s   b"AVMLOGT3"
#   header    <HH  format_version (=3), machine_len
#             machine_len bytes of UTF-8 machine name
#             32s  start_hash
#             <B   flags (bit 0: frames are zlib level-1 compressed)
#             <I   entry_count
#   frame*    <I   stored_len, then stored_len stored bytes — the entry
#             payload verbatim, or its zlib level-1 deflate when flag bit 0
#             is set
#   payload   <QBd32s32sI  sequence, entry-type tag, timestamp, chain_hash,
#                          previous_hash, content_len
#             content_len bytes: the entry content's *canonical* encoding
#             (repro.log.entries.encode_content — typed tag or JSON
#             fallback), verbatim
#
# Same tamper-evidence argument as v2 — the chain hash commits to
# H(content bytes) and decode seeds the cache with the wire bytes — but the
# content bytes are never parsed during decode: the entry is constructed
# lazily (repro.log.entries.lazy_entry) and materializes its dict only when
# a consumer reads ``content``.  Chain verification, authenticator checks
# and cost accounting touch only ``encoded_content()``, so a
# verification-only pass performs zero content parses.

_V3_FLAGS = struct.Struct("<B")
#: v3 header flag bit 0 — every frame body is zlib.compress(payload, 1)
V3_FLAG_COMPRESSED = 0x01


def _inflate_frame(raw: Union[bytes, memoryview]) -> bytes:
    try:
        return zlib.decompress(bytes(raw))
    except zlib.error as exc:
        raise LogFormatError(
            f"corrupt compressed typed log frame: {exc}") from exc


def _iter_length_prefixed(body: Union[bytes, memoryview],
                          what: str = "typed") -> Iterator[memoryview]:
    view = memoryview(body)
    position = 0
    total = len(view)
    while position < total:
        if total - position < _V2_LENGTH.size:
            raise LogFormatError(
                f"truncated {what} log (dangling frame length)")
        (length,) = _V2_LENGTH.unpack_from(view, position)
        position += _V2_LENGTH.size
        if total - position < length:
            raise LogFormatError(
                f"truncated {what} log (frame shorter than advertised)")
        yield view[position:position + length]
        position += length


@register_codec
class TypedCodec(LogCodec):
    """``format_version=3``: typed content frames, lazy materialization.

    ``compress=True`` (the default, what archives and shippers get from
    ``get_codec(3)``) deflates every frame with zlib level 1 — cheap to
    produce, and it wins back the stored-bytes regression the uncompressed
    v2 format paid relative to v1's bzip2 pipeline.  Pass ``compress=False``
    for raw frames when decode latency matters more than storage (the codec
    benchmark's decode path).  Decoding honours the *header* flag, whatever
    the instance was constructed with.
    """

    format_version = 3
    MAGIC = b"AVMLOGT3"
    SUFFIX = ".avmlogt"

    def __init__(self, compress: bool = True) -> None:
        self._compress = compress

    # -- entry level ---------------------------------------------------------

    def encode_entry(self, entry: LogEntry) -> bytes:
        tag = _TYPE_TAGS.get(entry.entry_type)
        if tag is None:  # pragma: no cover - the tag table covers the enum
            raise LogFormatError(
                f"no v3 wire tag for entry type {entry.entry_type!r}")
        content = entry.encoded_content()
        if len(entry.chain_hash) != _HASH_LENGTH \
                or len(entry.previous_hash) != _HASH_LENGTH:
            raise LogFormatError(
                f"entry {entry.sequence} carries a non-{_HASH_LENGTH}-byte "
                f"chain hash")
        return _V2_FIXED.pack(entry.sequence, tag, entry.timestamp,
                              entry.chain_hash, entry.previous_hash,
                              len(content)) + content

    def decode_entry(self, payload: Union[bytes, memoryview]) -> LogEntry:
        size = len(payload)
        if size < _V2_FIXED.size:
            raise LogFormatError(
                f"typed log frame too short ({size} bytes)")
        sequence, tag, timestamp, chain_hash, previous_hash, content_len \
            = _V2_FIXED.unpack_from(payload, 0)
        if _V2_FIXED.size + content_len != size:
            raise LogFormatError(
                f"typed log frame advertises {content_len} content bytes "
                f"but carries {size - _V2_FIXED.size}")
        entry_type = _TAG_TYPES.get(tag)
        if entry_type is None:
            raise LogFormatError(f"unknown binary entry-type tag {tag}")
        # No content parse here: the verbatim canonical bytes seed the
        # entry, and materialization is deferred to first content access.
        return lazy_entry(sequence=sequence, entry_type=entry_type,
                          encoded_content=bytes(payload[_V2_FIXED.size:]),
                          chain_hash=chain_hash,
                          previous_hash=previous_hash,
                          timestamp=timestamp)

    # -- framing -------------------------------------------------------------

    def frame(self, payload: bytes) -> bytes:
        if self._compress:
            payload = zlib.compress(payload, 1)
        return _V2_LENGTH.pack(len(payload)) + payload

    def iter_frames(self, body: Union[bytes, memoryview]
                    ) -> Iterator[Union[bytes, memoryview]]:
        if self._compress:
            for raw in _iter_length_prefixed(body):
                yield _inflate_frame(raw)
        else:
            yield from _iter_length_prefixed(body)

    # -- segment level -------------------------------------------------------

    def encode_segment(self, segment: LogSegment) -> bytes:
        flags = V3_FLAG_COMPRESSED if self._compress else 0
        parts = [self.MAGIC, self._pack_header(segment.machine,
                                               segment.start_hash,
                                               len(segment.entries), flags)]
        pack_length = _V2_LENGTH.pack
        deflate = zlib.compress if self._compress else None
        append = parts.append
        for entry in segment.entries:
            payload = self.encode_entry(entry)
            if deflate is not None:
                payload = deflate(payload, 1)
            append(pack_length(len(payload)))
            append(payload)
        return b"".join(parts)

    def decode_segment(self, data: Union[bytes, memoryview]) -> LogSegment:
        view = memoryview(data)
        if bytes(view[:MAGIC_LENGTH]) != self.MAGIC:
            raise LogFormatError("not a typed log segment (bad magic)")
        machine, start_hash, flags, entry_count, body_start = \
            self._unpack_header(view)
        # Honour the stored flag: a codec constructed either way decodes
        # blobs written either way.
        self._compress = bool(flags & V3_FLAG_COMPRESSED)
        entries: List[LogEntry] = []
        for payload in self.iter_frames(view[body_start:]):
            entries.append(self.decode_entry(payload))
        if len(entries) != entry_count:
            raise LogFormatError(
                f"entry count mismatch: header says {entry_count}, "
                f"found {len(entries)}")
        return LogSegment(machine=machine, start_hash=start_hash,
                          entries=entries)

    def stream_decoder(self) -> "_TypedStreamDecoder":
        return _TypedStreamDecoder()

    # -- header helpers ------------------------------------------------------

    @staticmethod
    def _pack_header(machine: str, start_hash: bytes, entry_count: int,
                     flags: int) -> bytes:
        machine_bytes = machine.encode("utf-8")
        if len(machine_bytes) > 0xFFFF:
            raise LogFormatError("machine name too long for the v3 header")
        if len(start_hash) != _HASH_LENGTH:
            raise LogFormatError(
                f"start hash must be {_HASH_LENGTH} bytes")
        return (_V2_HEADER_PREFIX.pack(TypedCodec.format_version,
                                       len(machine_bytes))
                + machine_bytes + start_hash + _V3_FLAGS.pack(flags)
                + _V2_LENGTH.pack(entry_count))

    @staticmethod
    def _unpack_header(view: memoryview):
        """Parse the post-magic header; returns machine, hash, flags, count, offset."""
        offset = MAGIC_LENGTH
        if len(view) < offset + _V2_HEADER_PREFIX.size:
            raise LogFormatError("truncated typed log header")
        version, machine_len = _V2_HEADER_PREFIX.unpack_from(view, offset)
        require_format_version(version, what="typed log segment",
                               supported=(TypedCodec.format_version,))
        offset += _V2_HEADER_PREFIX.size
        end = offset + machine_len + _HASH_LENGTH + _V3_FLAGS.size \
            + _V2_LENGTH.size
        if len(view) < end:
            raise LogFormatError("truncated typed log header")
        try:
            machine = bytes(view[offset:offset + machine_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LogFormatError(
                f"typed log header machine name is not UTF-8: {exc}") from exc
        offset += machine_len
        start_hash = bytes(view[offset:offset + _HASH_LENGTH])
        offset += _HASH_LENGTH
        (flags,) = _V3_FLAGS.unpack_from(view, offset)
        if flags & ~V3_FLAG_COMPRESSED:
            raise LogFormatError(f"unknown v3 header flags 0x{flags:02x}")
        offset += _V3_FLAGS.size
        (entry_count,) = _V2_LENGTH.unpack_from(view, offset)
        return machine, start_hash, flags, entry_count, end

    @staticmethod
    def _header_size_hint(buffer: Union[bytes, bytearray]) -> Optional[int]:
        """Total header size once enough bytes are buffered, else ``None``."""
        need = MAGIC_LENGTH + _V2_HEADER_PREFIX.size
        if len(buffer) < need:
            return None
        _, machine_len = _V2_HEADER_PREFIX.unpack_from(buffer, MAGIC_LENGTH)
        return need + machine_len + _HASH_LENGTH + _V3_FLAGS.size \
            + _V2_LENGTH.size


class _TypedStreamDecoder(_StreamDecoderBase):
    """Incrementally decode a v3 segment from a byte stream.

    Identical buffering strategy to :class:`_BinaryStreamDecoder` — complete
    frames are unpacked straight out of the accumulation buffer through a
    :class:`memoryview`, consumed prefixes are compacted away — plus the v3
    specifics: the header flags select per-frame inflation, and entries come
    out lazy (content bytes seeded, not parsed).
    """

    def __init__(self) -> None:
        super().__init__()
        self._declared_count: Optional[int] = None
        self._compressed = False

    def entries(self, chunks: Iterable[bytes]) -> Iterator[LogEntry]:
        codec = TypedCodec()
        buffer = bytearray()
        header_done = False
        for piece in chunks:
            buffer += piece
            if not header_done:
                if len(buffer) >= MAGIC_LENGTH \
                        and not buffer.startswith(TypedCodec.MAGIC):
                    raise LogFormatError(
                        "not a typed log segment (bad magic)")
                header_size = TypedCodec._header_size_hint(buffer)
                if header_size is None or len(buffer) < header_size:
                    continue
                machine, start_hash, flags, count, _ = \
                    TypedCodec._unpack_header(memoryview(buffer))
                self.header = _encode_v1_header(machine, start_hash)
                self._declared_count = count
                self._compressed = bool(flags & V3_FLAG_COMPRESSED)
                del buffer[:header_size]
                header_done = True
            for entry in self._drain_frames(codec, buffer, self._compressed):
                self.entry_count += 1
                yield entry
        if not header_done:
            if len(buffer) >= MAGIC_LENGTH \
                    and not buffer.startswith(TypedCodec.MAGIC):
                raise LogFormatError("not a typed log segment (bad magic)")
            raise LogFormatError("truncated typed log header")
        if buffer:
            raise LogFormatError(
                "truncated typed log (stream ended mid-frame)")
        if self._declared_count is not None \
                and self.entry_count != self._declared_count:
            raise LogFormatError(
                f"entry count mismatch: header says {self._declared_count}, "
                f"found {self.entry_count}")

    @staticmethod
    def _drain_frames(codec: TypedCodec, buffer: bytearray,
                      compressed: bool) -> List[LogEntry]:
        drained: List[LogEntry] = []
        position = 0
        total = len(buffer)
        view = memoryview(buffer)
        try:
            while total - position >= _V2_LENGTH.size:
                (length,) = _V2_LENGTH.unpack_from(view, position)
                if total - position - _V2_LENGTH.size < length:
                    break
                start = position + _V2_LENGTH.size
                # Keep the slice a temporary: a lingering local would hold a
                # buffer export and break the compaction below.
                if compressed:
                    drained.append(codec.decode_entry(
                        _inflate_frame(view[start:start + length])))
                else:
                    drained.append(codec.decode_entry(
                        view[start:start + length]))
                position = start + length
        finally:
            view.release()
        if position:
            del buffer[:position]
        return drained


# ---------------------------------------------------------------------------
# Format-agnostic streaming decode (magic-sniffing dispatcher)
# ---------------------------------------------------------------------------

class SegmentStreamDecoder(_StreamDecoderBase):
    """Incrementally decode a stored segment blob of *any* registered format.

    Buffers the first :data:`MAGIC_LENGTH` bytes, selects the codec by
    magic, and delegates to its incremental decoder — so the archive's
    streaming reader and the ingest service never branch on format
    versions.  ``header`` (machine + hex start hash) is populated before
    the first entry is yielded, exactly like both per-format decoders
    guarantee.
    """

    def entries(self, chunks: Iterable[bytes]) -> Iterator[LogEntry]:
        chunk_iter = iter(chunks)
        prefix = b""
        while len(prefix) < MAGIC_LENGTH:
            piece = next(chunk_iter, None)
            if piece is None:
                break
            prefix += piece
        if len(prefix) < MAGIC_LENGTH:
            # Too short to carry any magic; report it the way the original
            # (v1-only) decoder always has.
            raise LogFormatError("not a VMM-compressed log (bad magic)")
        inner = get_codec(sniff_format_version(prefix)).stream_decoder()

        def replay() -> Iterator[bytes]:
            yield prefix
            yield from chunk_iter

        for entry in inner.entries(replay()):
            self.header = inner.header
            self.entry_count = inner.entry_count
            yield entry
        self.header = inner.header
        self.entry_count = inner.entry_count


# ---------------------------------------------------------------------------
# The canonical modelled compressed-log size (audit cost model)
# ---------------------------------------------------------------------------

def iter_snapshot_subsegments(segment: LogSegment) -> Iterator[LogSegment]:
    """Split a segment at SNAPSHOT entries (each sub-segment ends at one).

    This is the shipping granularity of Section 4.2 — a monitor seals and
    ships the entries since the previous snapshot, ending with the SNAPSHOT
    entry — re-derived from the entries alone, so it is independent of how
    the log was actually chunked, shipped or re-shipped.  Entries after the
    last snapshot form a final tail sub-segment.
    """
    entries = segment.entries
    start = 0
    start_hash = segment.start_hash
    for index, entry in enumerate(entries):
        if entry.entry_type is EntryType.SNAPSHOT:
            yield LogSegment(machine=segment.machine,
                             entries=entries[start:index + 1],
                             start_hash=start_hash)
            start = index + 1
            start_hash = entry.chain_hash
    if start < len(entries):
        yield LogSegment(machine=segment.machine, entries=entries[start:],
                         start_hash=start_hash)


#: optional cache lookup: ``(first_sequence, last_sequence) -> bytes or None``
SizeHint = Callable[[int, int], Optional[int]]


def modelled_compressed_log_bytes(segment: LogSegment,
                                  size_hint: Optional[SizeHint] = None) -> int:
    """The audit cost model's compressed size of downloading ``segment``.

    Defined as the sum over the snapshot-delimited sub-segments of the
    v1-compressed size of each sub-segment — i.e. what a v1 archive stores
    for a cleanly-shipped log.  A pure function of the entries: additive
    across snapshot boundaries, identical whether the auditor materialized,
    chunked or streamed the log, and identical for every wire format the
    log happens to be stored in.

    ``size_hint`` lets archives serve sub-segment sizes from their manifest
    (:meth:`~repro.store.archive.LogArchive.cached_wire_bytes`) instead of
    recompressing; a hint may return ``None`` for any range, in which case
    the size is computed by compressing that sub-segment — so hints are an
    optimisation, never a semantic change.
    """
    if not segment.entries:
        return 0
    total = 0
    v1 = None
    for sub in iter_snapshot_subsegments(segment):
        cached = None
        if size_hint is not None:
            cached = size_hint(sub.first_sequence, sub.last_sequence)
        if cached is None:
            if v1 is None:
                v1 = JsonBz2Codec()
            cached = len(v1.encode_segment(sub))
        total += cached
    return total


class ModelledCostAccumulator:
    """:func:`modelled_compressed_log_bytes` over a *stream* of entries.

    The streaming audit sees the log in chunks; because the modelled size is
    additive across snapshot boundaries, this accumulator buffers only the
    current snapshot-delimited sub-segment (closing it at every SNAPSHOT
    entry) and produces exactly the number
    :func:`modelled_compressed_log_bytes` returns for the concatenated log —
    whatever the chunking was.  Interface-compatible with the historical
    ``IncrementalCompressionMeter`` (``add_many`` / ``raw_bytes`` /
    ``finish``); ``size_hint`` is the archive's manifest lookup, so a
    cleanly-shipped log is costed without compressing anything.
    """

    def __init__(self, machine: str, start_hash: bytes,
                 size_hint: Optional[SizeHint] = None) -> None:
        self._machine = machine
        self._start_hash = start_hash
        self._size_hint = size_hint
        self._pending: List[LogEntry] = []
        self._compressed = 0
        self.raw_bytes = 0

    def add_many(self, entries: Iterable[LogEntry]) -> None:
        """Account consecutive entries (log order across all calls)."""
        for entry in entries:
            self.raw_bytes += entry.size_bytes()
            self._pending.append(entry)
            if entry.entry_type is EntryType.SNAPSHOT:
                self._close_subsegment()

    def _close_subsegment(self) -> None:
        sub = LogSegment(machine=self._machine, entries=self._pending,
                         start_hash=self._start_hash)
        self._compressed += modelled_compressed_log_bytes(sub,
                                                          self._size_hint)
        self._start_hash = sub.end_hash
        self._pending = []

    def finish(self) -> int:
        """Close the final (tail) sub-segment; return the modelled size."""
        if self._pending:
            self._close_subsegment()
        return self._compressed
