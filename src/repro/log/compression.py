"""Log compression.

Section 6.4 reports log sizes *after applying bzip2 and a lossless,
VMM-specific (but application-independent) compression algorithm* that brings
growth from ~8 MB/min down to ~2.47 MB/min.  We provide both stages:

* :func:`bzip2_compress` / :func:`bzip2_decompress` — plain bzip2.
* :class:`VmmLogCompressor` — a lossless, VMM-specific pre-pass that exploits
  the structure of replay entries (monotone execution counters, near-constant
  clock deltas, repeated field names) by delta-encoding counters and
  dictionary-encoding entry payload keys before the generic compressor runs.
"""

from __future__ import annotations

import bz2
import codecs
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import LogFormatError
from repro.log.entries import EntryType, LogEntry
from repro.log.segments import LogSegment
from repro.log.storage import segment_to_bytes


def bzip2_compress(data: bytes, level: int = 9) -> bytes:
    """Compress ``data`` with bzip2."""
    return bz2.compress(data, level)


def bzip2_decompress(data: bytes) -> bytes:
    """Decompress bzip2 data."""
    return bz2.decompress(data)


@dataclass(frozen=True)
class CompressionStats:
    """Outcome of compressing a log segment."""

    raw_bytes: int
    vmm_encoded_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """Compressed size divided by raw size (smaller is better)."""
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes


class VmmLogCompressor:
    """Two-stage compressor: VMM-specific delta/dictionary pre-pass + bzip2.

    The pre-pass is lossless: :meth:`decompress` reproduces the exact segment
    bytes produced by :func:`repro.log.storage.segment_to_bytes`.
    """

    MAGIC = b"AVMLOGZ1"

    def compress(self, segment: LogSegment) -> bytes:
        """Compress a segment; returns the compressed byte string."""
        encoded = self._vmm_encode(segment)
        return self.MAGIC + bzip2_compress(encoded)

    def decompress(self, data: bytes) -> LogSegment:
        """Reverse :meth:`compress`."""
        if not data.startswith(self.MAGIC):
            raise LogFormatError("not a VMM-compressed log (bad magic)")
        encoded = bzip2_decompress(data[len(self.MAGIC):])
        return self._vmm_decode(encoded)

    def stats(self, segment: LogSegment) -> CompressionStats:
        """Compute raw / pre-pass / compressed sizes for a segment."""
        raw = segment_to_bytes(segment)
        encoded = self._vmm_encode(segment)
        compressed = self.MAGIC + bzip2_compress(encoded)
        return CompressionStats(raw_bytes=len(raw),
                                vmm_encoded_bytes=len(encoded),
                                compressed_bytes=len(compressed))

    # -- VMM-specific pre-pass ----------------------------------------------

    def _vmm_encode(self, segment: LogSegment) -> bytes:
        """Delta-encode execution counters and strip per-entry redundancy."""
        codec = _RowCodec()
        rows: List[Dict] = [codec.encode_row(entry) for entry in segment.entries]
        blob = {"header": _encode_header(segment.machine, segment.start_hash),
                "rows": rows}
        return json.dumps(blob, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def _vmm_decode(self, encoded: bytes) -> LogSegment:
        try:
            blob = json.loads(encoded.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"corrupt VMM-encoded log: {exc}") from exc
        header = blob["header"]
        codec = _RowCodec()
        entries: List[LogEntry] = [codec.decode_row(row) for row in blob["rows"]]
        return LogSegment(machine=str(header["machine"]),
                          start_hash=bytes.fromhex(header["start_hash"]),
                          entries=entries)


# -- the shared row codec ----------------------------------------------------
#
# One entry <-> one compact JSON row.  The codec carries the delta-encoding
# state (previous execution counter, previous sequence number) across rows, so
# the whole-segment encoder above and the streaming encoder/decoder below
# produce and consume *identical* rows: the streaming paths are byte-exact
# with the materializing ones by construction.

def _encode_header(machine: str, start_hash: bytes) -> Dict:
    return {"machine": machine, "start_hash": start_hash.hex()}


class _RowCodec:
    """Stateful per-entry row encoder/decoder (delta counters, dense seqs)."""

    def __init__(self) -> None:
        self._encode_counter = 0
        self._encode_sequence: Optional[int] = None
        self._decode_counter = 0
        self._decode_sequence: Optional[int] = None

    def encode_row(self, entry: LogEntry) -> Dict:
        row: Dict = {"t": entry.entry_type.wire_name}
        # Sequence numbers are dense; store only breaks in density.
        if not (self._encode_sequence is not None
                and entry.sequence == self._encode_sequence + 1):
            row["s"] = entry.sequence
        self._encode_sequence = entry.sequence
        # Timestamps are bookkeeping only; store them verbatim so the
        # round-trip is bit-exact (they still compress well under bzip2).
        if entry.timestamp:
            row["ts"] = entry.timestamp
        content = dict(entry.content)
        # Execution counters in replay entries are monotone; delta-encode.
        counter = content.get("execution_counter")
        if isinstance(counter, int):
            row["dc"] = counter - self._encode_counter
            self._encode_counter = counter
            content.pop("execution_counter")
        row["c"] = content
        # Chain hashes are recomputable from content during decode *only*
        # if we keep them; we keep them (lossless requirement) but they
        # compress well under bzip2 because they are high-entropy anyway.
        row["h"] = entry.chain_hash.hex()
        row["p"] = entry.previous_hash.hex()
        return row

    def decode_row(self, row: Dict) -> LogEntry:
        if "s" in row:
            sequence = row["s"]
        else:
            sequence = (self._decode_sequence + 1
                        if self._decode_sequence is not None else 1)
        self._decode_sequence = sequence
        content = dict(row["c"])
        if "dc" in row:
            self._decode_counter += row["dc"]
            content["execution_counter"] = self._decode_counter
        return LogEntry(
            sequence=sequence,
            entry_type=EntryType(row["t"]),
            content=content,
            chain_hash=bytes.fromhex(row["h"]),
            previous_hash=bytes.fromhex(row["p"]),
            timestamp=float(row.get("ts", 0.0)),
        )


# -- streaming decode --------------------------------------------------------

class SegmentStreamDecoder:
    """Incrementally decode a VMM-compressed segment from a byte stream.

    The materializing path (:meth:`VmmLogCompressor.decompress`) inflates the
    whole file and parses one JSON blob — peak memory proportional to the
    segment.  This decoder feeds the bzip2 stream through
    :class:`bz2.BZ2Decompressor` chunk by chunk and scans the decompressed
    text with a small string-and-depth-aware state machine, yielding one
    :class:`~repro.log.entries.LogEntry` at a time; at no point is more than
    one compressed chunk plus one row held.  The strict layout produced by
    the compact, key-sorted encoder (``{"header":{...},"rows":[...]}``) is
    *required*; anything else raises :class:`LogFormatError`, exactly like
    the materializing decoder would.

    ``header`` (machine + start hash) is populated before the first entry is
    yielded, so callers can validate segment metadata up front.
    """

    def __init__(self) -> None:
        self.header: Optional[Dict] = None
        self.entry_count = 0
        self._codec = _RowCodec()

    def entries(self, chunks: Iterable[bytes]) -> Iterator[LogEntry]:
        """Yield entries as ``chunks`` (the raw file bytes) arrive."""
        chunk_iter = iter(chunks)
        magic_buffer = b""
        magic = VmmLogCompressor.MAGIC
        while len(magic_buffer) < len(magic):
            piece = next(chunk_iter, None)
            if piece is None:
                break
            magic_buffer += piece
        if not magic_buffer.startswith(magic):
            raise LogFormatError("not a VMM-compressed log (bad magic)")

        decompressor = bz2.BZ2Decompressor()
        utf8 = codecs.getincrementaldecoder("utf-8")()
        scanner = _BlobScanner()

        def feed(compressed: bytes) -> Iterator[LogEntry]:
            if not compressed:
                return
            text = utf8.decode(decompressor.decompress(compressed))
            for row in scanner.feed(text):
                # The header precedes the first row in the encoded blob, so
                # it is available before (not merely after) any entry is
                # yielded — callers validate metadata up front.
                if self.header is None:
                    self.header = scanner.header
                self.entry_count += 1
                yield self._codec.decode_row(row)
            if self.header is None and scanner.header is not None:
                self.header = scanner.header

        yield from feed(magic_buffer[len(magic):])
        for piece in chunk_iter:
            yield from feed(piece)
        utf8.decode(b"", final=True)
        if not decompressor.eof:
            raise LogFormatError(
                "truncated VMM-compressed log (bzip2 stream did not end)")
        scanner.finish()
        if self.header is None:
            self.header = scanner.header


class _BlobScanner:
    """State machine over ``{"header":H,"rows":[R,R,...]}`` text.

    Consumes arbitrarily split text fragments and emits each complete row as
    a parsed dict.  Values are extracted with
    :meth:`json.JSONDecoder.raw_decode` (a C-level scan, so streaming decode
    keeps one-shot parsing speed); a decode error is indistinguishable from
    a value split across fragments, so errors are held until the stream ends
    — a malformed blob therefore raises :class:`LogFormatError` at
    :meth:`finish`, like the one-shot decoder raises on its single parse.
    """

    _HEADER_PREFIX = '{"header":'
    _ROWS_PREFIX = ',"rows":['

    def __init__(self) -> None:
        self.header: Optional[Dict] = None
        self._decoder = json.JSONDecoder()
        self._buffer = ""
        self._state = "prefix"  # prefix -> header -> rows_prefix -> rows
        #                          -> rows_separator -> suffix -> done

    def feed(self, text: str) -> Iterator[Dict]:
        self._buffer += text
        while True:
            if self._state == "prefix":
                if not self._advance_literal(self._HEADER_PREFIX):
                    return
                self._state = "header"
            elif self._state == "header":
                value = self._extract_value()
                if value is None:
                    return
                self.header = self._as_dict(value, "header")
                self._state = "rows_prefix"
            elif self._state == "rows_prefix":
                if not self._advance_literal(self._ROWS_PREFIX):
                    return
                self._state = "rows"
            elif self._state == "rows":
                if not self._buffer:
                    return
                if self._buffer[0] == "]":
                    self._buffer = self._buffer[1:]
                    self._state = "suffix"
                    continue
                value = self._extract_value()
                if value is None:
                    return
                yield self._as_dict(value, "row")
                self._state = "rows_separator"
            elif self._state == "rows_separator":
                if not self._buffer:
                    return
                head = self._buffer[0]
                self._buffer = self._buffer[1:]
                if head == ",":
                    self._state = "rows"
                elif head == "]":
                    self._state = "suffix"
                else:
                    raise LogFormatError(
                        f"corrupt VMM-encoded log: expected ',' or ']', "
                        f"found {head!r}")
            elif self._state == "suffix":
                if not self._buffer:
                    return
                if self._buffer[0] != "}":
                    raise LogFormatError(
                        "corrupt VMM-encoded log: trailing data after rows")
                self._buffer = self._buffer[1:]
                self._state = "done"
            else:  # done
                if self._buffer.strip():
                    raise LogFormatError(
                        "corrupt VMM-encoded log: data after the closing brace")
                self._buffer = ""
                return

    def finish(self) -> None:
        if self._state != "done" or self._buffer.strip():
            raise LogFormatError(
                "corrupt VMM-encoded log: stream ended mid-structure")

    def _advance_literal(self, literal: str) -> bool:
        if len(self._buffer) < len(literal):
            if not literal.startswith(self._buffer):
                raise LogFormatError(
                    f"corrupt VMM-encoded log: expected {literal!r}")
            return False
        if not self._buffer.startswith(literal):
            raise LogFormatError(
                f"corrupt VMM-encoded log: expected {literal!r}")
        self._buffer = self._buffer[len(literal):]
        return True

    def _extract_value(self):
        """Pop one complete JSON value off the buffer, or ``None`` for more.

        ``None`` also covers a malformed value — the distinction between
        "split across fragments" and "corrupt" is only decidable at stream
        end, where :meth:`finish` raises.
        """
        if not self._buffer:
            return None
        try:
            value, end = self._decoder.raw_decode(self._buffer)
        except json.JSONDecodeError:
            return None
        self._buffer = self._buffer[end:]
        return value

    @staticmethod
    def _as_dict(value, what: str) -> Dict:
        if not isinstance(value, dict):
            raise LogFormatError(
                f"corrupt VMM-encoded log: {what} is not an object")
        return value


# -- streaming compressed-size metering --------------------------------------

class IncrementalCompressionMeter:
    """Byte-exact ``len(VmmLogCompressor().compress(segment))``, streamed.

    The audit cost model charges the *compressed* size of the downloaded log
    (:class:`~repro.audit.verdict.AuditCost.compressed_log_bytes`); the
    serial auditor computes it by compressing the materialized segment in one
    shot.  This meter reproduces the exact same byte count while seeing one
    entry at a time: it re-emits the compact key-sorted JSON the whole-blob
    encoder would produce (``json.dumps(..., sort_keys=True)`` serialises
    nested dicts identically whether dumped together or row by row) and pipes
    it through an incremental :class:`bz2.BZ2Compressor`, which by
    construction yields the same stream as one-shot :func:`bz2.compress`.
    Memory stays O(1): the bz2 state plus one encoded row.
    """

    def __init__(self, machine: str, start_hash: bytes, level: int = 9) -> None:
        self._compressor = bz2.BZ2Compressor(level)
        self._count = len(VmmLogCompressor.MAGIC)
        self._codec = _RowCodec()
        self._first_row = True
        self.raw_bytes = 0
        header = json.dumps(_encode_header(machine, start_hash),
                            sort_keys=True, separators=(",", ":"))
        self._feed(f'{{"header":{header},"rows":['.encode("utf-8"))

    def _feed(self, data: bytes) -> None:
        self._count += len(self._compressor.compress(data))

    def add(self, entry: LogEntry) -> None:
        """Account one entry (entries must arrive in log order)."""
        self.add_many([entry])

    def add_many(self, entries: Iterable[LogEntry]) -> None:
        """Account a batch of consecutive entries.

        One :func:`json.dumps` call covers the whole batch (dumping a list
        of rows produces exactly the rows joined by commas, bracketed), so
        the streaming pipeline pays one C-level encode per chunk rather than
        one Python call per entry — with a byte count still identical to the
        one-shot encoder's.
        """
        rows = [self._codec.encode_row(entry) for entry in entries]
        if not rows:
            return
        joined = json.dumps(rows, sort_keys=True, separators=(",", ":"))[1:-1]
        prefix = "" if self._first_row else ","
        self._first_row = False
        self._feed(f"{prefix}{joined}".encode("utf-8"))
        self.raw_bytes += sum(entry.size_bytes() for entry in entries)

    def finish(self) -> int:
        """Close the stream; return the total compressed byte count."""
        self._feed(b"]}")
        self._count += len(self._compressor.flush())
        return self._count


def compress_segment(segment: LogSegment) -> bytes:
    """Module-level convenience wrapper around :class:`VmmLogCompressor`."""
    return VmmLogCompressor().compress(segment)


def decompress_segment(data: bytes) -> LogSegment:
    """Module-level convenience wrapper around :class:`VmmLogCompressor`."""
    return VmmLogCompressor().decompress(data)
