"""Log compression.

Section 6.4 reports log sizes *after applying bzip2 and a lossless,
VMM-specific (but application-independent) compression algorithm* that brings
growth from ~8 MB/min down to ~2.47 MB/min.  We provide both stages:

* :func:`bzip2_compress` / :func:`bzip2_decompress` — plain bzip2.
* :class:`VmmLogCompressor` — a lossless, VMM-specific pre-pass that exploits
  the structure of replay entries (monotone execution counters, near-constant
  clock deltas, repeated field names) by delta-encoding counters and
  dictionary-encoding entry payload keys before the generic compressor runs.

The wire format itself now lives in :mod:`repro.log.codec` as
``format_version=1`` (:class:`~repro.log.codec.JsonBz2Codec`), alongside the
binary ``format_version=2`` codec; this module keeps the historical
compression-centric API — :class:`VmmLogCompressor` delegates to the v1
codec, and :class:`~repro.log.codec.SegmentStreamDecoder` (re-exported here)
streams *any* registered format by sniffing the magic.
"""

from __future__ import annotations

import bz2
import json
from dataclasses import dataclass
from typing import Iterable

from repro.log.codec import (
    JsonBz2Codec,
    SegmentStreamDecoder,
    _encode_v1_header,
    _RowCodec,
)
from repro.log.entries import LogEntry
from repro.log.segments import LogSegment

__all__ = [
    "bzip2_compress",
    "bzip2_decompress",
    "CompressionStats",
    "VmmLogCompressor",
    "SegmentStreamDecoder",
    "IncrementalCompressionMeter",
    "compress_segment",
    "decompress_segment",
]


def bzip2_compress(data: bytes, level: int = 9) -> bytes:
    """Compress ``data`` with bzip2."""
    return bz2.compress(data, level)


def bzip2_decompress(data: bytes) -> bytes:
    """Decompress bzip2 data."""
    return bz2.decompress(data)


@dataclass(frozen=True)
class CompressionStats:
    """Outcome of compressing a log segment."""

    raw_bytes: int
    vmm_encoded_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """Compressed size divided by raw size (smaller is better)."""
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes


class VmmLogCompressor:
    """Two-stage compressor: VMM-specific delta/dictionary pre-pass + bzip2.

    The pre-pass is lossless: :meth:`decompress` reproduces the exact segment
    bytes produced by :func:`repro.log.storage.segment_to_bytes`.  This class
    is now a compression-flavoured veneer over the ``format_version=1`` codec
    (:class:`repro.log.codec.JsonBz2Codec`).
    """

    MAGIC = JsonBz2Codec.MAGIC

    def compress(self, segment: LogSegment) -> bytes:
        """Compress a segment; returns the compressed byte string."""
        return JsonBz2Codec().encode_segment(segment)

    def decompress(self, data: bytes) -> LogSegment:
        """Reverse :meth:`compress`."""
        return JsonBz2Codec().decode_segment(data)

    def stats(self, segment: LogSegment) -> CompressionStats:
        """Compute raw / pre-pass / compressed sizes for a segment."""
        # Imported lazily: storage sits above the codec layer (it routes its
        # format_version checks through the codec registry).
        from repro.log.storage import segment_to_bytes

        raw = segment_to_bytes(segment)
        codec = _RowCodec()
        rows = [codec.encode_row(entry) for entry in segment.entries]
        blob = {"header": _encode_v1_header(segment.machine,
                                            segment.start_hash),
                "rows": rows}
        encoded = json.dumps(blob, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        compressed = self.MAGIC + bzip2_compress(encoded)
        return CompressionStats(raw_bytes=len(raw),
                                vmm_encoded_bytes=len(encoded),
                                compressed_bytes=len(compressed))


# -- streaming compressed-size metering --------------------------------------

class IncrementalCompressionMeter:
    """Byte-exact ``len(VmmLogCompressor().compress(segment))``, streamed.

    Reproduces the exact byte count of the one-shot v1 compressor while
    seeing one entry at a time: it re-emits the compact key-sorted JSON the
    whole-blob encoder would produce (``json.dumps(..., sort_keys=True)``
    serialises nested dicts identically whether dumped together or row by
    row) and pipes it through an incremental :class:`bz2.BZ2Compressor`,
    which by construction yields the same stream as one-shot
    :func:`bz2.compress`.  Memory stays O(1): the bz2 state plus one encoded
    row.

    The audit cost model no longer runs one of these over the whole stream —
    it models compressed download size per snapshot-delimited sub-segment
    (:func:`repro.log.codec.modelled_compressed_log_bytes`), usually served
    straight from the archive manifest — but the meter remains the reference
    implementation that the equivalence tests check both against.
    """

    def __init__(self, machine: str, start_hash: bytes, level: int = 9) -> None:
        self._compressor = bz2.BZ2Compressor(level)
        self._count = len(VmmLogCompressor.MAGIC)
        self._codec = _RowCodec()
        self._first_row = True
        self.raw_bytes = 0
        header = json.dumps(_encode_v1_header(machine, start_hash),
                            sort_keys=True, separators=(",", ":"))
        self._feed(f'{{"header":{header},"rows":['.encode("utf-8"))

    def _feed(self, data: bytes) -> None:
        self._count += len(self._compressor.compress(data))

    def add(self, entry: LogEntry) -> None:
        """Account one entry (entries must arrive in log order)."""
        self.add_many([entry])

    def add_many(self, entries: Iterable[LogEntry]) -> None:
        """Account a batch of consecutive entries.

        One :func:`json.dumps` call covers the whole batch (dumping a list
        of rows produces exactly the rows joined by commas, bracketed), so
        the streaming pipeline pays one C-level encode per chunk rather than
        one Python call per entry — with a byte count still identical to the
        one-shot encoder's.
        """
        rows = [self._codec.encode_row(entry) for entry in entries]
        if not rows:
            return
        joined = json.dumps(rows, sort_keys=True, separators=(",", ":"))[1:-1]
        prefix = "" if self._first_row else ","
        self._first_row = False
        self._feed(f"{prefix}{joined}".encode("utf-8"))
        self.raw_bytes += sum(entry.size_bytes() for entry in entries)

    def finish(self) -> int:
        """Close the stream; return the total compressed byte count."""
        self._feed(b"]}")
        self._count += len(self._compressor.flush())
        return self._count


def compress_segment(segment: LogSegment) -> bytes:
    """Module-level convenience wrapper around :class:`VmmLogCompressor`."""
    return VmmLogCompressor().compress(segment)


def decompress_segment(data: bytes) -> LogSegment:
    """Module-level convenience wrapper around :class:`VmmLogCompressor`."""
    return VmmLogCompressor().decompress(data)
