"""Log compression.

Section 6.4 reports log sizes *after applying bzip2 and a lossless,
VMM-specific (but application-independent) compression algorithm* that brings
growth from ~8 MB/min down to ~2.47 MB/min.  We provide both stages:

* :func:`bzip2_compress` / :func:`bzip2_decompress` — plain bzip2.
* :class:`VmmLogCompressor` — a lossless, VMM-specific pre-pass that exploits
  the structure of replay entries (monotone execution counters, near-constant
  clock deltas, repeated field names) by delta-encoding counters and
  dictionary-encoding entry payload keys before the generic compressor runs.
"""

from __future__ import annotations

import bz2
import json
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import LogFormatError
from repro.log.entries import EntryType, LogEntry
from repro.log.segments import LogSegment
from repro.log.storage import segment_to_bytes


def bzip2_compress(data: bytes, level: int = 9) -> bytes:
    """Compress ``data`` with bzip2."""
    return bz2.compress(data, level)


def bzip2_decompress(data: bytes) -> bytes:
    """Decompress bzip2 data."""
    return bz2.decompress(data)


@dataclass(frozen=True)
class CompressionStats:
    """Outcome of compressing a log segment."""

    raw_bytes: int
    vmm_encoded_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """Compressed size divided by raw size (smaller is better)."""
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes


class VmmLogCompressor:
    """Two-stage compressor: VMM-specific delta/dictionary pre-pass + bzip2.

    The pre-pass is lossless: :meth:`decompress` reproduces the exact segment
    bytes produced by :func:`repro.log.storage.segment_to_bytes`.
    """

    MAGIC = b"AVMLOGZ1"

    def compress(self, segment: LogSegment) -> bytes:
        """Compress a segment; returns the compressed byte string."""
        encoded = self._vmm_encode(segment)
        return self.MAGIC + bzip2_compress(encoded)

    def decompress(self, data: bytes) -> LogSegment:
        """Reverse :meth:`compress`."""
        if not data.startswith(self.MAGIC):
            raise LogFormatError("not a VMM-compressed log (bad magic)")
        encoded = bzip2_decompress(data[len(self.MAGIC):])
        return self._vmm_decode(encoded)

    def stats(self, segment: LogSegment) -> CompressionStats:
        """Compute raw / pre-pass / compressed sizes for a segment."""
        raw = segment_to_bytes(segment)
        encoded = self._vmm_encode(segment)
        compressed = self.MAGIC + bzip2_compress(encoded)
        return CompressionStats(raw_bytes=len(raw),
                                vmm_encoded_bytes=len(encoded),
                                compressed_bytes=len(compressed))

    # -- VMM-specific pre-pass ----------------------------------------------

    def _vmm_encode(self, segment: LogSegment) -> bytes:
        """Delta-encode execution counters and strip per-entry redundancy."""
        header = {
            "machine": segment.machine,
            "start_hash": segment.start_hash.hex(),
        }
        rows: List[Dict] = []
        previous_counter = 0
        previous_sequence = None
        for entry in segment.entries:
            row: Dict = {"t": entry.entry_type.wire_name}
            # Sequence numbers are dense; store only breaks in density.
            if previous_sequence is not None and entry.sequence == previous_sequence + 1:
                pass
            else:
                row["s"] = entry.sequence
            previous_sequence = entry.sequence
            # Timestamps are bookkeeping only; store them verbatim so the
            # round-trip is bit-exact (they still compress well under bzip2).
            if entry.timestamp:
                row["ts"] = entry.timestamp
            content = dict(entry.content)
            # Execution counters in replay entries are monotone; delta-encode.
            counter = content.get("execution_counter")
            if isinstance(counter, int):
                row["dc"] = counter - previous_counter
                previous_counter = counter
                content.pop("execution_counter")
            row["c"] = content
            # Chain hashes are recomputable from content during decode *only*
            # if we keep them; we keep them (lossless requirement) but they
            # compress well under bzip2 because they are high-entropy anyway.
            row["h"] = entry.chain_hash.hex()
            row["p"] = entry.previous_hash.hex()
            rows.append(row)
        blob = {"header": header, "rows": rows}
        return json.dumps(blob, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def _vmm_decode(self, encoded: bytes) -> LogSegment:
        try:
            blob = json.loads(encoded.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise LogFormatError(f"corrupt VMM-encoded log: {exc}") from exc
        header = blob["header"]
        entries: List[LogEntry] = []
        sequence = None
        counter = 0
        for row in blob["rows"]:
            sequence = row["s"] if "s" in row else (sequence + 1 if sequence is not None else 1)
            timestamp = float(row.get("ts", 0.0))
            content = dict(row["c"])
            if "dc" in row:
                counter += row["dc"]
                content["execution_counter"] = counter
            entries.append(LogEntry(
                sequence=sequence,
                entry_type=EntryType(row["t"]),
                content=content,
                chain_hash=bytes.fromhex(row["h"]),
                previous_hash=bytes.fromhex(row["p"]),
                timestamp=timestamp,
            ))
        return LogSegment(machine=str(header["machine"]),
                          start_hash=bytes.fromhex(header["start_hash"]),
                          entries=entries)


def compress_segment(segment: LogSegment) -> bytes:
    """Module-level convenience wrapper around :class:`VmmLogCompressor`."""
    return VmmLogCompressor().compress(segment)


def decompress_segment(data: bytes) -> LogSegment:
    """Module-level convenience wrapper around :class:`VmmLogCompressor`."""
    return VmmLogCompressor().decompress(data)
