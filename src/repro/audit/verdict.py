"""Audit results and cost accounting."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.audit.evidence import Evidence
from repro.avmm.replayer import ReplayReport


class Verdict(enum.Enum):
    """Outcome of an audit."""

    PASS = "pass"          # no fault detected
    FAIL = "fail"          # fault detected, evidence available
    SUSPECTED = "suspected"  # machine did not respond to the audit request


class AuditPhase(enum.Enum):
    """Which step of the audit produced the verdict."""

    AUTHENTICATOR_CHECK = "authenticator_check"
    SYNTACTIC_CHECK = "syntactic_check"
    SEMANTIC_CHECK = "semantic_check"
    COMPLETE = "complete"


@dataclass
class AuditCost:
    """Resources an audit consumed (drives Sections 6.6, 6.12 and Figure 9)."""

    log_bytes_downloaded: int = 0
    compressed_log_bytes: int = 0
    snapshot_bytes_downloaded: int = 0
    compression_seconds: float = 0.0
    decompression_seconds: float = 0.0
    syntactic_seconds: float = 0.0
    semantic_seconds: float = 0.0

    @property
    def total_bytes_downloaded(self) -> int:
        return self.compressed_log_bytes + self.snapshot_bytes_downloaded

    @property
    def total_seconds(self) -> float:
        return (self.compression_seconds + self.decompression_seconds
                + self.syntactic_seconds + self.semantic_seconds)


@dataclass
class AuditResult:
    """Everything an audit produced."""

    machine: str
    auditor: str
    verdict: Verdict
    phase: AuditPhase
    reason: str = ""
    authenticators_checked: int = 0
    syntactic_problems: List[str] = field(default_factory=list)
    replay_report: Optional[ReplayReport] = None
    evidence: Optional[Evidence] = None
    cost: AuditCost = field(default_factory=AuditCost)

    @property
    def ok(self) -> bool:
        """True when the audit completed and found no fault."""
        return self.verdict is Verdict.PASS

    def summary(self) -> str:
        """One-line human-readable summary."""
        base = f"audit of {self.machine} by {self.auditor}: {self.verdict.value}"
        if self.verdict is Verdict.PASS:
            return base
        return f"{base} ({self.phase.value}: {self.reason})"
