"""Audit results and cost accounting."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.audit.evidence import Evidence
from repro.avmm.replayer import ReplayReport


class Verdict(enum.Enum):
    """Outcome of an audit."""

    PASS = "pass"          # no fault detected
    FAIL = "fail"          # fault detected, evidence available
    SUSPECTED = "suspected"  # machine did not respond to the audit request


class AuditPhase(enum.Enum):
    """Which step of the audit produced the verdict."""

    AUTHENTICATOR_CHECK = "authenticator_check"
    SYNTACTIC_CHECK = "syntactic_check"
    SEMANTIC_CHECK = "semantic_check"
    COMPLETE = "complete"


@dataclass
class AuditCost:
    """Resources an audit consumed (drives Sections 6.6, 6.12 and Figure 9)."""

    log_bytes_downloaded: int = 0
    compressed_log_bytes: int = 0
    snapshot_bytes_downloaded: int = 0
    compression_seconds: float = 0.0
    decompression_seconds: float = 0.0
    syntactic_seconds: float = 0.0
    semantic_seconds: float = 0.0
    #: modelled cost of checking authenticator signatures; stays 0.0 on the
    #: serial path (the paper folds it into the syntactic check) and is filled
    #: in by the batch-verifying engine, where it is the part batching shrinks
    signature_seconds: float = 0.0
    #: authenticator signatures checked / batched screening passes used
    signatures_verified: int = 0
    signature_screen_operations: int = 0

    @property
    def total_bytes_downloaded(self) -> int:
        return self.compressed_log_bytes + self.snapshot_bytes_downloaded

    @property
    def total_seconds(self) -> float:
        return (self.compression_seconds + self.decompression_seconds
                + self.syntactic_seconds + self.semantic_seconds
                + self.signature_seconds)

    def add(self, other: "AuditCost") -> None:
        """Accumulate another audit's cost into this one (chunk/fleet merge)."""
        self.log_bytes_downloaded += other.log_bytes_downloaded
        self.compressed_log_bytes += other.compressed_log_bytes
        self.snapshot_bytes_downloaded += other.snapshot_bytes_downloaded
        self.compression_seconds += other.compression_seconds
        self.decompression_seconds += other.decompression_seconds
        self.syntactic_seconds += other.syntactic_seconds
        self.semantic_seconds += other.semantic_seconds
        self.signature_seconds += other.signature_seconds
        self.signatures_verified += other.signatures_verified
        self.signature_screen_operations += other.signature_screen_operations

    @classmethod
    def total(cls, costs: Iterable["AuditCost"]) -> "AuditCost":
        """Sum of many audit costs (the fleet-level aggregate)."""
        merged = cls()
        for cost in costs:
            merged.add(cost)
        return merged


@dataclass
class AuditResult:
    """Everything an audit produced."""

    machine: str
    auditor: str
    verdict: Verdict
    phase: AuditPhase
    reason: str = ""
    authenticators_checked: int = 0
    syntactic_problems: List[str] = field(default_factory=list)
    replay_report: Optional[ReplayReport] = None
    evidence: Optional[Evidence] = None
    cost: AuditCost = field(default_factory=AuditCost)
    #: measured wall-clock seconds the audit took (perf_counter, set by
    #: every front-end via the shared obs timer).  Excluded from equality:
    #: results are compared structurally across serial/engine/streaming
    #: paths, and wall time is measurement, not substance.
    wall_seconds: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        """True when the audit completed and found no fault."""
        return self.verdict is Verdict.PASS

    def summary(self) -> str:
        """One-line human-readable summary."""
        base = f"audit of {self.machine} by {self.auditor}: {self.verdict.value}"
        if self.verdict is Verdict.PASS:
            return base
        return f"{base} ({self.phase.value}: {self.reason})"
