"""The semantic check: deterministic replay against the reference image.

Thin wrapper around :class:`~repro.avmm.replayer.DeterministicReplayer` that
also estimates how long the check takes (Section 6.6: replay takes roughly as
long as the original execution, minus idle periods, times a small slowdown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.avmm.replayer import DeterministicReplayer, ReplayReport
from repro.log.segments import LogSegment
from repro.metrics.perfmodel import CostParameters
from repro.vm.image import VMImage


@dataclass
class SemanticCheckTiming:
    """Estimated wall-clock cost of a semantic check."""

    active_seconds: float
    replay_seconds: float


class SemanticChecker:
    """Runs deterministic replay and reports divergences."""

    def __init__(self, reference_image: VMImage,
                 cost_params: Optional[CostParameters] = None) -> None:
        self.reference_image = reference_image
        self.cost_params = cost_params or CostParameters()

    def check(self, segment: LogSegment,
              initial_state: Optional[Dict[str, Any]] = None,
              carried_payloads: Optional[Dict[str, bytes]] = None
              ) -> ReplayReport:
        """Replay ``segment`` (optionally from a snapshot state).

        ``carried_payloads`` forwards the streaming audit's in-flight RECV
        payload window to the replayer (chunked replay only; whole-log
        checks leave it ``None``).
        """
        replayer = DeterministicReplayer(self.reference_image)
        return replayer.replay(segment, initial_state=initial_state,
                               carried_payloads=carried_payloads)

    def estimate_timing(self, report: ReplayReport) -> SemanticCheckTiming:
        """Estimate the wall-clock time the semantic check represents.

        Replay repeats all the computation of the original run but skips idle
        periods; the paper measured 1,977 s of replay for 1,987 s of actual
        game play inside a 2,216 s log (Section 6.6).
        """
        replay_seconds = report.active_seconds * self.cost_params.replay_slowdown_factor
        return SemanticCheckTiming(active_seconds=report.active_seconds,
                                   replay_seconds=replay_seconds)
