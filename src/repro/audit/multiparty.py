"""Multi-party protocol (Section 4.6).

Three additions are needed beyond the two-party case:

1. **Authenticator collection** — before auditing Bob, Alice gathers the
   authenticators other users have received from Bob
   (:func:`collect_authenticators_for`).
2. **Challenge forwarding** — if Bob ignores Alice's audit request, Alice
   forwards the challenge to the other nodes, who stop communicating with Bob
   until he answers (:class:`ChallengeCoordinator`).
3. **Evidence distribution** — once Alice has evidence, she sends it to the
   other interested parties, each of whom verifies it independently
   (:func:`distribute_evidence`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.audit.evidence import Evidence
from repro.avmm.monitor import AccountableVMM
from repro.crypto.keys import KeyStore
from repro.errors import LogFormatError
from repro.log.authenticator import Authenticator
from repro.vm.image import VMImage

_challenge_ids = itertools.count(1)


@dataclass
class Challenge:
    """An unanswered audit request forwarded to the other parties."""

    challenge_id: int
    challenger: str
    machine: str
    description: str
    issued_at: float
    answered: bool = False
    response: Optional[str] = None


class ChallengeCoordinator:
    """Shared bookkeeping of outstanding challenges.

    Every node consults :meth:`is_blocked` before communicating with a peer;
    a machine with an outstanding challenge is ignored until it answers, at
    which point the response is forwarded to the original challenger.
    """

    def __init__(self) -> None:
        self._challenges: Dict[int, Challenge] = {}

    def issue(self, challenger: str, machine: str, description: str,
              now: float = 0.0) -> Challenge:
        """Record that ``challenger`` could not get an answer from ``machine``."""
        challenge = Challenge(challenge_id=next(_challenge_ids),
                              challenger=challenger, machine=machine,
                              description=description, issued_at=now)
        self._challenges[challenge.challenge_id] = challenge
        return challenge

    def is_blocked(self, machine: str) -> bool:
        """True when the machine has at least one unanswered challenge."""
        return any(c.machine == machine and not c.answered
                   for c in self._challenges.values())

    def outstanding_for(self, machine: str) -> List[Challenge]:
        return [c for c in self._challenges.values()
                if c.machine == machine and not c.answered]

    def respond(self, machine: str, response: str) -> List[Challenge]:
        """The challenged machine answers; all its challenges are cleared.

        Returns the challenges that were answered so the caller can forward
        the response to each original challenger.
        """
        answered = []
        for challenge in self._challenges.values():
            if challenge.machine == machine and not challenge.answered:
                challenge.answered = True
                challenge.response = response
                answered.append(challenge)
        return answered


@dataclass(frozen=True)
class EquivocationProof:
    """Two signed commitments by one machine to different log prefixes.

    If a machine sends authenticator ``(s, h)`` to one party and ``(s, h')``
    with ``h != h'`` to another, the two authenticators *alone* prove that it
    forked its log: both carry valid signatures under the machine's certified
    key, and a correct machine signs exactly one chain hash per sequence
    number.  No log download or replay is needed to verify the proof.
    """

    machine: str
    sequence: int
    first: Authenticator
    second: Authenticator

    def verify(self, keystore: KeyStore) -> bool:
        """Re-check the proof from the signed authenticators alone."""
        return (
            self.first.machine == self.machine
            and self.second.machine == self.machine
            and self.first.sequence == self.sequence
            and self.second.sequence == self.sequence
            and self.first.chain_hash != self.second.chain_hash
            and self.first.verify(keystore)
            and self.second.verify(keystore)
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready wire form, reusing the authenticator wire encoding.

        Proofs travel between mutually-distrusting parties (shard → fleet
        coordinator → third-party verifiers), so the wire form carries
        everything :meth:`verify` needs — the receiver re-checks the proof
        against its *own* keystore and never trusts the sender.
        """
        return {
            "kind": "equivocation_proof",
            "machine": self.machine,
            "sequence": self.sequence,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EquivocationProof":
        """Rebuild a proof from its wire form.

        Raises :class:`~repro.errors.LogFormatError` on structurally invalid
        input; a *well-formed but false* proof decodes fine and is rejected
        by :meth:`verify` instead.
        """
        try:
            if payload.get("kind", "equivocation_proof") != "equivocation_proof":
                raise ValueError(f"unexpected kind {payload.get('kind')!r}")
            return cls(
                machine=str(payload["machine"]),
                sequence=int(payload["sequence"]),
                first=Authenticator.from_dict(payload["first"]),
                second=Authenticator.from_dict(payload["second"]),
            )
        except LogFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise LogFormatError(
                f"malformed equivocation proof: {exc}") from exc


def find_equivocation(authenticators: Iterable[Authenticator],
                      keystore: KeyStore) -> Optional[EquivocationProof]:
    """Scan pooled authenticators for conflicting commitments.

    This is the multi-party cross-check of Section 4.6: before auditing Bob,
    Alice pools the authenticators every party has collected from him; two
    validly signed authenticators for the same sequence number with different
    chain hashes convict Bob without his cooperation.  Returns the first
    conflict found (deterministic in input order), or ``None``.
    """
    seen: Dict[tuple, List[Authenticator]] = {}
    for auth in authenticators:
        key = (auth.machine, auth.sequence)
        bucket = seen.setdefault(key, [])
        for previous in bucket:
            # Compare against every retained candidate, not just the first:
            # a machine could ship one garbage-signed authenticator per
            # sequence early on to occupy the slot and mask a later genuine
            # conflict.  Signatures are only checked on conflicting pairs,
            # so the scan stays cheap on honest pools.
            if previous.chain_hash != auth.chain_hash \
                    and previous.verify(keystore) and auth.verify(keystore):
                return EquivocationProof(machine=auth.machine,
                                         sequence=auth.sequence,
                                         first=previous, second=auth)
        bucket.append(auth)
    return None


def collect_authenticators_for(machine: str,
                               holders: Iterable[AccountableVMM]) -> List[Authenticator]:
    """Gather every authenticator the given parties hold about ``machine``."""
    collected: List[Authenticator] = []
    for holder in holders:
        collected.extend(holder.authenticators_from(machine))
    return collected


def distribute_evidence(evidence: Evidence, verifiers: Iterable[tuple[str, KeyStore]],
                        reference_image: VMImage) -> Dict[str, bool]:
    """Send evidence to other parties; each verifies it independently.

    ``verifiers`` is an iterable of ``(identity, keystore)`` pairs; the return
    value maps each identity to whether it confirmed the fault.
    """
    verdicts: Dict[str, bool] = {}
    for identity, keystore in verifiers:
        verdicts[identity] = evidence.verify(keystore, reference_image)
    return verdicts
