"""Multi-party protocol (Section 4.6).

Three additions are needed beyond the two-party case:

1. **Authenticator collection** — before auditing Bob, Alice gathers the
   authenticators other users have received from Bob
   (:func:`collect_authenticators_for`).
2. **Challenge forwarding** — if Bob ignores Alice's audit request, Alice
   forwards the challenge to the other nodes, who stop communicating with Bob
   until he answers (:class:`ChallengeCoordinator`).
3. **Evidence distribution** — once Alice has evidence, she sends it to the
   other interested parties, each of whom verifies it independently
   (:func:`distribute_evidence`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.audit.evidence import Evidence
from repro.avmm.monitor import AccountableVMM
from repro.crypto.keys import KeyStore
from repro.log.authenticator import Authenticator
from repro.vm.image import VMImage

_challenge_ids = itertools.count(1)


@dataclass
class Challenge:
    """An unanswered audit request forwarded to the other parties."""

    challenge_id: int
    challenger: str
    machine: str
    description: str
    issued_at: float
    answered: bool = False
    response: Optional[str] = None


class ChallengeCoordinator:
    """Shared bookkeeping of outstanding challenges.

    Every node consults :meth:`is_blocked` before communicating with a peer;
    a machine with an outstanding challenge is ignored until it answers, at
    which point the response is forwarded to the original challenger.
    """

    def __init__(self) -> None:
        self._challenges: Dict[int, Challenge] = {}

    def issue(self, challenger: str, machine: str, description: str,
              now: float = 0.0) -> Challenge:
        """Record that ``challenger`` could not get an answer from ``machine``."""
        challenge = Challenge(challenge_id=next(_challenge_ids),
                              challenger=challenger, machine=machine,
                              description=description, issued_at=now)
        self._challenges[challenge.challenge_id] = challenge
        return challenge

    def is_blocked(self, machine: str) -> bool:
        """True when the machine has at least one unanswered challenge."""
        return any(c.machine == machine and not c.answered
                   for c in self._challenges.values())

    def outstanding_for(self, machine: str) -> List[Challenge]:
        return [c for c in self._challenges.values()
                if c.machine == machine and not c.answered]

    def respond(self, machine: str, response: str) -> List[Challenge]:
        """The challenged machine answers; all its challenges are cleared.

        Returns the challenges that were answered so the caller can forward
        the response to each original challenger.
        """
        answered = []
        for challenge in self._challenges.values():
            if challenge.machine == machine and not challenge.answered:
                challenge.answered = True
                challenge.response = response
                answered.append(challenge)
        return answered


def collect_authenticators_for(machine: str,
                               holders: Iterable[AccountableVMM]) -> List[Authenticator]:
    """Gather every authenticator the given parties hold about ``machine``."""
    collected: List[Authenticator] = []
    for holder in holders:
        collected.extend(holder.authenticators_from(machine))
    return collected


def distribute_evidence(evidence: Evidence, verifiers: Iterable[tuple[str, KeyStore]],
                        reference_image: VMImage) -> Dict[str, bool]:
    """Send evidence to other parties; each verifies it independently.

    ``verifiers`` is an iterable of ``(identity, keystore)`` pairs; the return
    value maps each identity to whether it confirmed the fault.
    """
    verdicts: Dict[str, bool] = {}
    for identity, keystore in verifiers:
        verdicts[identity] = evidence.verify(keystore, reference_image)
    return verdicts
