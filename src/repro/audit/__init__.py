"""Auditing: the checks an auditor runs against a machine's log.

An audit has three steps (Section 4.5):

1. obtain a log segment plus the authenticators the machine previously
   issued, and verify the segment against them (tamper check);
2. obtain and verify the snapshot at the beginning of the segment (or start
   from the reference image for a full audit);
3. run the *syntactic check* (well-formedness, signatures, acknowledgments,
   message/MAC-layer cross-references) and the *semantic check*
   (deterministic replay against the reference image).

If any step fails the auditor obtains :class:`~repro.audit.evidence.Evidence`
that any third party can verify without trusting the auditor or the auditee.
"""

from repro.audit.auditor import Auditor
from repro.audit.engine import (
    AuditAssignment,
    AuditScheduler,
    FleetAuditReport,
    MachineAuditReport,
)
from repro.audit.evidence import Evidence
from repro.audit.online import OnlineAuditor
from repro.audit.semantic import SemanticChecker
from repro.audit.spot_check import SpotChecker, SpotCheckResult
from repro.audit.stream import (
    ArchiveEntryStream,
    StreamAuditReport,
    StreamingAuditPipeline,
    stream_audit,
)
from repro.audit.syntactic import SyntacticChecker, SyntacticReport
from repro.audit.verdict import AuditCost, AuditPhase, AuditResult, Verdict

__all__ = [
    "AuditAssignment",
    "AuditScheduler",
    "Auditor",
    "FleetAuditReport",
    "MachineAuditReport",
    "Evidence",
    "OnlineAuditor",
    "SemanticChecker",
    "SpotChecker",
    "SpotCheckResult",
    "ArchiveEntryStream",
    "StreamAuditReport",
    "StreamingAuditPipeline",
    "stream_audit",
    "SyntacticChecker",
    "SyntacticReport",
    "AuditResult",
    "AuditCost",
    "AuditPhase",
    "Verdict",
]
