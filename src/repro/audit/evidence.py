"""Evidence of a fault.

When an audit fails, the auditor packages the log segment, the authenticators
and a description of the failure.  Any third party holding the reference image
and the parties' public keys can re-run the same deterministic checks and
reach the same verdict, *without having to trust either Alice or Bob*
(Section 3.3, step 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.keys import KeyStore
from repro.errors import AuthenticatorMismatchError, EvidenceError, HashChainError
from repro.log.authenticator import Authenticator
from repro.log.segments import LogSegment
from repro.vm.image import VMImage


@dataclass
class Evidence:
    """A self-contained, independently verifiable proof of a fault."""

    machine: str
    accuser: str
    reason: str
    segment: Optional[LogSegment]
    authenticators: List[Authenticator] = field(default_factory=list)
    reference_image_hash: bytes = b""
    #: initial state for replay, when the segment does not start at the beginning
    initial_state: Optional[dict] = None
    #: set when the machine refused to produce a log segment at all
    unanswered_challenge: bool = False

    def verify(self, keystore: KeyStore, reference_image: VMImage) -> bool:
        """Re-run the auditor's checks; returns ``True`` if the fault is confirmed.

        A third party calls this with its *own* keystore and its *own* copy of
        the reference image.  The evidence is confirmed when either

        * the machine never produced a log matching its authenticators
          (``unanswered_challenge`` with at least one valid authenticator), or
        * the supplied log segment fails the tamper check, or
        * the segment passes the tamper check but deterministic replay against
          the reference image diverges.
        """
        if reference_image.image_hash() != self.reference_image_hash:
            raise EvidenceError(
                "evidence refers to a different reference image than the verifier's")

        valid_auths = [a for a in self.authenticators if a.verify(keystore)]
        if not valid_auths:
            raise EvidenceError("evidence contains no valid authenticator")

        if self.unanswered_challenge or self.segment is None:
            # The authenticators prove that log entries up to the covered
            # sequence numbers must exist; the machine's failure to produce
            # them is itself the fault (Section 4.5, "Verifying the log").
            return True

        try:
            self.segment.verify_against_authenticators(valid_auths, keystore)
        except (HashChainError, AuthenticatorMismatchError):
            return True  # tampered log: fault confirmed

        # The log is genuine; the fault must show up as a replay divergence or
        # a syntactic violation.
        from repro.audit.semantic import SemanticChecker
        from repro.audit.syntactic import SyntacticChecker

        syntactic = SyntacticChecker(keystore).check(self.segment)
        if not syntactic.ok:
            return True
        report = SemanticChecker(reference_image).check(
            self.segment, initial_state=self.initial_state)
        return report.diverged
