"""The streaming, bounded-memory audit pipeline.

The paper's accountability guarantee is only deployable at fleet scale if
auditing a machine's log does not require holding that log in memory.  The
materializing path (``LogArchive.materialized_log`` →
:meth:`Auditor.audit_segment <repro.audit.auditor.Auditor.audit_segment>`)
inflates every archived entry
into one giant in-memory :class:`~repro.log.segments.LogSegment` before any
check runs, so peak auditor memory grows with log *length*.  This module
replaces it with a pull-based pipeline whose peak memory is one *chunk* (a
run of snapshot-delimited archived segments) plus O(1) checkpoints:

1. **decode** — entries are inflated incrementally from the archive's
   compressed segment files (:meth:`LogArchive.stream_segment
   <repro.store.archive.LogArchive.stream_segment>`, built on the streaming
   idiom of :func:`repro.log.storage.iter_segment_entries`);
2. **chain verify** — each decoded segment extends a running
   :class:`~repro.log.hashchain.ChainCheckpoint` in one batch
   (:func:`~repro.log.hashchain.extend_checkpoint_batch`), so tamper
   evidence needs no look-back;
3. **commitment check** — authenticators are batch-verified in sliding
   windows (:func:`~repro.log.authenticator.batch_verify_authenticators`) as
   their chunk streams past;
4. **syntactic check** — per-entry checks run chunk by chunk; the stream
   cross-checks (SEND/RECV vs MAC-layer pairing) run in a bounded-memory
   incremental checker that evicts matched pairs;
5. **semantic check** — the replayer is fed chunk by chunk, each chunk
   starting from the snapshot verified at its boundary (Section 4.5,
   "Verifying the snapshot"), with still-in-flight RECV payloads carried
   across the boundary.

**Equivalence guarantee.**  A passing streamed audit produces an
:class:`~repro.audit.verdict.AuditResult` *structurally identical* — same
verdict, counters, replay report and modelled :class:`~repro.audit.verdict.
AuditCost`, including the modelled compressed log size via
:class:`~repro.log.codec.ModelledCostAccumulator` (which reproduces
:func:`~repro.log.codec.modelled_compressed_log_bytes` exactly, whatever the
chunking, and serves sub-segment sizes from the archive manifest instead of
recompressing) — to what the serial materializing audit of the same archive
produces.  Any detected fault
(or inability to stream, e.g. an unverifiable boundary snapshot) falls back
to the materializing serial audit so failure verdicts and evidence are
*canonical*: exactly the optimistic-fast-path/serial-confirm design of the
parallel engine (:mod:`repro.audit.engine`).  ``tests/test_stream_equivalence
.py`` enforces the guarantee differentially across the adversary matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.audit.evidence import Evidence
from repro.audit.semantic import SemanticChecker
from repro.audit.syntactic import SyntacticChecker
from repro.audit.verdict import AuditCost, AuditPhase, AuditResult, Verdict
from repro.avmm.replayer import ReplayReport
from repro.errors import (
    HashChainError,
    MissingSnapshotError,
    ReproError,
    StoreError,
)
from repro.log.codec import ModelledCostAccumulator
from repro.log.entries import EntryType, LogEntry
from repro.log.hashchain import (
    ChainCheckpoint,
    extend_checkpoint,
    extend_checkpoint_batch,
)
from repro.log.segments import LogSegment
from repro.log.authenticator import batch_verify_authenticators
from repro.obs import Observability, ensure_obs

__all__ = [
    "ArchiveEntryStream",
    "StreamChunk",
    "StreamStats",
    "StreamAuditReport",
    "StreamingCrossChecker",
    "StreamingAuditPipeline",
    "fetch_verified_snapshot_entry",
    "iter_stream_chunks",
    "stream_audit",
]

#: authenticators batch-verified per screening window
DEFAULT_SIGNATURE_WINDOW = 256


# ---------------------------------------------------------------------------
# Stage 1+2: verified entry / chunk streams over an archive
# ---------------------------------------------------------------------------

def _records_from(archive, machine: str, start: Optional[ChainCheckpoint]):
    """Segment records after ``start``, with the checkpoint to resume from.

    ``start`` must sit on a segment boundary (the stream can only prove
    continuity from a checkpoint it can anchor to a record edge); ``None``
    starts at the archive's retention checkpoint (or genesis).
    """
    records = archive.segment_records(machine)
    checkpoint = archive.start_checkpoint(machine)
    if start is None or start == checkpoint:
        return records, checkpoint
    remaining = [record for record in records
                 if record.first_sequence > start.sequence]
    if not remaining:
        # Either the whole log was already consumed (resume at the head is
        # a legitimate empty suffix) or the checkpoint points mid-segment /
        # past the end — silently yielding nothing would let unaudited
        # entries pass as "fully streamed".
        head = records[-1].end_checkpoint() if records \
            else archive.start_checkpoint(machine)
        if start.sequence != head.sequence:
            raise StoreError(
                f"cannot resume the stream of {machine!r} at sequence "
                f"{start.sequence}: not a segment boundary")
        if start.chain_hash != head.chain_hash:
            raise HashChainError(
                f"resume checkpoint for {machine!r} at sequence "
                f"{start.sequence} does not match the archived chain")
        return [], start
    if remaining[0].first_sequence != start.sequence + 1:
        raise StoreError(
            f"cannot resume the stream of {machine!r} at sequence "
            f"{start.sequence}: not a segment boundary")
    if remaining[0].start_hash != start.chain_hash:
        raise HashChainError(
            f"resume checkpoint for {machine!r} at sequence {start.sequence} "
            f"does not match the archived chain")
    return remaining, start


class ArchiveEntryStream:
    """A resumable, chain-verified, pull-based entry stream.

    Iterating yields every retained entry of ``machine`` in order, decoding
    the archive's segment files incrementally and proving after each entry
    that it extends :attr:`checkpoint` — which therefore always holds the
    chain state after the last yielded entry.  Interrupt the iteration at any
    segment boundary, persist the checkpoint, and construct a new stream with
    ``start=checkpoint``: the entries and checkpoints that follow are
    identical to an uninterrupted pass (property-tested in
    ``tests/test_stream_properties.py``).
    """

    def __init__(self, archive, machine: str,
                 start: Optional[ChainCheckpoint] = None) -> None:
        self._archive = archive
        self.machine = machine
        self._records, self.checkpoint = _records_from(archive, machine, start)
        #: records fully streamed so far (resume anchor granularity)
        self.segments_done = 0

    def __iter__(self) -> Iterator[LogEntry]:
        for record in self._records:
            for entry in self._archive.stream_segment(record):
                self.checkpoint = extend_checkpoint(self.checkpoint, entry)
                yield entry
            self.segments_done += 1


@dataclass
class StreamChunk:
    """One audit-sized chunk of the stream (a run of archived segments)."""

    index: int
    segment: LogSegment
    start_checkpoint: ChainCheckpoint
    end_checkpoint: ChainCheckpoint
    #: snapshot id sealing the chunk's last segment (None for the tail)
    sealed_by_snapshot: Optional[int] = None


def _chunk_record_counts(archive, machine: str, records,
                         max_chunks: Optional[int]) -> List[int]:
    """Group segment records into chunks that end at replayable boundaries.

    A chunk may only end after a segment sealed by a snapshot that is
    actually archived — otherwise the next chunk would have no verified
    replay start.  Unsealed segments (the shipped log tail) are absorbed
    into the following group, or form the final one.  With ``max_chunks``,
    adjacent groups are merged as evenly as possible.
    """
    snapshot_ids = set(archive.snapshot_store(machine).snapshot_ids())
    groups: List[int] = []
    current = 0
    for record in records:
        current += 1
        if record.sealed_by_snapshot is not None \
                and record.sealed_by_snapshot in snapshot_ids:
            groups.append(current)
            current = 0
    if current:
        groups.append(current)
    if max_chunks is not None and len(groups) > max_chunks:
        base, extra = divmod(len(groups), max_chunks)
        merged: List[int] = []
        cursor = 0
        for position in range(max_chunks):
            size = base + (1 if position < extra else 0)
            merged.append(sum(groups[cursor:cursor + size]))
            cursor += size
        groups = merged
    return groups


def iter_stream_chunks(target, max_chunks: Optional[int] = None,
                       start: Optional[ChainCheckpoint] = None,
                       verify_chain: bool = True) -> Iterator[StreamChunk]:
    """Stream an archive-backed target's log as replayable chunks.

    Each yielded :class:`StreamChunk` holds one chunk's entries (already
    chain-verified against the previous chunk's end checkpoint); previous
    chunks can be dropped by the consumer, so a pipeline iterating this holds
    O(chunk) entries.  ``max_chunks=None`` yields the finest chunking (one
    chunk per snapshot-sealed segment run); the parallel engine passes its
    chunk budget instead.

    ``verify_chain=False`` skips the per-entry chain verification and takes
    the checkpoints from the manifest records (whose tiling was proven at
    archive recovery, and whose first/last sequence and end hash
    :meth:`~repro.store.archive.LogArchive.stream_segment` still checks
    against the decoded entries).  The engine uses this when planning chunk
    jobs — its workers re-verify every chunk's chain from the checkpoint
    anyway, so verifying during planning would double the hash work and
    serialize half of it.
    """
    archive = target.archive
    machine = target.identity
    records, checkpoint = _records_from(archive, machine, start)
    counts = _chunk_record_counts(archive, machine, records, max_chunks)
    cursor = 0
    for index, count in enumerate(counts):
        chunk_records = records[cursor:cursor + count]
        cursor += count
        start_checkpoint = checkpoint
        entries: List[LogEntry] = []
        for record in chunk_records:
            record_entries = list(archive.stream_segment(record))
            if verify_chain:
                checkpoint = extend_checkpoint_batch(checkpoint,
                                                     record_entries)
            else:
                checkpoint = record.end_checkpoint()
            entries.extend(record_entries)
        yield StreamChunk(
            index=index,
            segment=LogSegment(machine=machine, entries=entries,
                               start_hash=start_checkpoint.chain_hash),
            start_checkpoint=start_checkpoint,
            end_checkpoint=checkpoint,
            sealed_by_snapshot=chunk_records[-1].sealed_by_snapshot,
        )


def fetch_verified_snapshot_entry(target, snapshot_entry: LogEntry
                                  ) -> Tuple[Dict[str, Any], int]:
    """Download and authenticate the snapshot a SNAPSHOT entry commits to.

    The entry's recorded hash-tree root must match the downloaded snapshot
    (Section 4.5, "Verifying the snapshot").  Returns
    ``(state, transfer_bytes)``; raises :class:`MissingSnapshotError` when
    the snapshot cannot be authenticated.
    """
    snapshot_id = int(snapshot_entry.content["snapshot_id"])
    expected_root = str(snapshot_entry.content["state_root"])
    snapshot = target.snapshots.get(snapshot_id)
    if snapshot.state_root.hex() != expected_root:
        raise MissingSnapshotError(
            f"snapshot {snapshot_id} does not match the root recorded in the log")
    if not snapshot.verify_root():
        raise MissingSnapshotError(
            f"snapshot {snapshot_id} failed hash-tree verification")
    transfer_bytes = target.snapshots.transfer_cost_bytes(snapshot_id)
    return snapshot.state, transfer_bytes


# ---------------------------------------------------------------------------
# Stage 4: bounded-memory stream cross-checks
# ---------------------------------------------------------------------------

class StreamingCrossChecker:
    """Incremental version of the syntactic stream cross-checks.

    :meth:`SyntacticChecker._cross_reference
    <repro.audit.syntactic.SyntacticChecker>` pairs the SEND/RECV stream
    with the MAC-layer stream over the *whole* segment, which needs the whole
    segment.  This checker feeds on one entry at a time and evicts a pair as
    soon as it matches, so on an honest log its state is the in-flight
    message window, not the log.  It detects a **superset** of the problems
    the whole-segment checker reports (out-of-order pairings an honest
    recorder never produces are flagged too); the pipeline treats any
    problem as "fall back to the materializing audit", whose whole-segment
    checker then decides canonically — so being stricter can never flip a
    verdict, only cost the memory win on an already-suspicious log.
    """

    def __init__(self) -> None:
        self.problems: List[str] = []
        self._sends: Dict[str, LogEntry] = {}
        self._recvs: Dict[str, LogEntry] = {}
        self._unmatched_mac_in: Dict[str, LogEntry] = {}
        self._unmatched_mac_out: Dict[str, LogEntry] = {}
        #: 8-byte digests of every SEND message id seen.  Eviction forgets a
        #: matched pair, so without this a *duplicate-id* forged SEND after
        #: the pair matched would escape the check the whole-segment checker
        #: performs (it compares the MAC-out against the LAST send per id).
        #: Any repeated SEND id is flagged instead — an honest recorder
        #: never reuses one, and a flag merely routes through the canonical
        #: fallback.  Cost: O(#sends) times ~50 B, two orders of magnitude
        #: below the entries themselves; all other state is O(in-flight).
        self._seen_send_ids: Set[int] = set()

    @property
    def ok(self) -> bool:
        return not self.problems

    @staticmethod
    def _id_digest(message_id: str) -> int:
        from repro.crypto import hashing
        return int.from_bytes(
            hashing.hash_bytes(message_id.encode("utf-8"))[:8], "big")

    def feed(self, entry: LogEntry) -> None:
        content = entry.content
        if entry.entry_type is EntryType.SEND:
            message_id = str(content.get("message_id"))
            digest = self._id_digest(message_id)
            if digest in self._seen_send_ids:
                self.problems.append(
                    f"message id {message_id} appears in more than one SEND "
                    f"entry (sequence {entry.sequence})")
            self._seen_send_ids.add(digest)
            waiting = self._unmatched_mac_out.pop(message_id, None)
            if waiting is not None:
                self._match_out(message_id, waiting, entry)
            else:
                self._sends[message_id] = entry
        elif entry.entry_type is EntryType.RECV:
            message_id = str(content.get("message_id"))
            payload = content.get("payload")
            if payload is not None:
                from repro.crypto import hashing
                actual = hashing.hash_bytes(bytes.fromhex(payload)).hex()
                if actual != content.get("payload_hash"):
                    self.problems.append(
                        f"RECV {message_id}: logged payload does not match "
                        f"its logged hash")
            waiting = self._unmatched_mac_in.pop(message_id, None)
            if waiting is None:
                self._recvs[message_id] = entry
        elif entry.entry_type is EntryType.MACLAYER:
            message_id = str(content.get("message_id"))
            if content.get("direction") == "in":
                if self._recvs.pop(message_id, None) is None:
                    self._unmatched_mac_in[message_id] = entry
            else:
                send = self._sends.pop(message_id, None)
                if send is not None:
                    self._match_out(message_id, entry, send)
                else:
                    self._unmatched_mac_out[message_id] = entry

    def _match_out(self, message_id: str, mac_entry: LogEntry,
                   send_entry: LogEntry) -> None:
        if mac_entry.content.get("payload_hash") \
                != send_entry.content.get("payload_hash"):
            self.problems.append(
                f"message {message_id}: SEND entry and MAC-layer entry "
                f"disagree about the payload")

    def finish(self, last_sequence: int) -> None:
        """Flush end-of-stream checks (mirrors the whole-segment checker)."""
        for message_id, entry in self._unmatched_mac_in.items():
            self.problems.append(
                f"packet {message_id} entered the AVM (sequence "
                f"{entry.sequence}) but has no RECV entry")
        for message_id, entry in self._unmatched_mac_out.items():
            self.problems.append(
                f"packet {message_id} left the AVM (sequence "
                f"{entry.sequence}) but has no SEND entry")
        for message_id, entry in self._recvs.items():
            if entry.sequence < last_sequence - 5:
                self.problems.append(
                    f"message {message_id} was received (sequence "
                    f"{entry.sequence}) but never entered the AVM")


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

@dataclass
class StreamStats:
    """Streaming-specific bookkeeping (not part of the canonical result)."""

    chunks: int = 0
    segments: int = 0
    entries: int = 0
    #: largest number of entries resident at once (the memory bound)
    peak_chunk_entries: int = 0
    signature_windows: int = 0
    signature_screen_operations: int = 0
    #: why the pipeline handed over to the materializing audit (None = it
    #: streamed to the end)
    fallback_reason: Optional[str] = None


@dataclass
class StreamAuditReport:
    """A streamed audit's canonical result plus the pipeline's bookkeeping."""

    result: AuditResult
    stats: StreamStats = field(default_factory=StreamStats)

    @property
    def used_fallback(self) -> bool:
        return self.stats.fallback_reason is not None

    @property
    def ok(self) -> bool:
        return self.result.ok


class StreamingAuditPipeline:
    """Audits an archive-backed target in O(chunk) memory.

    ``confirm_failures_serially`` (default) re-runs the materializing serial
    audit whenever the stream detects anything — fault or operational
    inability to continue — so verdicts and evidence are canonical.  With it
    off, failures are synthesised from the streamed state: the verdict is
    the same, but the evidence covers only the failing chunk (bounded
    memory even under accusation).
    """

    def __init__(self, auditor, target,
                 max_chunks: Optional[int] = None,
                 signature_window: int = DEFAULT_SIGNATURE_WINDOW,
                 confirm_failures_serially: bool = True,
                 obs: Optional[Observability] = None) -> None:
        if signature_window < 1:
            raise ValueError(
                f"signature window must be >= 1, got {signature_window}")
        self.auditor = auditor
        self.target = target
        self.max_chunks = max_chunks
        self.signature_window = signature_window
        self.confirm_failures_serially = confirm_failures_serially
        #: telemetry sink — defaults to the auditor's bundle, so an
        #: observed auditor observes its streamed audits too
        self.obs = ensure_obs(obs if obs is not None
                              else getattr(auditor, "obs", None))

    # -- public API ----------------------------------------------------------

    def run(self) -> StreamAuditReport:
        machine = self.target.identity
        if not self.target.archive.segment_records(machine):
            # Mirror the materializing path byte for byte: an empty archive
            # is an operational error, not a verdict.
            raise StoreError(f"no archived segments for {machine!r}")
        stats = StreamStats()
        obs = self.obs
        obs.progress.machine_started(machine)
        with obs.tracer.timed("audit.stream", track=machine,
                              machine=machine) as timer:
            try:
                result = self._stream(stats)
            except _StreamFallback as handover:
                stats.fallback_reason = handover.reason
                result = self._fallback(handover)
        # The pipeline's wall clock covers the whole streamed audit,
        # including any serial-confirm fallback (whose own audit_segment
        # timing it supersedes).
        result.wall_seconds = timer.seconds
        obs.progress.machine_done(machine, result.verdict.value, timer.seconds)
        return StreamAuditReport(result=result, stats=stats)

    # -- the streaming fast path ---------------------------------------------

    def _stream(self, stats: StreamStats) -> AuditResult:
        auditor = self.auditor
        target = self.target
        machine = target.identity

        truncated = target.is_truncated()
        initial_state, snapshot_bytes = (target.initial_state() if truncated
                                         else (None, 0))
        authenticators = [auth for auth in auditor.authenticators_for(machine)
                          if auth.machine == machine]
        syntactic = SyntacticChecker(auditor.keystore,
                                     check_cross_references=False)
        semantic = SemanticChecker(auditor.reference_image, auditor.cost_params)
        cross = StreamingCrossChecker()
        start = target.start_checkpoint()
        meter = ModelledCostAccumulator(
            machine, start.chain_hash,
            size_hint=getattr(target, "wire_size_hint", None))

        # Telemetry (observers only — nothing below reads these back).
        obs = self.obs
        observed = obs.enabled
        verify_hist = obs.metrics.histogram("audit.chunk.verify_seconds")
        signature_hist = obs.metrics.histogram("audit.chunk.signature_seconds")
        replay_hist = obs.metrics.histogram("audit.chunk.replay_seconds")
        chunks_counter = obs.metrics.counter("audit.chunks_total")
        entries_counter = obs.metrics.counter("audit.entries_streamed_total")

        merged = ReplayReport(machine=machine)
        active_buckets: Set[int] = set()
        authenticators_checked = 0
        #: RECV payloads not yet consumed by a MAC-layer injection — carried
        #: across chunk boundaries so chunked replay resolves the same
        #: references the whole-log replay would
        carried_payloads: Dict[str, bytes] = {}
        previous_snapshot_entry: Optional[LogEntry] = None
        last_sequence = start.sequence

        chunks = iter_stream_chunks(target, max_chunks=self.max_chunks)
        while True:
            decode_started = time.perf_counter() if observed else 0.0
            try:
                chunk = next(chunks)
            except StopIteration:
                break
            except HashChainError as exc:
                # Same failure class the serial tamper check reports; the
                # fallback produces the canonical evidence for it.
                raise _StreamFallback(
                    AuditPhase.AUTHENTICATOR_CHECK, str(exc), None, None)
            if observed:
                # Decode + incremental chain verification happen inside the
                # chunk iterator's next().
                verify_hist.observe(time.perf_counter() - decode_started)

            segment = chunk.segment
            stats.chunks += 1
            stats.entries += len(segment.entries)
            stats.peak_chunk_entries = max(stats.peak_chunk_entries,
                                           len(segment.entries))
            chunks_counter.inc()
            entries_counter.inc(len(segment.entries))
            chunk_started = time.perf_counter() if observed else 0.0
            last_sequence = chunk.end_checkpoint.sequence
            meter.add_many(segment.entries)
            for entry in segment.entries:
                active_buckets.add(int(entry.timestamp))
                cross.feed(entry)

            # Commitment check: windowed batch signature verification plus
            # the chain-hash comparison against the streamed entries.
            signature_started = time.perf_counter() if observed else 0.0
            authenticators_checked += self._check_authenticators(
                segment, authenticators, stats)
            if observed:
                signature_hist.observe(
                    time.perf_counter() - signature_started)

            # Per-entry syntactic checks (stream cross-checks run above).
            report = syntactic.check(segment)
            if not report.ok:
                raise _StreamFallback(AuditPhase.SYNTACTIC_CHECK,
                                      "; ".join(report.problems[:3]),
                                      chunk, None)

            # Semantic check: replay this chunk from its verified boundary.
            if chunk.index == 0:
                chunk_state = initial_state
            else:
                if previous_snapshot_entry is None:
                    # Manifest marked the boundary sealed but no SNAPSHOT
                    # entry streamed past: cannot anchor this chunk — the
                    # materializing audit (which replays from the start)
                    # decides canonically.
                    raise _StreamFallback(
                        None, "the segment preceding the chunk does not "
                              "end with a snapshot", chunk, None)
                try:
                    chunk_state, _ = fetch_verified_snapshot_entry(
                        target, previous_snapshot_entry)
                except ReproError as exc:
                    raise _StreamFallback(None, str(exc), chunk, None)
            replay_started = time.perf_counter() if observed else 0.0
            replay = semantic.check(segment, initial_state=chunk_state,
                                    carried_payloads=dict(carried_payloads))
            if observed:
                replay_hist.observe(time.perf_counter() - replay_started)
            self._merge_replay(merged, replay)
            if replay.diverged:
                raise _StreamFallback(AuditPhase.SEMANTIC_CHECK,
                                      replay.divergence.describe(),
                                      chunk, chunk_state)

            for entry in segment.entries:
                if entry.entry_type is EntryType.RECV:
                    payload = entry.content.get("payload")
                    if payload is not None:
                        carried_payloads[str(entry.content["message_id"])] = \
                            bytes.fromhex(payload)
                elif entry.entry_type is EntryType.MACLAYER \
                        and entry.content.get("direction") == "in":
                    carried_payloads.pop(str(entry.content["message_id"]), None)
            snapshot_entries = segment.entries_of_type(EntryType.SNAPSHOT)
            previous_snapshot_entry = (snapshot_entries[-1]
                                       if snapshot_entries else None)
            if observed:
                obs.tracer.event(
                    "audit.chunk", domain="wall", track=machine,
                    timestamp=chunk_started,
                    duration=time.perf_counter() - chunk_started,
                    chunk=chunk.index, entries=len(segment.entries),
                    checkpoint_seq=chunk.end_checkpoint.sequence)
            obs.progress.chunk_done(machine, entries=len(segment.entries),
                                    checkpoint_seq=chunk.end_checkpoint.sequence)

        cross.finish(last_sequence)
        if not cross.ok:
            raise _StreamFallback(AuditPhase.SYNTACTIC_CHECK,
                                  "; ".join(cross.problems[:3]), None, None)

        # Assemble the serial-identical PASS result.
        params = auditor.cost_params
        raw_bytes = meter.raw_bytes
        cost = AuditCost(
            log_bytes_downloaded=raw_bytes,
            compressed_log_bytes=meter.finish(),
            snapshot_bytes_downloaded=snapshot_bytes,
            compression_seconds=raw_bytes / params.compress_bytes_per_second,
            decompression_seconds=raw_bytes / params.decompress_bytes_per_second,
            syntactic_seconds=raw_bytes / params.syntactic_check_bytes_per_second,
        )
        merged.entries_replayed = stats.entries
        merged.active_seconds = float(len(active_buckets))
        cost.semantic_seconds = semantic.estimate_timing(merged).replay_seconds
        return AuditResult(machine=machine, auditor=auditor.identity,
                           verdict=Verdict.PASS, phase=AuditPhase.COMPLETE,
                           authenticators_checked=authenticators_checked,
                           replay_report=merged, cost=cost)

    def _check_authenticators(self, segment: LogSegment, authenticators,
                              stats: StreamStats) -> int:
        """Windowed batch verification of the chunk's authenticators."""
        if not segment.entries:
            return 0
        first, last = segment.first_sequence, segment.last_sequence
        relevant = [auth for auth in authenticators
                    if first <= auth.sequence <= last]
        by_sequence = {entry.sequence: entry for entry in segment.entries}
        checked = 0
        for cursor in range(0, len(relevant), self.signature_window):
            window = relevant[cursor:cursor + self.signature_window]
            valid, invalid, batch_stats = batch_verify_authenticators(
                window, self.auditor.keystore)
            stats.signature_windows += 1
            stats.signature_screen_operations += batch_stats.screen_operations
            if invalid:
                bad = window[invalid[0]]
                raise _StreamFallback(
                    AuditPhase.AUTHENTICATOR_CHECK,
                    f"authenticator for sequence {bad.sequence} has an "
                    f"invalid signature", None, None)
            for auth in valid:
                entry = by_sequence.get(auth.sequence)
                if entry is None:
                    continue
                if entry.chain_hash != auth.chain_hash:
                    raise _StreamFallback(
                        AuditPhase.AUTHENTICATOR_CHECK,
                        f"log entry {auth.sequence} does not match the "
                        f"authenticator issued by {segment.machine!r} "
                        f"(log was tampered with or forked)", None, None)
                checked += 1
        return checked

    @staticmethod
    def _merge_replay(merged: ReplayReport, chunk_report: ReplayReport) -> None:
        merged.events_injected += chunk_report.events_injected
        merged.clock_reads_served += chunk_report.clock_reads_served
        merged.outputs_checked += chunk_report.outputs_checked
        merged.snapshots_checked += chunk_report.snapshots_checked
        # Execution counters are absolute (restored from each boundary
        # snapshot), so the last chunk's count IS the whole-log count.
        merged.instructions_executed = chunk_report.instructions_executed

    # -- the materializing slow path -----------------------------------------

    def _fallback(self, handover: "_StreamFallback") -> AuditResult:
        """Produce the canonical result once streaming detected something."""
        auditor = self.auditor
        target = self.target
        machine = target.identity
        if self.confirm_failures_serially:
            if target.is_truncated():
                state, snapshot_bytes = target.initial_state()
            else:
                state, snapshot_bytes = None, 0
            return auditor.audit_segment(machine, target.get_log_segment(),
                                         initial_state=state,
                                         snapshot_bytes=snapshot_bytes)
        phase = handover.phase or AuditPhase.SEMANTIC_CHECK
        # Bounded evidence: the failing chunk (or, for a chain break
        # detected while decoding, no segment at all — the authenticators
        # alone carry the accusation, as for an unanswered challenge).
        evidence = Evidence(
            machine=machine, accuser=auditor.identity, reason=handover.reason,
            segment=handover.chunk.segment if handover.chunk else None,
            authenticators=auditor.authenticators_for(machine),
            reference_image_hash=auditor.reference_image.image_hash(),
            initial_state=handover.chunk_state)
        return AuditResult(machine=machine, auditor=auditor.identity,
                           verdict=Verdict.FAIL, phase=phase,
                           reason=handover.reason, evidence=evidence)


class _StreamFallback(Exception):
    """Internal: the stream detected something; hand over to the slow path."""

    def __init__(self, phase: Optional[AuditPhase], reason: str,
                 chunk: Optional[StreamChunk],
                 chunk_state: Optional[Dict[str, Any]]) -> None:
        super().__init__(reason)
        self.phase = phase
        self.reason = reason
        self.chunk = chunk
        self.chunk_state = chunk_state


def stream_audit(auditor, target,
                 max_chunks: Optional[int] = None,
                 signature_window: int = DEFAULT_SIGNATURE_WINDOW,
                 confirm_failures_serially: bool = True) -> StreamAuditReport:
    """Audit an archive-backed target on the streaming pipeline."""
    return StreamingAuditPipeline(
        auditor, target, max_chunks=max_chunks,
        signature_window=signature_window,
        confirm_failures_serially=confirm_failures_serially).run()
