"""The auditor.

:class:`Auditor` implements the full audit of Section 4.5: collect
authenticators, download the log (compressed), verify it against the
authenticators, run the syntactic check, then the semantic check.  Any failure
produces :class:`~repro.audit.evidence.Evidence`; an unresponsive machine is
*suspected* and the most recent authenticator becomes the evidence.

With ``workers > 1`` the auditor delegates whole-machine audits to the
parallel engine (:class:`repro.audit.engine.AuditScheduler`), which chunks
the log at snapshot boundaries and batches signature checks; ``workers=1``
(the default) preserves the plain serial path below.  Verdicts and evidence
are identical either way — the engine re-runs the serial path to produce
canonical evidence whenever a chunk fails.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.audit.evidence import Evidence
from repro.audit.semantic import SemanticChecker
from repro.audit.syntactic import SyntacticChecker
from repro.audit.verdict import AuditCost, AuditPhase, AuditResult, Verdict
from repro.avmm.monitor import AccountableVMM
from repro.crypto.keys import KeyStore
from repro.errors import AuditError, AuthenticatorMismatchError, HashChainError
from repro.log.authenticator import Authenticator
from repro.log.codec import modelled_compressed_log_bytes
from repro.log.segments import LogSegment
from repro.metrics.perfmodel import CostParameters
from repro.obs import Observability, ensure_obs
from repro.vm.image import VMImage

if TYPE_CHECKING:  # pragma: no cover - avoid the auditor<->engine import cycle
    from repro.audit.engine import AuditScheduler


class Auditor:
    """An auditing party (Alice, or any player auditing another).

    ``workers`` selects how many audit workers full-machine audits may use;
    alternatively an explicit :class:`~repro.audit.engine.AuditScheduler`
    can be supplied via ``engine`` (it wins over ``workers``).
    """

    def __init__(self, identity: str, keystore: KeyStore, reference_image: VMImage,
                 cost_params: Optional[CostParameters] = None,
                 workers: int = 1,
                 engine: Optional["AuditScheduler"] = None,
                 obs: Optional[Observability] = None) -> None:
        self.identity = identity
        self.keystore = keystore
        self.reference_image = reference_image
        self.cost_params = cost_params or CostParameters()
        self.workers = workers
        self._engine = engine
        self.obs = ensure_obs(obs)
        self.collected_authenticators: Dict[str, List[Authenticator]] = {}

    @property
    def engine(self) -> Optional["AuditScheduler"]:
        """The audit engine backing this auditor (``None`` on the serial path)."""
        if self._engine is None and self.workers > 1:
            from repro.audit.engine import AuditScheduler
            self._engine = AuditScheduler(workers=self.workers)
        return self._engine

    # -- authenticator collection -------------------------------------------------

    def collect_authenticators(self, machine: str,
                               authenticators: Iterable[Authenticator]) -> int:
        """Store authenticators issued by ``machine`` (e.g. detached from messages)."""
        store = self.collected_authenticators.setdefault(machine, [])
        added = 0
        for auth in authenticators:
            if auth.machine != machine:
                continue
            store.append(auth)
            added += 1
        return added

    def collect_from_peer(self, peer: AccountableVMM, machine: str) -> int:
        """Ask another party for the authenticators it holds about ``machine``.

        This is the multi-party step of Section 4.6: before auditing Bob,
        Alice downloads the authenticators Charlie has collected from Bob.
        """
        return self.collect_authenticators(machine, peer.authenticators_from(machine))

    def authenticators_for(self, machine: str) -> List[Authenticator]:
        return list(self.collected_authenticators.get(machine, []))

    # -- audits ---------------------------------------------------------------------

    def audit(self, target: AccountableVMM,
              segment: Optional[LogSegment] = None,
              initial_state: Optional[Dict[str, Any]] = None,
              streaming: bool = True) -> AuditResult:
        """Run a full audit of ``target`` (or of a specific segment of its log).

        Whole-machine audits run on the parallel engine when one is
        configured; audits of an explicit segment always take the serial
        path (the engine needs the machine's snapshots to chunk).

        Archive-backed targets (anything advertising ``supports_streaming``)
        are audited on the streaming pipeline by default: entries are
        decoded, chain-verified, signature-checked and replayed chunk by
        chunk in O(chunk) memory, with verdicts, evidence and modelled costs
        identical to the materializing path (:mod:`repro.audit.stream`).
        (Engine-backed auditors plan their chunk jobs off the same stream
        but keep the engine's merge semantics: verdicts and evidence match
        the serial path, while the fast-path merged report aggregates
        per-chunk counters.)
        Pass ``streaming=False`` to force whole-log materialization — for a
        streamable target this also bypasses the engine (whose plans are
        built from the stream), taking the serial materializing path.
        """
        machine = target.identity
        streamable = getattr(target, "supports_streaming", False)
        if segment is None and initial_state is None:
            if self.engine is not None and (streaming or not streamable):
                return self.engine.audit_machine(self, target)
            if streaming and streamable:
                from repro.audit.stream import stream_audit
                return stream_audit(self, target).result
        if segment is None:
            segment = target.get_log_segment()
            if initial_state is None \
                    and getattr(target, "is_truncated", None) is not None \
                    and target.is_truncated():
                # A GC-truncated archive replays from its boundary snapshot,
                # like a spot-check chunk (the streaming path does the same).
                state, snapshot_bytes = target.initial_state()
                return self.audit_segment(machine, segment,
                                          initial_state=state,
                                          snapshot_bytes=snapshot_bytes)
        return self.audit_segment(machine, segment, initial_state=initial_state)

    def audit_segment(self, machine: str, segment: LogSegment,
                      initial_state: Optional[Dict[str, Any]] = None,
                      snapshot_bytes: int = 0) -> AuditResult:
        """Audit a log segment that has already been downloaded.

        This is the shared serial chokepoint (plain audits, spot-check
        chunks, the engine's serial confirmation), so the obs wall timer
        here guarantees ``AuditResult.wall_seconds`` is populated on
        every front-end — the null tracer's timer still measures.
        """
        with self.obs.tracer.timed("audit.segment", track=machine,
                                   machine=machine,
                                   entries=len(segment.entries)) as timer:
            result = self._audit_segment(machine, segment, initial_state,
                                         snapshot_bytes)
        result.wall_seconds = timer.seconds
        return result

    def _audit_segment(self, machine: str, segment: LogSegment,
                       initial_state: Optional[Dict[str, Any]] = None,
                       snapshot_bytes: int = 0) -> AuditResult:
        if segment.machine != machine:
            # A segment claiming another identity would sidestep every
            # authenticator check (none would apply) and could replay
            # cleanly; refusing it is an operational error, not a verdict.
            raise AuditError(
                f"segment claims to be from {segment.machine!r}, "
                f"but the audit target is {machine!r}")
        cost = self._download_cost(segment, snapshot_bytes)
        authenticators = self.authenticators_for(machine)

        # Step 1: the log must match the authenticators the machine has issued.
        try:
            checked = segment.verify_against_authenticators(authenticators, self.keystore)
        except (HashChainError, AuthenticatorMismatchError) as exc:
            return self._fail(machine, segment, AuditPhase.AUTHENTICATOR_CHECK,
                              str(exc), cost, authenticators, initial_state)

        # Step 2: syntactic check.
        syntactic = SyntacticChecker(self.keystore).check(segment)
        if not syntactic.ok:
            result = self._fail(machine, segment, AuditPhase.SYNTACTIC_CHECK,
                                "; ".join(syntactic.problems[:3]), cost,
                                authenticators, initial_state)
            result.syntactic_problems = syntactic.problems
            result.authenticators_checked = checked
            return result

        # Step 3: semantic check (deterministic replay).
        checker = SemanticChecker(self.reference_image, self.cost_params)
        report = checker.check(segment, initial_state=initial_state)
        cost.semantic_seconds = checker.estimate_timing(report).replay_seconds
        if report.diverged:
            result = self._fail(machine, segment, AuditPhase.SEMANTIC_CHECK,
                                report.divergence.describe(), cost,
                                authenticators, initial_state)
            result.replay_report = report
            result.authenticators_checked = checked
            return result

        return AuditResult(machine=machine, auditor=self.identity,
                           verdict=Verdict.PASS, phase=AuditPhase.COMPLETE,
                           authenticators_checked=checked,
                           replay_report=report, cost=cost)

    def suspect(self, machine: str, reason: str = "no response to audit challenge") -> AuditResult:
        """Report an unresponsive machine (Section 4.5: 'Alice will suspect Bob')."""
        authenticators = self.authenticators_for(machine)
        evidence = Evidence(machine=machine, accuser=self.identity, reason=reason,
                            segment=None, authenticators=authenticators,
                            reference_image_hash=self.reference_image.image_hash(),
                            unanswered_challenge=True)
        return AuditResult(machine=machine, auditor=self.identity,
                           verdict=Verdict.SUSPECTED,
                           phase=AuditPhase.AUTHENTICATOR_CHECK,
                           reason=reason, evidence=evidence)

    # -- helpers ----------------------------------------------------------------------

    def _download_cost(self, segment: LogSegment, snapshot_bytes: int) -> AuditCost:
        """Model the transfer/processing cost of obtaining this segment.

        The compressed size is the cost model's canonical number
        (:func:`repro.log.codec.modelled_compressed_log_bytes`): a pure
        function of the entries, so serial, engine and streaming audits of
        the same log charge the same download regardless of wire format.
        """
        raw_bytes = segment.size_bytes()
        compressed = modelled_compressed_log_bytes(segment)
        params = self.cost_params
        return AuditCost(
            log_bytes_downloaded=raw_bytes,
            compressed_log_bytes=compressed,
            snapshot_bytes_downloaded=snapshot_bytes,
            compression_seconds=raw_bytes / params.compress_bytes_per_second,
            decompression_seconds=raw_bytes / params.decompress_bytes_per_second,
            syntactic_seconds=raw_bytes / params.syntactic_check_bytes_per_second,
        )

    def _fail(self, machine: str, segment: LogSegment, phase: AuditPhase,
              reason: str, cost: AuditCost, authenticators: List[Authenticator],
              initial_state: Optional[Dict[str, Any]]) -> AuditResult:
        evidence = Evidence(machine=machine, accuser=self.identity, reason=reason,
                            segment=segment, authenticators=authenticators,
                            reference_image_hash=self.reference_image.image_hash(),
                            initial_state=initial_state)
        return AuditResult(machine=machine, auditor=self.identity,
                           verdict=Verdict.FAIL, phase=phase, reason=reason,
                           evidence=evidence, cost=cost)
