"""Online auditing (Section 6.11).

During a long or high-stakes game session players can audit each other *while
the game is still in progress* so cheating is detected as soon as the
cheater's externally visible behaviour deviates from the reference execution.
:class:`OnlineAuditor` periodically re-audits the target's log-so-far and
records when (in simulated time) a fault first became detectable.

The auditor's CPU consumption is tracked so the Figure 8 experiment can charge
it against the player's machine when the audit runs concurrently with the
game.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.audit.auditor import Auditor
from repro.audit.verdict import AuditResult, Verdict
from repro.avmm.monitor import AccountableVMM
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - engine imports the auditor, not us
    from repro.audit.engine import AuditScheduler


@dataclass
class OnlineAuditRecord:
    """One incremental audit pass."""

    time: float
    entries_audited: int
    new_entries: int
    verdict: Verdict
    result: AuditResult


class OnlineAuditor:
    """Periodically audits a running machine.

    Each pass re-audits the whole log-so-far, so long sessions benefit from
    the parallel engine: pass ``engine`` (or build the auditor with
    ``workers > 1``) and every pass is chunked over the worker pool.  The
    cost accounting below is unchanged either way, because the engine threads
    the same :class:`~repro.audit.verdict.AuditCost` totals through.

    Archive-backed targets (:class:`~repro.service.target.
    ArchiveBackedMachine`) stream: every pass decodes, verifies and replays
    the archived log chunk by chunk (:mod:`repro.audit.stream`), so an
    online auditor watching a long archived history keeps O(chunk) memory.
    """

    def __init__(self, auditor: Auditor, target: AccountableVMM,
                 scheduler: Scheduler, interval: float = 30.0,
                 engine: Optional["AuditScheduler"] = None) -> None:
        self.auditor = auditor
        self.target = target
        self.scheduler = scheduler
        self.interval = interval
        self._engine = engine
        self.records: List[OnlineAuditRecord] = []
        self.detection_time: Optional[float] = None
        self.audit_cpu_seconds: float = 0.0
        self._audited_entries = 0
        self._audited_active_seconds = 0.0
        self._process: Optional[Process] = None

    @property
    def engine(self) -> Optional["AuditScheduler"]:
        return self._engine if self._engine is not None else self.auditor.engine

    # -- lifecycle ---------------------------------------------------------------

    def start(self, delay: Optional[float] = None) -> None:
        """Begin periodic auditing (first pass after ``delay`` seconds)."""
        self._process = Process(self.scheduler, self.interval, on_tick=self.run_once,
                                name=f"online-audit:{self.target.identity}")
        self._process.start(delay=self.interval if delay is None else delay)

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()

    @property
    def fault_detected(self) -> bool:
        return self.detection_time is not None

    @property
    def lag_entries(self) -> int:
        """How many log entries the audit is currently behind."""
        return max(0, len(self.target.log) - self._audited_entries)

    # -- auditing -------------------------------------------------------------------

    def run_once(self) -> Optional[OnlineAuditRecord]:
        """Audit the target's log as it stands right now."""
        log_length = len(self.target.log)
        new_entries = log_length - self._audited_entries
        if new_entries <= 0:
            return None
        # The auditor collects any authenticators it has not seen yet.
        self.auditor.collect_from_peer(self.target, self.target.identity)

        engine = self.engine
        if engine is not None:
            result = engine.audit_machine(self.auditor, self.target)
        else:
            result = self.auditor.audit(self.target)
        record = OnlineAuditRecord(
            time=self.scheduler.clock.now,
            entries_audited=log_length,
            new_entries=new_entries,
            verdict=result.verdict,
            result=result,
        )
        self.records.append(record)
        self._audited_entries = log_length

        # Replay work for the *new* part of the log is what this pass actually
        # costs; the already-audited prefix is charged only once.
        total_active = result.cost.semantic_seconds
        incremental = max(0.0, total_active - self._audited_active_seconds)
        self._audited_active_seconds = max(self._audited_active_seconds, total_active)
        self.audit_cpu_seconds += incremental + result.cost.syntactic_seconds

        if result.verdict is not Verdict.PASS and self.detection_time is None:
            self.detection_time = self.scheduler.clock.now
        return record
