"""The parallel, batched audit engine.

Section 6.6 puts the price tag on accountability: auditing a machine means
downloading its log, verifying it against the authenticators, and replaying
it — and the semantic check alone takes about as long as the recorded play
time.  The same section's remedy is that audits parallelise perfectly: other
machines' logs are independent, and with periodic snapshots the chunks of a
single log are independently verifiable and replayable too (Section 6.12).

:class:`AuditScheduler` exploits both axes.  It fans a fleet of audits out
over a ``concurrent.futures`` worker pool:

1. each target's log is split at snapshot boundaries into at most
   ``chunks_per_machine`` chunks (:func:`repro.log.segments.partition_segments`);
2. every chunk becomes a self-contained, picklable :class:`ChunkJob` holding
   the chunk segment, the matching authenticators, a
   :class:`~repro.crypto.keys.StaticKeyView` of the public keys, the
   reference image, and — for chunks that do not start the log — the
   verified snapshot state at the chunk boundary;
3. workers run :func:`run_chunk`: incremental hash-chain verification from
   the chunk's :class:`~repro.log.hashchain.ChainCheckpoint`, batched
   authenticator signature verification
   (:func:`~repro.log.authenticator.batch_verify_authenticators`), the
   per-entry syntactic checks, and deterministic replay of the chunk;
4. the scheduler merges the per-chunk outcomes into one machine-level
   :class:`~repro.audit.verdict.AuditResult` — the stream cross-checks that
   cannot be chunked (they pair entries across the whole log, but need no
   cryptography) run once centrally, and chunk boundaries are stitched by
   comparing checkpoints.

When anything fails, the engine re-runs the plain serial audit of that
machine (:meth:`Auditor.audit_segment`) to produce the *canonical* evidence —
exactly what a ``workers=1`` audit would have produced — so verdicts and
evidence are bit-identical across worker counts; only the honest fast path is
parallel.  That mirrors standard batch-verification designs: an optimistic
batched screen, with a fallback that isolates the culprit.

Costs are threaded through :class:`~repro.audit.verdict.AuditCost` so the
Figure 8/9 experiments keep reporting paper-faithful numbers, and the fleet
report carries the *modelled* serial-vs-parallel wall-clock
(:mod:`repro.metrics.parallel`) alongside the measured one, because the
modelled number — like every other number this reproduction reports — must
not depend on the hardware the simulation runs on.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.audit.auditor import Auditor
from repro.audit.semantic import SemanticChecker
from repro.audit.syntactic import SyntacticChecker
from repro.audit.verdict import AuditCost, AuditPhase, AuditResult, Verdict
from repro.avmm.monitor import AccountableVMM
from repro.avmm.replayer import ReplayReport
from repro.crypto.keys import StaticKeyView
from repro.crypto.signatures import get_scheme
from repro.errors import HashChainError, MissingSnapshotError, SegmentError
from repro.log.authenticator import Authenticator, batch_verify_authenticators
from repro.log.codec import modelled_compressed_log_bytes
from repro.log.entries import EntryType
from repro.log.hashchain import ChainCheckpoint, verify_chain_incremental
from repro.log.segments import LogSegment, concatenate_segments, partition_segments
from repro.metrics.parallel import ParallelSchedule, schedule
from repro.metrics.perfmodel import CostParameters
from repro.vm.image import VMImage

__all__ = [
    "AuditAssignment",
    "AuditScheduler",
    "ChunkJob",
    "ChunkOutcome",
    "FleetAuditReport",
    "fetch_verified_snapshot",
    "MachineAuditReport",
    "run_chunk",
    "scheme_verify_seconds",
]


# ---------------------------------------------------------------------------
# Work items
# ---------------------------------------------------------------------------

@dataclass
class ChunkJob:
    """Everything a worker needs to audit one chunk, with no live objects.

    Every field pickles, so a job can cross a process boundary.  The chunk's
    position in the log is carried by ``checkpoint`` (the chain state just
    before its first entry); ``initial_state`` is the verified snapshot at
    the chunk boundary, or ``None`` for the chunk that starts the log.
    """

    machine: str
    auditor: str
    chunk_index: int
    segment: LogSegment
    checkpoint: ChainCheckpoint
    authenticators: List[Authenticator]
    key_view: StaticKeyView
    reference_image: VMImage
    initial_state: Optional[Dict[str, Any]] = None
    snapshot_bytes: int = 0
    cost_params: CostParameters = field(default_factory=CostParameters)
    #: modelled cost of one signature verification under the target's scheme
    verify_seconds: float = 0.0
    #: run the stream cross-checks inside the worker too.  Off for the
    #: chunks of one machine-level audit (the parent runs them globally),
    #: on for spot-check chunks, which are audited in isolation.
    check_cross_references: bool = False


@dataclass
class ChunkOutcome:
    """What a worker reports back for one chunk."""

    machine: str
    chunk_index: int
    verdict: Verdict
    phase: AuditPhase
    reason: str = ""
    end_checkpoint: Optional[ChainCheckpoint] = None
    authenticators_checked: int = 0
    syntactic_problems: List[str] = field(default_factory=list)
    replay_report: Optional[ReplayReport] = None
    cost: AuditCost = field(default_factory=AuditCost)

    @property
    def ok(self) -> bool:
        return self.verdict is Verdict.PASS


def run_chunk(job: ChunkJob) -> ChunkOutcome:
    """Audit one chunk.  Runs inside a worker process (or inline).

    Performs the per-chunk share of the three audit steps of Section 4.5:
    tamper check (incremental hash chain + batched authenticator check),
    per-entry syntactic checks (stream cross-checks are the parent's job),
    and the semantic check (deterministic replay from the chunk's verified
    snapshot).  Stops at the first failing phase, like the serial auditor.
    """
    segment = job.segment
    cost = _chunk_download_cost(segment, job.snapshot_bytes, job.cost_params)
    outcome = ChunkOutcome(machine=job.machine, chunk_index=job.chunk_index,
                           verdict=Verdict.PASS, phase=AuditPhase.COMPLETE,
                           cost=cost)

    # Step 1a: the chunk must extend its checkpoint by an unbroken chain.
    try:
        outcome.end_checkpoint = verify_chain_incremental(segment.entries,
                                                          job.checkpoint)
    except HashChainError as exc:
        outcome.verdict = Verdict.FAIL
        outcome.phase = AuditPhase.AUTHENTICATOR_CHECK
        outcome.reason = str(exc)
        return outcome

    # Step 1b: batched authenticator verification.  All signatures in the
    # batch come from the target machine, so one screening operation usually
    # settles the whole chunk.
    relevant = [auth for auth in job.authenticators
                if auth.machine == job.machine
                and segment.entries
                and segment.first_sequence <= auth.sequence <= segment.last_sequence]
    valid, invalid, stats = batch_verify_authenticators(relevant, job.key_view)
    cost.signatures_verified += stats.total
    cost.signature_screen_operations += stats.screen_operations
    cost.signature_seconds += job.verify_seconds * (
        stats.screen_operations + stats.single_verifications)
    if invalid:
        first_bad = relevant[invalid[0]]
        outcome.verdict = Verdict.FAIL
        outcome.phase = AuditPhase.AUTHENTICATOR_CHECK
        outcome.reason = (f"authenticator for sequence {first_bad.sequence} "
                          f"has an invalid signature")
        return outcome
    by_sequence = {entry.sequence: entry for entry in segment.entries}
    for auth in valid:
        entry = by_sequence.get(auth.sequence)
        if entry is None:
            continue
        if entry.chain_hash != auth.chain_hash:
            outcome.verdict = Verdict.FAIL
            outcome.phase = AuditPhase.AUTHENTICATOR_CHECK
            outcome.reason = (f"log entry {auth.sequence} does not match the "
                              f"authenticator issued by {job.machine!r} "
                              f"(log was tampered with or forked)")
            return outcome
        outcome.authenticators_checked += 1

    # Step 2: per-entry syntactic checks (format + sender signatures).  The
    # cross-references span chunk boundaries and are checked by the parent.
    syntactic = SyntacticChecker(
        job.key_view,
        check_cross_references=job.check_cross_references).check(segment)
    if not syntactic.ok:
        outcome.verdict = Verdict.FAIL
        outcome.phase = AuditPhase.SYNTACTIC_CHECK
        outcome.reason = "; ".join(syntactic.problems[:3])
        outcome.syntactic_problems = syntactic.problems
        return outcome

    # Step 3: semantic check — replay the chunk from its verified snapshot.
    checker = SemanticChecker(job.reference_image, job.cost_params)
    report = checker.check(segment, initial_state=job.initial_state)
    outcome.replay_report = report
    cost.semantic_seconds = checker.estimate_timing(report).replay_seconds
    if report.diverged:
        outcome.verdict = Verdict.FAIL
        outcome.phase = AuditPhase.SEMANTIC_CHECK
        outcome.reason = report.divergence.describe()
    return outcome


def _chunk_download_cost(segment: LogSegment, snapshot_bytes: int,
                         params: CostParameters) -> AuditCost:
    """Transfer/processing cost of obtaining one chunk (cf. Auditor._download_cost)."""
    raw_bytes = segment.size_bytes()
    compressed = modelled_compressed_log_bytes(segment)
    return AuditCost(
        log_bytes_downloaded=raw_bytes,
        compressed_log_bytes=compressed,
        snapshot_bytes_downloaded=snapshot_bytes,
        compression_seconds=raw_bytes / params.compress_bytes_per_second,
        decompression_seconds=raw_bytes / params.decompress_bytes_per_second,
        syntactic_seconds=raw_bytes / params.syntactic_check_bytes_per_second,
    )


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclass
class MachineAuditReport:
    """One machine's merged audit, with the engine's bookkeeping."""

    machine: str
    result: AuditResult
    chunk_count: int = 0
    chunk_outcomes: List[ChunkOutcome] = field(default_factory=list)
    #: the serial auditor was re-run to produce canonical evidence
    confirmed_serially: bool = False


@dataclass
class FleetAuditReport:
    """Outcome of auditing a fleet of machines on the engine."""

    results: Dict[str, AuditResult] = field(default_factory=dict)
    machine_reports: Dict[str, MachineAuditReport] = field(default_factory=dict)
    workers: int = 1
    executor_used: str = "inline"
    chunk_count: int = 0
    #: measured wall-clock of this engine run (hardware-dependent)
    wall_seconds: float = 0.0
    #: modelled cost schedule (hardware-independent, from AuditCost totals)
    modelled: Optional[ParallelSchedule] = None
    total_cost: AuditCost = field(default_factory=AuditCost)

    @property
    def all_passed(self) -> bool:
        return all(result.verdict is Verdict.PASS for result in self.results.values())

    @property
    def modelled_speedup(self) -> float:
        return self.modelled.speedup if self.modelled is not None else 1.0

    def summary(self) -> str:
        verdicts = ", ".join(f"{machine}={result.verdict.value}"
                             for machine, result in sorted(self.results.items()))
        return (f"fleet audit: {len(self.results)} machines, "
                f"{self.chunk_count} chunks on {self.workers} workers "
                f"({self.executor_used}); {verdicts}")


@dataclass
class AuditAssignment:
    """One unit of fleet work: this auditor audits this machine."""

    auditor: Auditor
    target: AccountableVMM


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

class AuditScheduler:
    """Schedules chunked audits of many machines over a worker pool.

    ``workers=1`` (the default) keeps everything inline and single-chunk, so
    it reproduces the serial :class:`Auditor` byte for byte; higher worker
    counts split each log at snapshot boundaries and execute chunks
    concurrently.  ``executor`` may be ``"auto"`` (process pool when the jobs
    pickle, else threads), ``"process"``, ``"thread"`` or ``"inline"``.
    """

    def __init__(self, workers: int = 1, executor: str = "auto",
                 chunks_per_machine: Optional[int] = None,
                 confirm_failures_serially: bool = True) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        if executor not in ("auto", "process", "thread", "inline"):
            raise ValueError(f"unknown executor kind {executor!r}")
        self.workers = workers
        self.executor = executor
        #: chunks per machine; None = one chunk per worker, 1 when serial
        self.chunks_per_machine = chunks_per_machine
        self.confirm_failures_serially = confirm_failures_serially

    # -- public API ---------------------------------------------------------

    def audit_machine(self, auditor: Auditor, target: AccountableVMM) -> AuditResult:
        """Audit one machine on the engine; returns the merged result."""
        report = self.audit_fleet([AuditAssignment(auditor, target)])
        return report.results[target.identity]

    def audit_fleet(self, assignments: Sequence[AuditAssignment]) -> FleetAuditReport:
        """Audit every assignment, fanning chunks out over the worker pool.

        Each target may appear at most once — the report is keyed by machine
        identity, so several auditors auditing the same machine must run as
        separate fleet calls.
        """
        targets = [assignment.target.identity for assignment in assignments]
        duplicates = sorted({name for name in targets if targets.count(name) > 1})
        if duplicates:
            raise ValueError(
                f"fleet contains duplicate audit targets: {duplicates}; "
                f"run one fleet audit per auditor instead")
        started = time.perf_counter()
        plans: List[_MachinePlan] = [self._plan(assignment)
                                     for assignment in assignments]
        for plan in plans:
            plan.auditor.obs.progress.machine_started(
                plan.machine, total_chunks=len(plan.jobs))
        jobs: List[ChunkJob] = [job for plan in plans for job in plan.jobs]
        outcome_list = self._execute(jobs)

        report = FleetAuditReport(workers=self.workers,
                                  executor_used=self._executor_kind(jobs),
                                  chunk_count=len(jobs))
        cursor = 0
        work_items = [outcome.cost.total_seconds for outcome in outcome_list]
        for plan in plans:
            machine_outcomes = outcome_list[cursor:cursor + len(plan.jobs)]
            cursor += len(plan.jobs)
            machine_report = self._merge(plan, machine_outcomes)
            report.machine_reports[plan.machine] = machine_report
            report.results[plan.machine] = machine_report.result
            if machine_report.confirmed_serially:
                # A serial (re-)audit ran in the parent for this machine; it
                # is one unsplittable work item, and leaving it out would make
                # the modelled speedup look better than the audit really was.
                work_items.append(machine_report.result.cost.total_seconds)
        report.wall_seconds = time.perf_counter() - started
        for plan in plans:
            result = report.results[plan.machine]
            if result.wall_seconds == 0.0:
                # Chunks of many machines interleave on one pool, so the
                # fast path cannot attribute wall time per machine; the
                # fleet wall is the shared measurement.  (Serial confirms
                # already carry their own audit_segment timing.)
                result.wall_seconds = report.wall_seconds
            obs = plan.auditor.obs
            obs.progress.machine_done(plan.machine, result.verdict.value,
                                      result.wall_seconds)
            obs.tracer.event(
                "audit.engine.machine", domain="wall", track=plan.machine,
                timestamp=started, duration=report.wall_seconds,
                chunks=len(plan.jobs), executor=report.executor_used,
                verdict=result.verdict.value)
        report.total_cost = AuditCost.total(
            result.cost for result in report.results.values())
        report.modelled = schedule(work_items, self.workers)
        return report

    def run_jobs(self, jobs: Sequence[ChunkJob]) -> List[ChunkOutcome]:
        """Execute prepared chunk jobs on the pool (used by the spot checker)."""
        return self._execute(list(jobs))

    # -- planning -----------------------------------------------------------

    def _plan(self, assignment: AuditAssignment) -> "_MachinePlan":
        auditor = assignment.auditor
        target = assignment.target
        machine = target.identity
        try:
            if getattr(target, "supports_streaming", False):
                return self._plan_streaming(assignment)
            return self._plan_chunks(assignment)
        except (MissingSnapshotError, SegmentError, HashChainError) as exc:
            # The target could not produce consistent segments or a
            # verifiable snapshot at a chunk boundary (or, for a streamed
            # archive, its stored chain does not verify).  The serial audit
            # does not depend on stored snapshots (it replays from the
            # start), so fall back to it for this machine rather than
            # failing the fleet.
            plan = _MachinePlan(machine=machine, auditor=auditor, target=target,
                                jobs=[], full_segment=target.get_log_segment(),
                                serial_fallback_reason=str(exc))
            plan.initial_state, plan.snapshot_bytes = \
                self._replay_start(target)
            return plan

    @staticmethod
    def _replay_start(target) -> Tuple[Optional[Dict[str, Any]], int]:
        """Replay start state for the whole log (GC boundary, if truncated)."""
        if getattr(target, "is_truncated", None) is not None \
                and target.is_truncated():
            return target.initial_state()
        return None, 0

    def _plan_streaming(self, assignment: AuditAssignment) -> "_MachinePlan":
        """Build chunk jobs from an archive-backed target's entry stream.

        One pass over the archived segment files produces the jobs directly:
        no whole-log materialization, no second copy via
        ``get_snapshot_segments`` — the parent holds exactly the chunks the
        workers will verify (the full segment is concatenated lazily only if
        a failure needs the canonical serial re-audit).  Truncated archives
        are handled by anchoring the first chunk at the retention boundary's
        verified snapshot.
        """
        from repro.audit.stream import (
            fetch_verified_snapshot_entry,
            iter_stream_chunks,
        )
        auditor = assignment.auditor
        target = assignment.target
        machine = target.identity
        authenticators = [auth for auth in auditor.authenticators_for(machine)
                          if auth.machine == machine]
        key_view = auditor.keystore.static_view()
        verify_seconds = scheme_verify_seconds(auditor.keystore, machine)
        chunk_target = self.chunks_per_machine or max(1, self.workers)
        start_state, start_bytes = self._replay_start(target)

        jobs: List[ChunkJob] = []
        previous_snapshot_entry = None
        # verify_chain=False: the workers prove each chunk extends its
        # checkpoint (run_chunk step 1a), so verifying here too would run
        # the whole chain serially in the parent on top of that.
        for chunk in iter_stream_chunks(target, max_chunks=chunk_target,
                                        verify_chain=False):
            if chunk.index == 0:
                initial_state, snapshot_bytes = start_state, start_bytes
            else:
                if previous_snapshot_entry is None:
                    raise MissingSnapshotError(
                        "the segment preceding the chunk does not end with "
                        "a snapshot")
                initial_state, snapshot_bytes = fetch_verified_snapshot_entry(
                    target, previous_snapshot_entry)
            segment = chunk.segment
            jobs.append(ChunkJob(
                machine=machine,
                auditor=auditor.identity,
                chunk_index=chunk.index,
                segment=segment,
                checkpoint=chunk.start_checkpoint,
                authenticators=[auth for auth in authenticators
                                if segment.entries
                                and segment.first_sequence <= auth.sequence
                                <= segment.last_sequence],
                key_view=key_view,
                reference_image=auditor.reference_image,
                initial_state=initial_state,
                snapshot_bytes=snapshot_bytes,
                cost_params=auditor.cost_params,
                verify_seconds=verify_seconds,
            ))
            snapshot_entries = segment.entries_of_type(EntryType.SNAPSHOT)
            previous_snapshot_entry = (snapshot_entries[-1]
                                       if snapshot_entries else None)
        if not jobs:
            raise SegmentError(f"no archived segments for {machine!r}")
        return _MachinePlan(machine=machine, auditor=auditor, target=target,
                            jobs=jobs, full_segment=None,
                            initial_state=start_state,
                            snapshot_bytes=start_bytes)

    def _plan_chunks(self, assignment: AuditAssignment) -> "_MachinePlan":
        auditor = assignment.auditor
        target = assignment.target
        machine = target.identity
        authenticators = [auth for auth in auditor.authenticators_for(machine)
                          if auth.machine == machine]
        key_view = auditor.keystore.static_view()
        verify_seconds = scheme_verify_seconds(auditor.keystore, machine)

        segments = target.get_snapshot_segments()
        segments = [segment for segment in segments if segment.entries]
        if not segments:
            full = target.get_log_segment()
            segments = [full] if full.entries else []
        chunk_target = self.chunks_per_machine or max(1, self.workers)
        chunks = partition_segments(segments, chunk_target) if segments else []

        jobs: List[ChunkJob] = []
        full_segment = (concatenate_segments(chunks) if chunks
                        else target.get_log_segment())
        for index, chunk in enumerate(chunks):
            initial_state: Optional[Dict[str, Any]] = None
            snapshot_bytes = 0
            if index > 0:
                initial_state, snapshot_bytes = fetch_verified_snapshot(
                    target, chunks[index - 1])
            jobs.append(ChunkJob(
                machine=machine,
                auditor=auditor.identity,
                chunk_index=index,
                segment=chunk,
                checkpoint=chunk.start_checkpoint(),
                # ship only the chunk's share of the authenticators: job
                # pickling cost then scales with chunk size, not log size
                authenticators=[auth for auth in authenticators
                                if chunk.first_sequence <= auth.sequence
                                <= chunk.last_sequence],
                key_view=key_view,
                reference_image=auditor.reference_image,
                initial_state=initial_state,
                snapshot_bytes=snapshot_bytes,
                cost_params=auditor.cost_params,
                verify_seconds=verify_seconds,
            ))
        return _MachinePlan(machine=machine, auditor=auditor, target=target,
                            jobs=jobs, full_segment=full_segment)

    # -- merging ------------------------------------------------------------

    def _merge(self, plan: "_MachinePlan",
               outcomes: List[ChunkOutcome]) -> MachineAuditReport:
        auditor = plan.auditor
        machine = plan.machine

        if plan.serial_fallback_reason is not None:
            result = self._confirm_serially(plan)
            return MachineAuditReport(machine=machine, result=result,
                                      confirmed_serially=True)

        failed = next((outcome for outcome in outcomes if not outcome.ok), None)
        boundary_reason: Optional[str] = None
        if failed is None:
            boundary_reason = self._check_boundaries(plan, outcomes)

        if failed is not None or boundary_reason is not None:
            # Slow path: re-run the serial audit so evidence is canonical and
            # identical to what workers=1 would produce.
            if self.confirm_failures_serially:
                result = self._confirm_serially(plan)
            else:
                result = self._synthesise_failure(plan, failed, boundary_reason)
            return MachineAuditReport(machine=machine, result=result,
                                      chunk_count=len(outcomes),
                                      chunk_outcomes=outcomes,
                                      confirmed_serially=self.confirm_failures_serially)

        # Fast path: all chunks passed; stitch counters and costs together.
        cost = AuditCost.total(outcome.cost for outcome in outcomes)
        replay = _merge_replay_reports(machine,
                                       [outcome.replay_report for outcome in outcomes])
        result = AuditResult(
            machine=machine, auditor=auditor.identity,
            verdict=Verdict.PASS, phase=AuditPhase.COMPLETE,
            authenticators_checked=sum(outcome.authenticators_checked
                                       for outcome in outcomes),
            replay_report=replay, cost=cost)
        return MachineAuditReport(machine=machine, result=result,
                                  chunk_count=len(outcomes),
                                  chunk_outcomes=outcomes)

    def _confirm_serially(self, plan: "_MachinePlan") -> AuditResult:
        """The canonical serial audit (anchored at the GC boundary if any)."""
        return plan.auditor.audit_segment(plan.machine, plan.materialized(),
                                          initial_state=plan.initial_state,
                                          snapshot_bytes=plan.snapshot_bytes)

    def _check_boundaries(self, plan: "_MachinePlan",
                          outcomes: List[ChunkOutcome]) -> Optional[str]:
        """Chunk stitching: checkpoints must tile, cross-references must hold."""
        for previous, current in zip(outcomes, outcomes[1:]):
            expected = plan.jobs[current.chunk_index].checkpoint
            if previous.end_checkpoint != expected:
                return (f"chunk {current.chunk_index} does not extend chunk "
                        f"{previous.chunk_index} (checkpoint mismatch)")
        # The whole-segment cross-checker, with its exact serial semantics
        # (streamed plans concatenate entry references lazily here — the
        # parent already holds every chunk, so this adds no data copies).
        cross = SyntacticChecker(verify_sender_signatures=False,
                                 check_entry_format=False).check(plan.materialized())
        if not cross.ok:
            return "; ".join(cross.problems[:3])
        return None

    def _synthesise_failure(self, plan: "_MachinePlan",
                            failed: Optional[ChunkOutcome],
                            boundary_reason: Optional[str]) -> AuditResult:
        """Failure result without the serial confirmation pass (opt-in)."""
        from repro.audit.evidence import Evidence
        auditor = plan.auditor
        phase = failed.phase if failed is not None else AuditPhase.SYNTACTIC_CHECK
        reason = failed.reason if failed is not None else (boundary_reason or "")
        evidence = Evidence(machine=plan.machine, accuser=auditor.identity,
                            reason=reason, segment=plan.materialized(),
                            authenticators=auditor.authenticators_for(plan.machine),
                            reference_image_hash=auditor.reference_image.image_hash(),
                            initial_state=plan.initial_state)
        return AuditResult(machine=plan.machine, auditor=auditor.identity,
                           verdict=Verdict.FAIL, phase=phase, reason=reason,
                           evidence=evidence)

    # -- execution ----------------------------------------------------------

    def _executor_kind(self, jobs: Sequence[ChunkJob]) -> str:
        if self.workers <= 1 or len(jobs) <= 1 or self.executor == "inline":
            return "inline"
        if self.executor in ("process", "thread"):
            return self.executor
        # auto: processes give real parallelism, but only when jobs pickle.
        try:
            pickle.dumps(jobs[0])
        except Exception:
            return "thread"
        return "process"

    def _execute(self, jobs: List[ChunkJob]) -> List[ChunkOutcome]:
        kind = self._executor_kind(jobs)
        if kind == "inline":
            return [run_chunk(job) for job in jobs]
        pool_size = min(self.workers, len(jobs))
        pool_cls = ProcessPoolExecutor if kind == "process" else ThreadPoolExecutor
        with pool_cls(max_workers=pool_size) as pool:
            return list(pool.map(run_chunk, jobs))


@dataclass
class _MachinePlan:
    """Prepared work for one machine (parent-side only; never pickled)."""

    machine: str
    auditor: Auditor
    target: AccountableVMM
    jobs: List[ChunkJob]
    #: the whole log, or ``None`` for streamed plans, which concatenate it
    #: lazily from the chunk jobs only if a failure needs the serial re-audit
    full_segment: Optional[LogSegment]
    #: set when chunk planning failed (e.g. unverifiable snapshot) and the
    #: whole machine must be audited serially instead
    serial_fallback_reason: Optional[str] = None
    #: replay start for the whole log (the GC boundary snapshot, if any)
    initial_state: Optional[Dict[str, Any]] = None
    snapshot_bytes: int = 0

    def materialized(self) -> LogSegment:
        """The whole log as one segment (concatenated on first use)."""
        if self.full_segment is None:
            self.full_segment = concatenate_segments(
                [job.segment for job in self.jobs])
        return self.full_segment


# ---------------------------------------------------------------------------
# Helpers shared with the spot checker
# ---------------------------------------------------------------------------

def fetch_verified_snapshot(target: AccountableVMM,
                             preceding_segment: LogSegment) -> Tuple[Dict[str, Any], int]:
    """Download and authenticate the snapshot at a chunk boundary.

    The preceding chunk ends with the SNAPSHOT entry whose hash-tree root
    must match the downloaded snapshot (Section 4.5, "Verifying the
    snapshot").  Returns ``(state, transfer_bytes)``.
    """
    from repro.audit.stream import fetch_verified_snapshot_entry
    snapshot_entries = preceding_segment.entries_of_type(EntryType.SNAPSHOT)
    if not snapshot_entries:
        raise MissingSnapshotError(
            "the segment preceding the chunk does not end with a snapshot")
    return fetch_verified_snapshot_entry(target, snapshot_entries[-1])


def scheme_verify_seconds(keystore, machine: str) -> float:
    """Modelled cost of one signature verification under the target's scheme."""
    try:
        scheme_name = keystore.verify_key_for(machine).scheme_name
        return get_scheme(scheme_name).costs().verify_seconds
    except Exception:
        return 0.0


def _merge_replay_reports(machine: str,
                          reports: Sequence[Optional[ReplayReport]]) -> ReplayReport:
    """Stitch per-chunk replay reports into one machine-level report.

    Work counters sum across chunks.  Instruction counters are *absolute*
    (each chunk's VM restores its counter from the boundary snapshot), so
    the last chunk's value is the whole-log count — summing would double-
    count every restored prefix.  ``active_seconds`` still sums per-chunk
    bucket counts, which can exceed the whole-log count by up to one bucket
    per boundary; the serial streaming pipeline computes it globally.
    """
    merged = ReplayReport(machine=machine)
    for report in reports:
        if report is None:
            continue
        merged.entries_replayed += report.entries_replayed
        merged.events_injected += report.events_injected
        merged.clock_reads_served += report.clock_reads_served
        merged.outputs_checked += report.outputs_checked
        merged.snapshots_checked += report.snapshots_checked
        merged.instructions_executed = report.instructions_executed
        merged.active_seconds += report.active_seconds
    return merged
