"""Spot checking (Sections 3.5 and 6.12).

Instead of auditing the whole log, the auditor picks *k-chunks* — ``k``
consecutive snapshot-delimited segments — downloads the snapshot at the start
of the chunk, verifies it against the hash-tree root recorded in the log, and
replays just the chunk.  The cost is roughly proportional to the chunk size
plus a fixed per-chunk cost for transferring the memory and disk snapshots and
for decompression (Figure 9).

Because every k-chunk is an independent work item, spot checks are a natural
fit for the parallel engine: construct the checker with an
:class:`~repro.audit.engine.AuditScheduler` and :meth:`check_all_chunks`
fans the chunks out over its worker pool.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.audit.auditor import Auditor
from repro.audit.verdict import AuditResult
from repro.avmm.monitor import AccountableVMM
from repro.errors import SegmentError
from repro.log.segments import LogSegment, concatenate_segments

if TYPE_CHECKING:  # pragma: no cover - engine imports the auditor, not us
    from repro.audit.engine import AuditScheduler


@dataclass
class SpotCheckResult:
    """Outcome and cost of auditing one k-chunk."""

    chunk_start_index: int
    k: int
    result: AuditResult
    log_bytes: int
    compressed_log_bytes: int
    snapshot_bytes: int
    replay_seconds: float

    @property
    def total_bytes_transferred(self) -> int:
        return self.compressed_log_bytes + self.snapshot_bytes

    @property
    def total_seconds(self) -> float:
        return self.result.cost.decompression_seconds \
            + self.result.cost.syntactic_seconds + self.replay_seconds

    @property
    def ok(self) -> bool:
        return self.result.ok


@dataclass
class SpotCheckReport:
    """Outcome of a *sampled* spot check, with honest coverage accounting.

    A spot check that samples some chunks and finds no fault has *not*
    audited the machine — it has audited the sampled fraction of its log.
    This report keeps the two claims apart: :attr:`ok` says the sampled
    chunks passed, :attr:`complete` says whether the sample actually covered
    every segment, and :meth:`verdict_claim` never reports an unqualified
    "pass" for a partial sample.  A tampered chunk outside the sample
    therefore can never be laundered into a clean bill of health.
    """

    machine: str
    k: int
    #: snapshot-delimited segments the log splits into
    segments_total: int
    #: chunk start indices that were actually audited
    checked_indices: List[int] = field(default_factory=list)
    results: List[SpotCheckResult] = field(default_factory=list)
    #: distinct segments covered by the sampled chunks
    segments_checked: int = 0
    entries_total: int = 0
    entries_checked: int = 0

    @property
    def chunks_checked(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """All *sampled* chunks passed (says nothing about unsampled ones)."""
        return all(result.ok for result in self.results)

    @property
    def complete(self) -> bool:
        """True only when every segment of the log was covered."""
        return self.segments_checked >= self.segments_total

    @property
    def segment_coverage(self) -> float:
        """Fraction of snapshot-delimited segments the sample covered."""
        if self.segments_total <= 0:
            return 1.0
        return self.segments_checked / self.segments_total

    @property
    def entry_coverage(self) -> float:
        """Fraction of log entries the sample covered."""
        if self.entries_total <= 0:
            return 1.0
        return self.entries_checked / self.entries_total

    def verdict_claim(self) -> str:
        """The strongest claim this check honestly supports.

        ``"fail"`` — a sampled chunk produced a fault (evidence attached to
        its result); ``"pass"`` — every segment was audited and passed;
        ``"pass-sampled"`` — the sampled chunks passed, but only
        :attr:`segment_coverage` of the log was looked at.
        """
        if not self.ok:
            return "fail"
        return "pass" if self.complete else "pass-sampled"

    @staticmethod
    def detection_probability(segments_total: int, k: int,
                              sample_size: int) -> float:
        """A-priori chance a uniformly sampled spot check hits one bad segment.

        With ``N`` segments, chunk size ``k`` and ``n`` sampled chunk starts
        (without replacement), a single tampered segment in the interior is
        covered by up to ``k`` starts; the hypergeometric miss probability
        gives ``p = 1 - C(N', n) / C(N'+c, n)`` with ``N'`` the non-covering
        starts.  This is the Figure 9 trade-off: cost scales with ``n * k``,
        detection probability with how much of the log the sample covers.
        """
        starts_total = max(0, segments_total - k + 1)
        if starts_total == 0 or sample_size <= 0:
            return 0.0
        sample_size = min(sample_size, starts_total)
        covering = min(k, starts_total)
        missing = starts_total - covering
        if sample_size > missing:
            return 1.0
        miss = math.comb(missing, sample_size) / math.comb(starts_total, sample_size)
        return 1.0 - miss


class _SegmentSource:
    """Lazy access to a target's snapshot-delimited segments.

    Live targets materialize their segment list once (as before).  An
    archive-backed target (``supports_streaming``) is served record by
    record from disk instead, with a small sliding cache sized to the chunk
    being checked — so a spot check of one k-chunk decompresses k+1
    segments, not the whole log, and entry counts come from the manifest
    index without touching segment files at all.
    """

    def __init__(self, target: AccountableVMM, k: int = 1,
                 segments: Optional[List[LogSegment]] = None) -> None:
        self._records = None
        self._archive = None
        self._cache: Dict[int, LogSegment] = {}
        self._cache_limit = max(2, k + 1)
        if segments is not None:
            self._segments: Optional[List[LogSegment]] = list(segments)
        elif getattr(target, "supports_streaming", False):
            self._segments = None
            self._archive = target.archive
            self._records = target.archive.segment_records(target.identity)
        else:
            self._segments = target.get_snapshot_segments()

    def __len__(self) -> int:
        if self._segments is not None:
            return len(self._segments)
        return len(self._records)

    def get(self, index: int) -> LogSegment:
        if self._segments is not None:
            return self._segments[index]
        cached = self._cache.get(index)
        if cached is None:
            cached = self._archive.read_segment(self._records[index])
            if len(self._cache) >= self._cache_limit:
                self._cache.pop(min(self._cache))
            self._cache[index] = cached
        return cached

    def slice(self, start: int, stop: int) -> List[LogSegment]:
        return [self.get(index) for index in range(start, stop)]

    def entry_count(self, index: int) -> int:
        if self._segments is not None:
            return len(self._segments[index])
        return self._records[index].entry_count

    def total_entries(self) -> int:
        return sum(self.entry_count(index) for index in range(len(self)))


class SpotChecker:
    """Audits k-chunks of a machine's log.

    ``engine`` (or the auditor's own engine, when it has one) parallelises
    :meth:`check_all_chunks`; single-chunk checks always run serially.
    Archive-backed targets are read lazily: each chunk's segments are
    decompressed on demand (:class:`_SegmentSource`), so checking a few
    chunks of a long archived log never materializes the log.
    """

    def __init__(self, auditor: Auditor,
                 engine: Optional["AuditScheduler"] = None) -> None:
        self.auditor = auditor
        self._engine = engine

    @property
    def engine(self) -> Optional["AuditScheduler"]:
        return self._engine if self._engine is not None else self.auditor.engine

    # -- public API ------------------------------------------------------------------

    def check_chunk(self, target: AccountableVMM, start_index: int, k: int,
                    segments: Optional[Union[List[LogSegment],
                                             _SegmentSource]] = None
                    ) -> SpotCheckResult:
        """Audit the chunk of ``k`` consecutive segments starting at ``start_index``.

        ``start_index`` is an index into the list of snapshot-delimited
        segments (0 = the segment that starts at the beginning of the log).
        """
        if not isinstance(segments, _SegmentSource):
            segments = _SegmentSource(target, k=k, segments=segments)
        if start_index < 0 or start_index + k > len(segments):
            raise SegmentError(
                f"chunk [{start_index}, {start_index + k}) outside the "
                f"{len(segments)} available segments")
        chunk = concatenate_segments(segments.slice(start_index,
                                                    start_index + k))

        initial_state: Optional[Dict[str, Any]] = None
        snapshot_bytes = 0
        if start_index > 0:
            initial_state, snapshot_bytes = self._fetch_and_verify_snapshot(
                target, segments.get(start_index - 1))

        result = self.auditor.audit_segment(target.identity, chunk,
                                            initial_state=initial_state,
                                            snapshot_bytes=snapshot_bytes)
        return SpotCheckResult(
            chunk_start_index=start_index,
            k=k,
            result=result,
            log_bytes=chunk.size_bytes(),
            compressed_log_bytes=result.cost.compressed_log_bytes,
            snapshot_bytes=snapshot_bytes,
            replay_seconds=result.cost.semantic_seconds,
        )

    def sample_chunks(self, target: AccountableVMM, k: int, sample_size: int,
                      seed: int = 0, skip_initial: bool = True) -> SpotCheckReport:
        """Audit a random sample of k-chunks and report coverage honestly.

        ``sample_size`` chunk start indices are drawn without replacement
        from a ``random.Random(seed)`` stream, so the sample is reproducible.
        The returned :class:`SpotCheckReport` separates "the sampled chunks
        passed" from "the machine passed": a fault in an unsampled chunk is
        *not* vouched for — :meth:`SpotCheckReport.verdict_claim` stays
        ``"pass-sampled"`` and the coverage fractions say how much of the
        log was actually checked.
        """
        segments = _SegmentSource(target, k=k)
        start = 1 if skip_initial else 0
        indices = list(range(start, len(segments) - k + 1))
        rng = random.Random(seed)
        chosen = sorted(rng.sample(indices, min(sample_size, len(indices)))) \
            if indices else []
        results = [self.check_chunk(target, index, k, segments=segments)
                   for index in chosen]
        covered = {index + offset for index in chosen for offset in range(k)}
        report = SpotCheckReport(
            machine=target.identity, k=k,
            segments_total=len(segments),
            checked_indices=chosen, results=results,
            segments_checked=len(covered),
            entries_total=segments.total_entries(),
            entries_checked=sum(segments.entry_count(index)
                                for index in covered))
        return report

    def check_all_chunks(self, target: AccountableVMM, k: int,
                         skip_initial: bool = True) -> List[SpotCheckResult]:
        """Audit every possible k-chunk (Figure 9 sweeps k over the whole log).

        ``skip_initial`` excludes chunks that start at the very beginning of
        the log, as the paper does: they are atypical because no snapshot has
        to be transferred and there is little activity yet.  With an engine
        attached, the chunks run concurrently on its worker pool; the results
        are returned in chunk order either way.
        """
        segments = _SegmentSource(target, k=k)
        start = 1 if skip_initial else 0
        indices = list(range(start, len(segments) - k + 1))
        engine = self.engine
        if engine is None or engine.workers <= 1 or len(indices) <= 1:
            return [self.check_chunk(target, index, k, segments=segments)
                    for index in indices]
        return self._check_chunks_on_engine(target, k, indices, segments)

    def _check_chunks_on_engine(self, target: AccountableVMM, k: int,
                                indices: List[int],
                                segments: _SegmentSource) -> List[SpotCheckResult]:
        """Fan independent k-chunks out over the engine's worker pool.

        A chunk that fails on the fast path is re-audited serially so its
        result (evidence included) is exactly what :meth:`check_chunk` would
        have produced.
        """
        from repro.audit.engine import (
            ChunkJob,
            fetch_verified_snapshot,
            scheme_verify_seconds,
        )
        from repro.audit.verdict import AuditPhase, Verdict

        auditor = self.auditor
        machine = target.identity
        key_view = auditor.keystore.static_view()
        verify_seconds = scheme_verify_seconds(auditor.keystore, machine)
        authenticators = [auth for auth in auditor.authenticators_for(machine)
                          if auth.machine == machine]

        jobs: List["ChunkJob"] = []
        for position, index in enumerate(indices):
            chunk = concatenate_segments(segments.slice(index, index + k))
            initial_state: Optional[Dict[str, Any]] = None
            snapshot_bytes = 0
            if index > 0:
                initial_state, snapshot_bytes = fetch_verified_snapshot(
                    target, segments.get(index - 1))
            jobs.append(ChunkJob(
                machine=machine, auditor=auditor.identity,
                chunk_index=position, segment=chunk,
                checkpoint=chunk.start_checkpoint(),
                # only the chunk's share, so job pickling scales with chunk
                # size rather than log size (run_chunk re-filters anyway)
                authenticators=[auth for auth in authenticators
                                if chunk.first_sequence <= auth.sequence
                                <= chunk.last_sequence],
                key_view=key_view,
                reference_image=auditor.reference_image,
                initial_state=initial_state, snapshot_bytes=snapshot_bytes,
                cost_params=auditor.cost_params,
                verify_seconds=verify_seconds,
                check_cross_references=True,
            ))

        with auditor.obs.tracer.timed("audit.spot_check", track=machine,
                                      chunks=len(jobs), k=k) as timer:
            outcomes = self.engine.run_jobs(jobs)
        results: List[SpotCheckResult] = []
        for index, job, outcome in zip(indices, jobs, outcomes):
            if outcome.ok:
                result = AuditResult(
                    machine=machine, auditor=auditor.identity,
                    verdict=Verdict.PASS, phase=AuditPhase.COMPLETE,
                    authenticators_checked=outcome.authenticators_checked,
                    replay_report=outcome.replay_report, cost=outcome.cost)
                # Chunks share one pool run; the pool wall is the shared
                # measurement (serial re-audits below time themselves).
                result.wall_seconds = timer.seconds
            else:
                result = auditor.audit_segment(machine, job.segment,
                                               initial_state=job.initial_state,
                                               snapshot_bytes=job.snapshot_bytes)
            results.append(SpotCheckResult(
                chunk_start_index=index, k=k, result=result,
                log_bytes=job.segment.size_bytes(),
                compressed_log_bytes=result.cost.compressed_log_bytes,
                snapshot_bytes=job.snapshot_bytes,
                replay_seconds=result.cost.semantic_seconds))
        return results

    # -- helpers ---------------------------------------------------------------------

    def _fetch_and_verify_snapshot(self, target: AccountableVMM,
                                   preceding_segment: LogSegment):
        """Download the snapshot at the chunk boundary and authenticate it.

        Delegates to the engine's shared helper (Section 4.5, "Verifying the
        snapshot"): the preceding segment ends with the SNAPSHOT entry whose
        hash-tree root must match the downloaded snapshot.
        """
        from repro.audit.engine import fetch_verified_snapshot
        return fetch_verified_snapshot(target, preceding_segment)
