"""Spot checking (Sections 3.5 and 6.12).

Instead of auditing the whole log, the auditor picks *k-chunks* — ``k``
consecutive snapshot-delimited segments — downloads the snapshot at the start
of the chunk, verifies it against the hash-tree root recorded in the log, and
replays just the chunk.  The cost is roughly proportional to the chunk size
plus a fixed per-chunk cost for transferring the memory and disk snapshots and
for decompression (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.audit.auditor import Auditor
from repro.audit.verdict import AuditResult
from repro.avmm.monitor import AccountableVMM
from repro.errors import MissingSnapshotError, SegmentError
from repro.log.entries import EntryType
from repro.log.segments import LogSegment, concatenate_segments


@dataclass
class SpotCheckResult:
    """Outcome and cost of auditing one k-chunk."""

    chunk_start_index: int
    k: int
    result: AuditResult
    log_bytes: int
    compressed_log_bytes: int
    snapshot_bytes: int
    replay_seconds: float

    @property
    def total_bytes_transferred(self) -> int:
        return self.compressed_log_bytes + self.snapshot_bytes

    @property
    def total_seconds(self) -> float:
        return self.result.cost.decompression_seconds \
            + self.result.cost.syntactic_seconds + self.replay_seconds

    @property
    def ok(self) -> bool:
        return self.result.ok


class SpotChecker:
    """Audits k-chunks of a machine's log."""

    def __init__(self, auditor: Auditor) -> None:
        self.auditor = auditor

    # -- public API ------------------------------------------------------------------

    def check_chunk(self, target: AccountableVMM, start_index: int, k: int,
                    segments: Optional[List[LogSegment]] = None) -> SpotCheckResult:
        """Audit the chunk of ``k`` consecutive segments starting at ``start_index``.

        ``start_index`` is an index into the list of snapshot-delimited
        segments (0 = the segment that starts at the beginning of the log).
        """
        if segments is None:
            segments = target.get_snapshot_segments()
        if start_index < 0 or start_index + k > len(segments):
            raise SegmentError(
                f"chunk [{start_index}, {start_index + k}) outside the "
                f"{len(segments)} available segments")
        chunk = concatenate_segments(segments[start_index:start_index + k])

        initial_state: Optional[Dict[str, Any]] = None
        snapshot_bytes = 0
        if start_index > 0:
            initial_state, snapshot_bytes = self._fetch_and_verify_snapshot(
                target, segments[start_index - 1])

        result = self.auditor.audit_segment(target.identity, chunk,
                                            initial_state=initial_state,
                                            snapshot_bytes=snapshot_bytes)
        return SpotCheckResult(
            chunk_start_index=start_index,
            k=k,
            result=result,
            log_bytes=chunk.size_bytes(),
            compressed_log_bytes=result.cost.compressed_log_bytes,
            snapshot_bytes=snapshot_bytes,
            replay_seconds=result.cost.semantic_seconds,
        )

    def check_all_chunks(self, target: AccountableVMM, k: int,
                         skip_initial: bool = True) -> List[SpotCheckResult]:
        """Audit every possible k-chunk (Figure 9 sweeps k over the whole log).

        ``skip_initial`` excludes chunks that start at the very beginning of
        the log, as the paper does: they are atypical because no snapshot has
        to be transferred and there is little activity yet.
        """
        segments = target.get_snapshot_segments()
        results: List[SpotCheckResult] = []
        start = 1 if skip_initial else 0
        for index in range(start, len(segments) - k + 1):
            results.append(self.check_chunk(target, index, k, segments=segments))
        return results

    # -- helpers ---------------------------------------------------------------------

    def _fetch_and_verify_snapshot(self, target: AccountableVMM,
                                   preceding_segment: LogSegment):
        """Download the snapshot at the chunk boundary and authenticate it.

        The preceding segment ends with the SNAPSHOT entry whose hash-tree
        root must match the downloaded snapshot (Section 4.5, "Verifying the
        snapshot").
        """
        snapshot_entries = preceding_segment.entries_of_type(EntryType.SNAPSHOT)
        if not snapshot_entries:
            raise MissingSnapshotError(
                "the segment preceding the chunk does not end with a snapshot")
        snapshot_entry = snapshot_entries[-1]
        snapshot_id = int(snapshot_entry.content["snapshot_id"])
        expected_root = str(snapshot_entry.content["state_root"])

        snapshot = target.snapshots.get(snapshot_id)
        if snapshot.state_root.hex() != expected_root:
            raise MissingSnapshotError(
                f"snapshot {snapshot_id} does not match the root recorded in the log")
        if not snapshot.verify_root():
            raise MissingSnapshotError(
                f"snapshot {snapshot_id} failed hash-tree verification")
        transfer_bytes = target.snapshots.transfer_cost_bytes(snapshot_id)
        return snapshot.state, transfer_bytes
