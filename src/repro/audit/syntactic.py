"""The syntactic check (Section 4.5).

The audit tool first checks *whether the log itself is well-formed*: every
entry has the proper format, the cryptographic signatures in each message and
acknowledgment verify, each message was acknowledged, and the sequence of
sent and received messages corresponds to the sequence of messages that enter
and exit the AVM.  All of this is independent of the reference image; it only
needs the log and the parties' public keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.crypto import hashing
from repro.crypto.keys import KeyStore
from repro.errors import LogFormatError
from repro.log.entries import EntryType, LogEntry
from repro.log.segments import LogSegment

# Fields every entry of a given type must carry to be considered well-formed.
_REQUIRED_FIELDS: Dict[EntryType, Set[str]] = {
    EntryType.SEND: {"destination", "payload_hash", "payload_size", "message_id"},
    EntryType.RECV: {"source", "payload_hash", "payload_size", "message_id",
                     "sender_signature"},
    EntryType.ACK: {"peer", "message_id", "direction"},
    EntryType.SNAPSHOT: {"snapshot_id", "state_root", "execution_counter"},
    EntryType.TIMETRACKER: {"event_kind", "execution_counter"},
    EntryType.MACLAYER: {"direction", "message_id", "execution_counter"},
    EntryType.NONDET: {"event_kind", "execution_counter"},
}


@dataclass
class SyntacticReport:
    """Result of the syntactic check."""

    problems: List[str] = field(default_factory=list)
    entries_checked: int = 0
    signatures_verified: int = 0
    sends: int = 0
    recvs: int = 0
    acks: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)


class SyntacticChecker:
    """Performs the syntactic check on one log segment."""

    def __init__(self, keystore: Optional[KeyStore] = None, *,
                 require_acknowledgments: bool = False,
                 verify_sender_signatures: bool = True,
                 check_cross_references: bool = True,
                 check_entry_format: bool = True) -> None:
        """``keystore`` may be a :class:`KeyStore` or any object with its
        ``has_identity``/``verify`` interface (e.g. the picklable
        :class:`~repro.crypto.keys.StaticKeyView` used by audit workers).

        ``check_cross_references`` switches the stream cross-checks
        (SEND/RECV vs MAC-layer) on or off, and ``check_entry_format`` the
        per-entry well-formedness checks.  The parallel audit engine splits
        the work along exactly this line: workers run the per-entry checks
        chunk by chunk (cross-references would see matching pairs split
        across chunk boundaries as orphans), while the parent runs only the
        cross-references once over the whole segment, where they are cheap
        (no cryptography) and not duplicated.
        """
        self.keystore = keystore
        self.require_acknowledgments = require_acknowledgments
        self.verify_sender_signatures = verify_sender_signatures
        self.check_cross_references = check_cross_references
        self.check_entry_format = check_entry_format

    # -- public API ---------------------------------------------------------------

    def check(self, segment: LogSegment) -> SyntacticReport:
        """Run all syntactic checks; problems are collected, not raised."""
        report = SyntacticReport()
        sends: Dict[str, LogEntry] = {}
        recvs: Dict[str, LogEntry] = {}
        acked_received: Set[str] = set()
        mac_in: Dict[str, LogEntry] = {}
        mac_out: Dict[str, LogEntry] = {}

        for entry in segment.entries:
            report.entries_checked += 1
            if self.check_entry_format:
                self._check_format(entry, report)
            if entry.entry_type is EntryType.SEND:
                report.sends += 1
                sends[str(entry.content.get("message_id"))] = entry
            elif entry.entry_type is EntryType.RECV:
                report.recvs += 1
                recvs[str(entry.content.get("message_id"))] = entry
                self._check_recv_signature(segment.machine, entry, report)
            elif entry.entry_type is EntryType.ACK:
                report.acks += 1
                if entry.content.get("direction") == "received":
                    acked_received.add(str(entry.content.get("message_id")))
            elif entry.entry_type is EntryType.MACLAYER:
                message_id = str(entry.content.get("message_id"))
                if entry.content.get("direction") == "in":
                    mac_in[message_id] = entry
                else:
                    mac_out[message_id] = entry

        if self.check_cross_references:
            self._cross_reference(segment, sends, recvs, mac_in, mac_out, report)
        if self.require_acknowledgments:
            for message_id, entry in sends.items():
                if message_id not in acked_received:
                    report.add(f"SEND {message_id} (sequence {entry.sequence}) "
                               f"was never acknowledged")
        return report

    # -- individual checks -----------------------------------------------------------

    @staticmethod
    def _check_format(entry: LogEntry, report: SyntacticReport) -> None:
        required = _REQUIRED_FIELDS.get(entry.entry_type, set())
        try:
            fields = set(entry.content)
        except LogFormatError as exc:
            # A lazily-decoded entry whose wire content bytes do not parse:
            # the chain check already proves them inauthentic, but the format
            # sweep must degrade to a report line, not an exception.
            report.add(f"entry {entry.sequence} ({entry.entry_type.wire_name}) "
                       f"carries unparseable content: {exc}")
            return
        missing = required - fields
        if missing:
            report.add(f"entry {entry.sequence} ({entry.entry_type.wire_name}) "
                       f"is missing fields {sorted(missing)}")
        if entry.sequence < 1:
            report.add(f"entry has invalid sequence number {entry.sequence}")

    def _check_recv_signature(self, machine: str, entry: LogEntry,
                              report: SyntacticReport) -> None:
        """Verify the sender's signature logged with an incoming message."""
        if not self.verify_sender_signatures or self.keystore is None:
            return
        signature_hex = entry.content.get("sender_signature", "")
        source = str(entry.content.get("source", ""))
        if not signature_hex:
            return  # unsigned traffic (nosig configurations)
        if not self.keystore.has_identity(source):
            report.add(f"entry {entry.sequence}: no certificate for sender {source!r}")
            return
        payload_hash = bytes.fromhex(str(entry.content.get("payload_hash", "")))
        kind = str(entry.content.get("kind", "data"))
        signed = hashing.hash_concat(
            source.encode("utf-8"),
            machine.encode("utf-8"),
            str(entry.content.get("message_id", "")).encode("utf-8"),
            kind.encode("utf-8"),
            payload_hash,
        )
        if not self.keystore.verify(source, signed, bytes.fromhex(signature_hex)):
            report.add(f"entry {entry.sequence}: sender signature from {source!r} "
                       f"does not verify (possible forged message)")
        else:
            report.signatures_verified += 1

    @staticmethod
    def _cross_reference(segment: LogSegment, sends: Dict[str, LogEntry],
                         recvs: Dict[str, LogEntry], mac_in: Dict[str, LogEntry],
                         mac_out: Dict[str, LogEntry], report: SyntacticReport) -> None:
        """Check the message stream against the MAC-layer stream (Section 4.4)."""
        for message_id, entry in mac_in.items():
            recv = recvs.get(message_id)
            if recv is None:
                report.add(f"packet {message_id} entered the AVM (sequence "
                           f"{entry.sequence}) but has no RECV entry")
                continue
            recv_payload = recv.content.get("payload")
            if recv_payload is not None:
                actual_hash = hashing.hash_bytes(bytes.fromhex(recv_payload)).hex()
                if actual_hash != recv.content.get("payload_hash"):
                    report.add(f"RECV {message_id}: logged payload does not match "
                               f"its logged hash")
        for message_id, entry in mac_out.items():
            send = sends.get(message_id)
            if send is None:
                report.add(f"packet {message_id} left the AVM (sequence "
                           f"{entry.sequence}) but has no SEND entry")
                continue
            if entry.content.get("payload_hash") != send.content.get("payload_hash"):
                report.add(f"message {message_id}: SEND entry and MAC-layer entry "
                           f"disagree about the payload")
        for message_id, entry in recvs.items():
            if message_id not in mac_in:
                # The packet was logged as received but never injected into the
                # AVM.  This is legitimate only at the very end of the segment
                # (the packet may still be "in flight" inside the monitor).
                if entry.sequence < segment.last_sequence - 5:
                    report.add(f"message {message_id} was received (sequence "
                               f"{entry.sequence}) but never entered the AVM")
