"""The 26-cheat catalogue behind Table 1.

The paper downloaded 26 real Counterstrike cheats from popular discussion
forums and classified them: all 26 must be installed inside the game VM to be
effective (class 1, detectable in that implementation), and at least 4 of them
additionally make the machine's network-visible behaviour inconsistent with
any correct execution (class 2, detectable in any implementation).

The catalogue below mirrors that population with the cheat types those forums
actually distribute.  Entries that have a runnable implementation in this
repository reference it by name; the functional check (Section 6.3) runs the
non-OpenGL subset end to end, as the paper did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.game.cheats.base import CheatClass, CheatSpec

_C1 = CheatClass.INSTALLED_IN_AVM
_C2 = CheatClass.NETWORK_VISIBLE

CHEAT_CATALOG: List[CheatSpec] = [
    CheatSpec("aimbot", "snaps the crosshair onto the nearest opponent", _C1,
              implementation="AimbotCheat"),
    CheatSpec("silent-aimbot", "aims server-side without moving the view", _C1),
    CheatSpec("triggerbot", "fires automatically when an opponent is under the crosshair",
              _C1, implementation="TriggerBotCheat"),
    CheatSpec("wallhack", "renders opaque surfaces transparent", _C1,
              requires_opengl=True, implementation="WallhackCheat"),
    CheatSpec("asus-driver-wallhack", "transparent textures via a modified graphics driver",
              _C1, requires_opengl=True),
    CheatSpec("esp-overlay", "draws opponent positions, health and weapons on screen",
              _C1, requires_opengl=True),
    CheatSpec("radar-hack", "shows all players on the radar regardless of visibility", _C1),
    CheatSpec("sound-esp", "plays a tone when an opponent is nearby", _C1),
    CheatSpec("no-smoke", "removes smoke-grenade effects", _C1, requires_opengl=True),
    CheatSpec("no-flash", "removes flashbang blinding", _C1, requires_opengl=True),
    CheatSpec("crosshair-overlay", "adds a permanent sniper crosshair", _C1,
              requires_opengl=True),
    CheatSpec("unlimited-ammo", "rewrites the ammunition counter in memory",
              _C1 | _C2, implementation="UnlimitedAmmoCheat"),
    CheatSpec("unlimited-health", "rewrites the health value in memory (god mode)",
              _C1 | _C2, implementation="UnlimitedHealthCheat"),
    CheatSpec("teleport", "rewrites the position variables to jump across the map",
              _C1 | _C2, implementation="TeleportCheat"),
    CheatSpec("rapid-fire", "fires faster than the weapon's rate of fire allows",
              _C1 | _C2, implementation="NoRecoilCheat"),
    CheatSpec("speedhack", "accelerates the client clock to move faster", _C1,
              implementation="SpeedHackCheat"),
    CheatSpec("no-recoil", "removes weapon recoil compensation", _C1,
              implementation="NoRecoilCheat"),
    CheatSpec("no-spread", "removes bullet spread for perfect accuracy", _C1),
    CheatSpec("bunnyhop-script", "scripted jump timing for faster movement", _C1),
    CheatSpec("auto-pistol", "turns semi-automatic pistols into automatic ones", _C1),
    CheatSpec("spinbot", "spins the view to make headshots against the player difficult",
              _C1),
    CheatSpec("anti-flash-skins", "bright player skins visible in the dark", _C1,
              requires_opengl=True),
    CheatSpec("lambert-fullbright", "removes lighting so players never hide in shadow",
              _C1, requires_opengl=True),
    CheatSpec("hitbox-expander", "enlarges opponent hitboxes client-side", _C1),
    CheatSpec("knife-range-extender", "extends melee range in memory", _C1),
    CheatSpec("config-exploit-scripts", "scripted config abuse (turn/jump binds)", _C1),
]


def get_cheat_spec(name: str) -> CheatSpec:
    """Look up a catalogue entry by name."""
    for spec in CHEAT_CATALOG:
        if spec.name == name:
            return spec
    raise KeyError(f"no cheat named {name!r} in the catalogue")


@dataclass(frozen=True)
class CatalogSummary:
    """The aggregated numbers Table 1 reports."""

    total: int
    detectable: int
    detectable_this_implementation_only: int
    detectable_any_implementation: int
    not_detectable: int

    def as_rows(self) -> List[tuple]:
        return [
            ("Total number of cheats examined", self.total),
            ("Cheats detectable with AVMs", self.detectable),
            ("... in this specific implementation of the cheat",
             self.detectable_this_implementation_only),
            ("... no matter how the cheat is implemented",
             self.detectable_any_implementation),
            ("Cheats not detectable with AVMs", self.not_detectable),
        ]


def catalog_summary(catalog: Optional[List[CheatSpec]] = None) -> CatalogSummary:
    """Aggregate the catalogue into the Table 1 rows."""
    specs = catalog if catalog is not None else CHEAT_CATALOG
    detectable = [s for s in specs if s.detectable]
    any_impl = [s for s in specs if s.detectable_in_any_implementation]
    this_impl_only = [s for s in specs if s.detectable_in_this_implementation_only]
    return CatalogSummary(
        total=len(specs),
        detectable=len(detectable),
        detectable_this_implementation_only=len(this_impl_only),
        detectable_any_implementation=len(any_impl),
        not_detectable=len(specs) - len(detectable),
    )
