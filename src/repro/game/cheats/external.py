"""Adversaries that operate *outside* the AVM.

A malicious operator (Bob) controls the whole machine, including the AVMM
itself (Section 3.4).  He cannot forge the cryptographic commitments, but he
can tamper with packets after the guest produced them, drop them, or rewrite
his log.  These adversaries exercise exactly those attacks so the tests and
experiments can confirm the paper's claim that *the AVMM does not have to be
trusted*: every manipulation is caught either by the authenticator check or by
replay divergence.
"""

from __future__ import annotations

import json
from typing import Callable, Dict

from repro.avmm.monitor import AccountableVMM
from repro.vm.guest import PacketOutput


class PacketForgingAdversary:
    """Rewrites selected outgoing packets *after* the guest produced them.

    This models a cheat implemented entirely outside the AVM (or a tampered
    AVMM): the guest's execution is untouched, but the machine's network-
    visible behaviour no longer corresponds to it.  The SEND entries then
    describe packets the reference execution never produced, so replay
    diverges — a class-2 detection that works no matter how the cheat is
    implemented.
    """

    def __init__(self, monitor: AccountableVMM,
                 transform: Callable[[bytes], bytes]) -> None:
        self.monitor = monitor
        self.transform = transform
        self.packets_forged = 0
        self._original_send = monitor._send_guest_packet  # noqa: SLF001 - adversary
        monitor._send_guest_packet = self._forged_send    # noqa: SLF001 - adversary

    def _forged_send(self, packet: PacketOutput,
                     compute_seconds: float = 0.0) -> None:
        forged_payload = self.transform(packet.payload)
        if forged_payload != packet.payload:
            self.packets_forged += 1
        self._original_send(PacketOutput(destination=packet.destination,
                                         payload=forged_payload),
                            compute_seconds)

    def detach(self) -> None:
        """Stop forging (restores the monitor's original send path)."""
        self.monitor._send_guest_packet = self._original_send  # noqa: SLF001


def boost_fire_commands(payload: bytes) -> bytes:
    """Example transform: inject extra fire commands into command packets."""
    try:
        packet = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return payload
    if packet.get("type") != "commands":
        return payload
    commands = packet.get("commands", [])
    commands.append({"action": "fire"})
    commands.append({"action": "fire"})
    packet["commands"] = commands
    return json.dumps(packet, sort_keys=True, separators=(",", ":")).encode("utf-8")


class LogTamperingAdversary:
    """Rewrites or drops entries in the machine's own log after the fact.

    Caught by the authenticator check: the hash chain no longer matches the
    authenticators the machine previously sent to its peers.  The richer,
    seeded tampering toolkit (reorder, forge, fork, snapshot mutation) lives
    in :class:`repro.adversary.tampering.TamperingVMM`; this class remains
    the simple two-operation surface the game examples use.
    """

    def __init__(self, monitor: AccountableVMM) -> None:
        self.monitor = monitor

    def rewrite_entry(self, sequence: int, new_content: Dict,
                      recompute_chain: bool = True) -> None:
        """Replace a log entry's content (optionally re-hashing the chain)."""
        self.monitor.log.tamper_replace_entry(sequence, new_content,
                                              recompute_chain=recompute_chain)

    def drop_entry(self, sequence: int) -> None:
        """Remove a log entry entirely."""
        self.monitor.log.tamper_drop_entry(sequence)
