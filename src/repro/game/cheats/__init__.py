"""The cheat catalogue (Section 5 / Table 1).

Every cheat the paper examined falls into one (or both) of two classes:

* **Class 1** — the cheat must be installed along with the game (a module,
  patch or companion program inside the AVM).  Replaying the cheater's log on
  the *reference* image inevitably diverges, so the cheat is detected in this
  implementation; a sufficiently determined cheater could re-engineer it to
  run outside the AVM.
* **Class 2** — the cheat makes the machine's network-visible behaviour
  inconsistent with *any* correct execution (firing with an empty magazine,
  teleporting, surviving lethal damage).  Detection is implementation-
  independent.

:data:`~repro.game.cheats.catalog.CHEAT_CATALOG` lists all 26 cheats with
their classification; the concrete implementations in
:mod:`repro.game.cheats.implementations` actually patch the client image so
the functional experiments (Section 6.3) can run real cheated games and audit
them.
"""

from repro.game.cheats.base import Cheat, CheatClass, CheatSpec
from repro.game.cheats.catalog import CHEAT_CATALOG, catalog_summary, get_cheat_spec
from repro.game.cheats.implementations import (
    AimbotCheat,
    NoRecoilCheat,
    SpeedHackCheat,
    TeleportCheat,
    TriggerBotCheat,
    UnlimitedAmmoCheat,
    UnlimitedHealthCheat,
    WallhackCheat,
    implemented_cheats,
)
from repro.game.cheats.external import PacketForgingAdversary

__all__ = [
    "Cheat",
    "CheatClass",
    "CheatSpec",
    "CHEAT_CATALOG",
    "catalog_summary",
    "get_cheat_spec",
    "AimbotCheat",
    "WallhackCheat",
    "UnlimitedAmmoCheat",
    "UnlimitedHealthCheat",
    "TeleportCheat",
    "SpeedHackCheat",
    "NoRecoilCheat",
    "TriggerBotCheat",
    "implemented_cheats",
    "PacketForgingAdversary",
]
