"""Concrete cheat implementations.

Each cheat subclasses the reference :class:`~repro.game.client.GameClientGuest`
and overrides one of its hook methods, then wraps the result in a *modified*
VM image — the in-simulation equivalent of installing a hacked module or
patched driver alongside the game.  The modified image's program digest
differs from the reference image's, and its behaviour diverges during replay,
so every one of these is detected by an audit (Section 6.3).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.game.cheats.base import Cheat, CheatClass
from repro.game.client import ClientSettings, GameClientGuest
from repro.game.images import _OFFICIAL_DISK
from repro.game.protocol import aim_command, fire_command
from repro.vm.image import VMImage


def _cheat_image(settings: ClientSettings, guest_class, cheat_name: str) -> VMImage:
    """Package a patched client class as an installed-cheat VM image."""
    disk = dict(_OFFICIAL_DISK)
    disk[100] = f"cheat-module:{cheat_name}".encode("utf-8")
    return VMImage(
        name=f"cs-client-{cheat_name}-{settings.player_id}",
        guest_factory=lambda: guest_class(settings),
        disk_blocks=disk,
        allow_software_installation=False,
        metadata={"role": "client", "player": settings.player_id, "cheat": cheat_name},
    )


# ---------------------------------------------------------------------------
# Aimbot: perfect target acquisition from forged aim input (Section 5.3).
# ---------------------------------------------------------------------------

class _AimbotClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "aimbot"

    def hook_transform_commands(self, commands: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Before every fire command, snap the aim onto the nearest opponent."""
        me = self._my_state()
        players = self.last_snapshot.get("players", {})
        if me is None or not players:
            return commands
        transformed: List[Dict[str, Any]] = []
        for command in commands:
            if command.get("action") == "fire":
                target = self._nearest_opponent(me, players)
                if target is not None:
                    angle = math.atan2(target["y"] - me["y"], target["x"] - me["x"])
                    transformed.append(aim_command(angle % (2.0 * math.pi)))
            transformed.append(command)
        return transformed

    @staticmethod
    def _nearest_opponent(me: Dict[str, Any], players: Dict[str, Any]):
        best = None
        best_distance = None
        for pid, other in sorted(players.items()):
            if pid == me["player_id"] or not other.get("alive", True):
                continue
            distance = math.hypot(other["x"] - me["x"], other["y"] - me["y"])
            if best_distance is None or distance < best_distance:
                best, best_distance = other, distance
        return best


class AimbotCheat(Cheat):
    spec_name = "aimbot"
    cheat_class = CheatClass.INSTALLED_IN_AVM

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _AimbotClient, "aimbot")


# ---------------------------------------------------------------------------
# Wallhack: sees opponents through opaque walls (secrecy violation).
# ---------------------------------------------------------------------------

class _WallhackClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "wallhack"

    def hook_visible_players(self) -> List[str]:
        players = self.last_snapshot.get("players", {})
        return sorted(pid for pid in players if pid != self.settings.player_id)


class WallhackCheat(Cheat):
    spec_name = "wallhack"
    cheat_class = CheatClass.INSTALLED_IN_AVM

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _WallhackClient, "wallhack")


# ---------------------------------------------------------------------------
# Unlimited ammunition: fires with an empty magazine (class 1 AND class 2).
# ---------------------------------------------------------------------------

class _UnlimitedAmmoClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "unlimited-ammo"

    def hook_allow_fire(self) -> bool:
        return True

    def hook_after_fire(self) -> None:
        # The cheat periodically rewrites the ammunition counter in memory, so
        # it never decreases.
        self.local_ammo = max(self.local_ammo, 1)


class UnlimitedAmmoCheat(Cheat):
    spec_name = "unlimited-ammo"
    cheat_class = CheatClass.INSTALLED_IN_AVM | CheatClass.NETWORK_VISIBLE

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _UnlimitedAmmoClient, "unlimited-ammo")


# ---------------------------------------------------------------------------
# Unlimited health / god mode.
# ---------------------------------------------------------------------------

class _UnlimitedHealthClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "unlimited-health"

    def _on_packet(self, api, event) -> None:  # noqa: D401 - see base class
        super()._on_packet(api, event)
        me = self._my_state()
        if me is not None:
            # Overwrite the in-memory health value so the local game never
            # registers the player as dead.
            me["health"] = 100
            me["alive"] = True


class UnlimitedHealthCheat(Cheat):
    spec_name = "unlimited-health"
    cheat_class = CheatClass.INSTALLED_IN_AVM | CheatClass.NETWORK_VISIBLE

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _UnlimitedHealthClient, "unlimited-health")


# ---------------------------------------------------------------------------
# Teleportation: rewrites the position variable.
# ---------------------------------------------------------------------------

class _TeleportClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "teleport"

    def hook_transform_commands(self, commands: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        transformed = []
        for command in commands:
            if command.get("action") == "move":
                # Jump ten times farther than a legal move allows.
                command = dict(command)
                command["dx"] = command["dx"] * 10.0
                command["dy"] = command["dy"] * 10.0
            transformed.append(command)
        return transformed


class TeleportCheat(Cheat):
    spec_name = "teleport"
    cheat_class = CheatClass.INSTALLED_IN_AVM | CheatClass.NETWORK_VISIBLE

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _TeleportClient, "teleport")


# ---------------------------------------------------------------------------
# Speed hack.
# ---------------------------------------------------------------------------

class _SpeedHackClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "speedhack"

    def hook_move_scale(self) -> float:
        return 3.0


class SpeedHackCheat(Cheat):
    spec_name = "speedhack"
    cheat_class = CheatClass.INSTALLED_IN_AVM

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _SpeedHackClient, "speedhack")


# ---------------------------------------------------------------------------
# No-recoil / rapid fire: fires on every tick regardless of player input.
# ---------------------------------------------------------------------------

class _NoRecoilClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "no-recoil"

    def hook_transform_commands(self, commands: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        # Strip the recoil-compensation jitter the real client would add and
        # duplicate every fire command (rapid fire).
        transformed = []
        for command in commands:
            transformed.append(command)
            if command.get("action") == "fire":
                transformed.append(fire_command())
        return transformed


class NoRecoilCheat(Cheat):
    spec_name = "no-recoil"
    cheat_class = CheatClass.INSTALLED_IN_AVM | CheatClass.NETWORK_VISIBLE

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _NoRecoilClient, "no-recoil")


# ---------------------------------------------------------------------------
# Trigger bot: fires automatically whenever an opponent becomes visible.
# ---------------------------------------------------------------------------

class _TriggerBotClient(GameClientGuest):
    def hook_fingerprint(self) -> str:
        return "triggerbot"

    def _on_tick(self, api) -> None:  # noqa: D401 - see base class
        if self.hook_visible_players() and self.hook_allow_fire():
            self.hook_after_fire()
            self.shots_sent += 1
            self.pending_commands.append(fire_command())
        super()._on_tick(api)


class TriggerBotCheat(Cheat):
    spec_name = "triggerbot"
    cheat_class = CheatClass.INSTALLED_IN_AVM

    def patch_image(self, settings: ClientSettings) -> VMImage:
        return _cheat_image(settings, _TriggerBotClient, "triggerbot")


def implemented_cheats() -> List[Cheat]:
    """All cheats with a runnable implementation, in catalogue order."""
    return [
        AimbotCheat(),
        WallhackCheat(),
        UnlimitedAmmoCheat(),
        UnlimitedHealthCheat(),
        TeleportCheat(),
        SpeedHackCheat(),
        NoRecoilCheat(),
        TriggerBotCheat(),
    ]
