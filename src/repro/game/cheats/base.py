"""Cheat abstractions and classification."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.game.client import ClientSettings
from repro.vm.image import VMImage


class CheatClass(enum.Flag):
    """The two detectability classes of Section 5.4."""

    NONE = 0
    #: must be installed along with the game (module, patch, companion program)
    INSTALLED_IN_AVM = enum.auto()
    #: makes network-visible behaviour inconsistent with any correct execution
    NETWORK_VISIBLE = enum.auto()


@dataclass(frozen=True)
class CheatSpec:
    """One catalogue entry (Table 1 is an aggregation over these)."""

    name: str
    description: str
    cheat_class: CheatClass
    #: the cheat needs rendering-pipeline (OpenGL) access; the paper could only
    #: run the non-OpenGL subset in its functional check (Section 6.3)
    requires_opengl: bool = False
    #: name of the concrete implementation in this repository, when one exists
    implementation: Optional[str] = None

    @property
    def detectable(self) -> bool:
        """Every cheat in either class is detectable by an AVM audit."""
        return self.cheat_class is not CheatClass.NONE

    @property
    def detectable_in_any_implementation(self) -> bool:
        """Class-2 cheats are detectable no matter how they are implemented."""
        return bool(self.cheat_class & CheatClass.NETWORK_VISIBLE)

    @property
    def detectable_in_this_implementation_only(self) -> bool:
        """Class-1-only cheats could evade detection if re-engineered."""
        return (bool(self.cheat_class & CheatClass.INSTALLED_IN_AVM)
                and not self.detectable_in_any_implementation)


class Cheat:
    """A concrete, runnable cheat: produces a modified client image.

    Installing a cheat means the player's VM image no longer matches the
    agreed-upon reference image, which is exactly what the audit detects.
    """

    #: catalogue name this implementation corresponds to
    spec_name: str = ""
    cheat_class: CheatClass = CheatClass.INSTALLED_IN_AVM

    def patch_image(self, settings: ClientSettings) -> VMImage:
        """Build the cheater's client image for the given player settings."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__} ({self.spec_name})"
