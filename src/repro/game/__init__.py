"""A deterministic Counterstrike-like multi-player game.

The game is the paper's evaluation application.  It is built as guest
programs (:class:`~repro.game.server.GameServerGuest`,
:class:`~repro.game.client.GameClientGuest`) that run unmodified inside AVMs:
the server keeps the authoritative world state and broadcasts snapshots, the
clients render frames, consume local keyboard/mouse input and send command
packets.  The cheat catalogue (:mod:`repro.game.cheats`) reproduces the 26
cheats examined in Table 1, each classified by how it interacts with the AVM.
"""

from repro.game.state import GameMap, GameState, PlayerState, Weapon
from repro.game.engine import GameEngine
from repro.game.server import GameServerGuest
from repro.game.client import ClientSettings, GameClientGuest
from repro.game.images import make_client_image, make_server_image

__all__ = [
    "GameMap",
    "GameState",
    "PlayerState",
    "Weapon",
    "GameEngine",
    "GameServerGuest",
    "GameClientGuest",
    "ClientSettings",
    "make_client_image",
    "make_server_image",
]
