"""Deterministic player behaviour ("the human at the keyboard").

The experiments need players who move, aim and shoot.  A
:class:`ScriptedPlayer` generates keyboard/mouse command strings from a seeded
random stream and injects them into the player's AVMM as local input
(:meth:`~repro.avmm.monitor.AccountableVMM.inject_local_input`) — exactly the
surface a real player (or a re-engineered external aimbot, Section 5.4) uses.
Because the commands enter through the recorded local-input channel, audits of
honest players succeed regardless of how the player behaved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.avmm.monitor import AccountableVMM
from repro.sim.process import Process
from repro.sim.rng import RngStream
from repro.sim.scheduler import Scheduler


@dataclass
class PlayerActivityStats:
    """What the scripted player did (used to sanity-check workloads)."""

    moves: int = 0
    aims: int = 0
    shots: int = 0
    reloads: int = 0


class ScriptedPlayer:
    """Injects a deterministic stream of player commands into a client AVM."""

    def __init__(self, monitor: AccountableVMM, scheduler: Scheduler, rng: RngStream,
                 actions_per_second: float = 8.0) -> None:
        self.monitor = monitor
        self.scheduler = scheduler
        self.rng = rng
        self.actions_per_second = actions_per_second
        self.stats = PlayerActivityStats()
        self._process: Optional[Process] = None
        self._heading = rng.uniform(0.0, 2.0 * math.pi)

    def start(self, delay: float = 0.5) -> None:
        """Begin issuing commands ``delay`` seconds from now."""
        period = 1.0 / self.actions_per_second
        self._process = Process(self.scheduler, period, on_tick=self._act,
                                name=f"player:{self.monitor.identity}")
        self._process.start(delay=delay)

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()

    # -- behaviour -----------------------------------------------------------------

    def _act(self) -> None:
        roll = self.rng.random()
        if roll < 0.55:
            self._move()
        elif roll < 0.75:
            self._aim()
        elif roll < 0.95:
            self._fire()
        else:
            self._reload()

    def _move(self) -> None:
        # Mostly keep heading, occasionally turn.
        if self.rng.random() < 0.3:
            self._heading = self.rng.uniform(0.0, 2.0 * math.pi)
        dx = math.cos(self._heading)
        dy = math.sin(self._heading)
        self.monitor.inject_local_input(f"move {dx:.3f} {dy:.3f}")
        self.stats.moves += 1

    def _aim(self) -> None:
        angle = self.rng.uniform(0.0, 2.0 * math.pi)
        self.monitor.inject_local_input(f"aim {angle:.4f}", device="mouse")
        self.stats.aims += 1

    def _fire(self) -> None:
        self.monitor.inject_local_input("fire", device="mouse")
        self.stats.shots += 1

    def _reload(self) -> None:
        self.monitor.inject_local_input("reload")
        self.stats.reloads += 1
