"""The game server guest program.

The server keeps the authoritative :class:`~repro.game.state.GameState`,
applies the command packets it receives from clients in arrival order, and
broadcasts a world snapshot to every connected client every few ticks.  It is
a deterministic guest: identical packet/timer sequences produce identical
state and identical outgoing snapshots.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.game import protocol
from repro.game.engine import GameEngine
from repro.game.state import GameMap, GameState
from repro.vm.events import GuestEvent, KeyboardInput, PacketDelivery, TimerInterrupt
from repro.vm.guest import GuestDirtyKey, GuestProgram, MachineApi


class GameServerGuest(GuestProgram):
    """Authoritative Counterstrike-like server."""

    name = "cs-server"

    #: ticks between outgoing state snapshots (20 snapshots/s at 64 tick/s)
    SNAPSHOT_EVERY_TICKS = 3
    #: simulated seconds between server ticks
    TICK_INTERVAL = 1.0 / 64.0
    #: abstract cycles of game logic per tick
    CYCLES_PER_TICK = 400

    def __init__(self, game_map: Optional[GameMap] = None) -> None:
        self.state = GameState(game_map=game_map or GameMap.default_arena())
        self.engine = GameEngine(self.state)
        self.clients: List[str] = []
        self._pending_commands: List[Dict[str, Any]] = []
        self._started_at: float = 0.0
        #: state keys touched since the last snapshot (copy-on-write support)
        self._dirty: Set[str] = {"game", "clients", "pending_commands",
                                 "started_at", "respawn_at"}

    # -- guest interface -----------------------------------------------------------

    def on_start(self, api: MachineApi) -> None:
        self._started_at = api.read_clock()
        self._dirty.add("started_at")
        api.set_timer(self.TICK_INTERVAL)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        if isinstance(event, TimerInterrupt):
            self._on_tick(api)
        elif isinstance(event, PacketDelivery):
            self._on_packet(api, event)
        elif isinstance(event, KeyboardInput):
            # A dedicated server has no local input; ignore it deterministically.
            api.consume_cycles(1)

    # -- state (snapshots) ------------------------------------------------------------

    def get_state(self) -> Dict[str, Any]:
        return {
            "game": self.state.to_dict(),
            "clients": list(self.clients),
            "pending_commands": list(self._pending_commands),
            "started_at": self._started_at,
            "respawn_at": dict(self.engine._respawn_at),  # noqa: SLF001 - own engine
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        self.state = GameState.from_dict(state["game"])
        self.engine = GameEngine(self.state)
        self.engine._respawn_at = {k: int(v) for k, v  # noqa: SLF001 - own engine
                                   in state.get("respawn_at", {}).items()}
        self.clients = list(state["clients"])
        self._pending_commands = list(state["pending_commands"])
        self._started_at = float(state["started_at"])
        self._dirty.update(("game", "clients", "pending_commands",
                            "started_at", "respawn_at"))

    def snapshot_dirty_keys(self) -> Optional[Set[GuestDirtyKey]]:
        return {(key,) for key in self._dirty}

    def snapshot_mark_clean(self) -> None:
        self._dirty.clear()

    # -- internals -----------------------------------------------------------------------

    def _on_tick(self, api: MachineApi) -> None:
        api.consume_cycles(self.CYCLES_PER_TICK)
        # A tick advances the world and may move respawn bookkeeping; pending
        # commands are consumed (cleared) if there were any.
        self._dirty.update(("game", "respawn_at"))
        if self._pending_commands:
            self._dirty.add("pending_commands")
        self._apply_pending_commands()
        self.engine.advance_tick()
        if self.state.tick % self.SNAPSHOT_EVERY_TICKS == 0 and self.clients:
            now = api.read_clock()
            players = {pid: protocol.compact_player(p.to_dict())
                       for pid, p in sorted(self.state.players.items())}
            update = protocol.delta_packet(players, self.state.tick)
            for client in self.clients:
                api.send_packet(client, update)
            api.consume_cycles(50 * len(self.clients) + int(now) % 2)

    def _on_packet(self, api: MachineApi, event: PacketDelivery) -> None:
        api.consume_cycles(40)
        packet = protocol.decode_packet(event.payload)
        if packet["type"] == protocol.PACKET_JOIN:
            player = str(packet["player"])
            self.engine.join(player)
            self._dirty.update(("game", "respawn_at"))
            if event.source not in self.clients:
                self.clients.append(event.source)
                self._dirty.add("clients")
            # Confirm the join with an immediate snapshot to the new client.
            api.send_packet(event.source,
                            protocol.snapshot_packet(self.state.to_dict(),
                                                     self.state.tick))
        elif packet["type"] == protocol.PACKET_COMMANDS:
            self._pending_commands.append(packet)
            self._dirty.add("pending_commands")

    def _apply_pending_commands(self) -> None:
        for packet in self._pending_commands:
            player = str(packet["player"])
            if player not in self.state.players:
                continue
            for command in packet.get("commands", []):
                self._apply_command(player, command)
        self._pending_commands = []

    def _apply_command(self, player: str, command: Dict[str, Any]) -> None:
        action = command.get("action")
        if action == "move":
            self.engine.move(player, float(command.get("dx", 0.0)),
                             float(command.get("dy", 0.0)))
        elif action == "aim":
            self.engine.aim(player, float(command.get("angle", 0.0)))
        elif action == "fire":
            self.engine.shoot(player)
        elif action == "reload":
            self.engine.reload(player)
