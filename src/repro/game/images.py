"""Factory helpers for the agreed-upon game VM images.

Section 5.2: the players agree on a VM image (operating system + game),
disable software installation in it, and distribute the snapshot; every player
initialises their AVM with that image, and auditors replay against their own
trusted copy.  These helpers build the reference images; the cheat catalogue
builds *modified* images from them.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.game.client import ClientSettings, GameClientGuest
from repro.game.server import GameServerGuest
from repro.game.state import GameMap
from repro.vm.image import VMImage

#: disk blocks present in the official image (stand-ins for OS + game files)
_OFFICIAL_DISK = {
    0: b"windows-xp-sp3-boot-block",
    1: b"counterstrike-1.6-patch-1.1.2.5",
    2: b"game-config: sound=off voice=off",
}


def make_server_image(game_map: Optional[GameMap] = None,
                      name: str = "cs-server-official") -> VMImage:
    """The agreed-upon server image."""
    arena = game_map or GameMap.default_arena()
    return VMImage(
        name=name,
        # partial() rather than a lambda: reference images must pickle into
        # the parallel audit engine's worker processes.
        guest_factory=partial(GameServerGuest, game_map=arena),
        disk_blocks=dict(_OFFICIAL_DISK),
        allow_software_installation=False,
        metadata={"role": "server"},
    )


def make_client_image(settings: ClientSettings,
                      name: Optional[str] = None) -> VMImage:
    """The agreed-upon client image for one player."""
    return VMImage(
        name=name or f"cs-client-official-{settings.player_id}",
        guest_factory=partial(GameClientGuest, settings),
        disk_blocks=dict(_OFFICIAL_DISK),
        allow_software_installation=False,
        metadata={"role": "client", "player": settings.player_id},
    )
