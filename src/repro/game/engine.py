"""Deterministic game rules.

The engine implements the authoritative rules the server applies: movement,
hit-scan shooting with line-of-sight against walls, damage, ammunition,
respawns and visibility.  Everything is a pure function of the current state
and the command, so the same command stream always produces the same world —
the property replay relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.game.state import DEFAULT_WEAPON, GameState, MAX_HEALTH, MOVE_SPEED, PlayerState, Wall

RESPAWN_DELAY_TICKS = 32
RELOAD_AMOUNT = DEFAULT_WEAPON.magazine


@dataclass(frozen=True)
class ShotResult:
    """Outcome of one shot."""

    shooter: str
    hit: Optional[str]
    killed: bool
    blocked_by_wall: bool
    out_of_ammo: bool


class GameEngine:
    """Applies commands to a :class:`GameState`."""

    def __init__(self, state: GameState) -> None:
        self.state = state
        self._respawn_at: Dict[str, int] = {}

    # -- commands ---------------------------------------------------------------

    def join(self, player_id: str) -> PlayerState:
        """Add a player to the game."""
        return self.state.add_player(player_id)

    def move(self, player_id: str, dx: float, dy: float,
             speed_multiplier: float = 1.0) -> Tuple[float, float]:
        """Move a player by a unit direction, scaled by the move speed."""
        player = self._require_player(player_id)
        if not player.alive:
            return (player.x, player.y)
        norm = math.hypot(dx, dy)
        if norm == 0:
            return (player.x, player.y)
        step = MOVE_SPEED * speed_multiplier
        new_x = player.x + (dx / norm) * step
        new_y = player.y + (dy / norm) * step
        new_x, new_y = self.state.game_map.clamp(new_x, new_y)
        if not self._inside_wall(new_x, new_y):
            player.x, player.y = new_x, new_y
        return (player.x, player.y)

    def aim(self, player_id: str, facing: float) -> float:
        """Turn a player to face the given angle (radians)."""
        player = self._require_player(player_id)
        player.facing = facing % (2.0 * math.pi)
        return player.facing

    def shoot(self, player_id: str, *, ignore_ammo: bool = False) -> ShotResult:
        """Fire the player's weapon along its facing direction."""
        shooter = self._require_player(player_id)
        if not shooter.alive:
            return ShotResult(player_id, None, False, False, False)
        if shooter.ammo <= 0 and not ignore_ammo:
            return ShotResult(player_id, None, False, False, out_of_ammo=True)
        if not ignore_ammo:
            shooter.ammo -= 1
        shooter.shots_fired += 1

        target = self._hitscan(shooter)
        if target is None:
            return ShotResult(player_id, None, False, False, False)
        if isinstance(target, Wall):
            return ShotResult(player_id, None, False, blocked_by_wall=True,
                              out_of_ammo=False)
        target.health -= shooter.weapon.damage
        killed = False
        if target.health <= 0 and target.alive:
            target.alive = False
            target.health = 0
            target.deaths += 1
            shooter.kills += 1
            killed = True
            self._respawn_at[target.player_id] = self.state.tick + RESPAWN_DELAY_TICKS
        return ShotResult(player_id, target.player_id, killed, False, False)

    def reload(self, player_id: str) -> int:
        """Refill the player's magazine; returns the new ammo count."""
        player = self._require_player(player_id)
        player.ammo = RELOAD_AMOUNT
        return player.ammo

    def advance_tick(self) -> List[str]:
        """Advance the world one tick; returns ids of players who respawned."""
        self.state.tick += 1
        respawned = []
        for player_id, when in sorted(self._respawn_at.items()):
            if self.state.tick >= when:
                player = self.state.players[player_id]
                spawn = self.state.game_map.spawn_for(player.deaths + hash_index(player_id))
                player.x, player.y = spawn
                player.health = MAX_HEALTH
                player.ammo = RELOAD_AMOUNT
                player.alive = True
                respawned.append(player_id)
        for player_id in respawned:
            del self._respawn_at[player_id]
        return respawned

    # -- queries -------------------------------------------------------------------

    def visible_players(self, observer_id: str) -> List[str]:
        """Players the observer can see (line of sight not blocked by walls).

        The *full* state is nevertheless sent to every client — like the real
        game, the client renders only what is visible, which is exactly the
        information a wallhack exposes (Section 5.3).
        """
        observer = self._require_player(observer_id)
        visible = []
        for other in self.state.players.values():
            if other.player_id == observer_id or not other.alive:
                continue
            if not self._blocked_by_wall(observer.x, observer.y, other.x, other.y):
                visible.append(other.player_id)
        return sorted(visible)

    def nearest_opponent(self, player_id: str) -> Optional[str]:
        """The closest living opponent (used by aimbots for target acquisition)."""
        player = self._require_player(player_id)
        best: Optional[Tuple[float, str]] = None
        for other in self.state.players.values():
            if other.player_id == player_id or not other.alive:
                continue
            distance = math.hypot(other.x - player.x, other.y - player.y)
            if best is None or distance < best[0]:
                best = (distance, other.player_id)
        return best[1] if best else None

    def angle_to(self, from_id: str, to_id: str) -> float:
        """Exact facing angle from one player to another."""
        source = self._require_player(from_id)
        target = self._require_player(to_id)
        return math.atan2(target.y - source.y, target.x - source.x) % (2.0 * math.pi)

    # -- internals -------------------------------------------------------------------

    def _require_player(self, player_id: str) -> PlayerState:
        player = self.state.players.get(player_id)
        if player is None:
            raise KeyError(f"unknown player {player_id!r}")
        return player

    def _inside_wall(self, x: float, y: float) -> bool:
        return any(wall.contains(x, y) for wall in self.state.game_map.walls)

    def _blocked_by_wall(self, x0: float, y0: float, x1: float, y1: float) -> bool:
        """Sampled line-of-sight test between two points."""
        steps = 32
        for i in range(1, steps):
            t = i / steps
            x = x0 + (x1 - x0) * t
            y = y0 + (y1 - y0) * t
            if self._inside_wall(x, y):
                return True
        return False

    def _hitscan(self, shooter: PlayerState):
        """Trace the shot; returns the hit player, a wall, or ``None``."""
        hit_radius = 20.0
        step = 10.0
        distance = step
        while distance <= shooter.weapon.range:
            x = shooter.x + math.cos(shooter.facing) * distance
            y = shooter.y + math.sin(shooter.facing) * distance
            if self._inside_wall(x, y):
                return next(w for w in self.state.game_map.walls if w.contains(x, y))
            for other in self.state.players.values():
                if other.player_id == shooter.player_id or not other.alive:
                    continue
                if math.hypot(other.x - x, other.y - y) <= hit_radius:
                    return other
            distance += step
        return None


def hash_index(player_id: str) -> int:
    """Small deterministic integer derived from a player id (spawn selection)."""
    return sum(player_id.encode("utf-8")) % 8
