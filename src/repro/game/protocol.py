"""Game wire protocol.

Clients and the server exchange small JSON-encoded packets: join requests,
per-tick command packets (move / aim / fire / reload) and server state
snapshots.  Encoding is canonical (sorted keys) so identical logical packets
always have identical bytes — replay compares payload hashes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import GuestError

PACKET_JOIN = "join"
PACKET_COMMANDS = "commands"
PACKET_SNAPSHOT = "snapshot"
PACKET_DELTA = "delta"
PACKET_SCORE = "score"


def encode_packet(packet: Dict[str, Any]) -> bytes:
    """Canonical byte encoding of a packet dictionary."""
    return json.dumps(packet, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_packet(payload: bytes) -> Dict[str, Any]:
    """Decode a packet; malformed payloads raise :class:`GuestError`."""
    try:
        packet = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GuestError(f"malformed game packet: {exc}") from exc
    if not isinstance(packet, dict) or "type" not in packet:
        raise GuestError("game packet has no type field")
    return packet


def join_packet(player_id: str) -> bytes:
    """Client -> server: join the game."""
    return encode_packet({"type": PACKET_JOIN, "player": player_id})


def commands_packet(player_id: str, tick: int, commands: List[Dict[str, Any]]) -> bytes:
    """Client -> server: the commands the player issued this update."""
    return encode_packet({
        "type": PACKET_COMMANDS,
        "player": player_id,
        "tick": tick,
        "commands": commands,
    })


def snapshot_packet(state_dict: Dict[str, Any], tick: int) -> bytes:
    """Server -> client: full authoritative world snapshot (sent on join)."""
    return encode_packet({"type": PACKET_SNAPSHOT, "tick": tick, "state": state_dict})


def delta_packet(players: Dict[str, Dict[str, Any]], tick: int) -> bytes:
    """Server -> client: per-tick player update.

    Like the real game's small, frequent update packets: only the dynamic
    per-player fields, not the whole world (the map travelled in the join
    snapshot).
    """
    return encode_packet({"type": PACKET_DELTA, "tick": tick, "players": players})


def compact_player(player_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The per-player fields carried in delta packets."""
    return {
        "player_id": player_dict["player_id"],
        "x": player_dict["x"],
        "y": player_dict["y"],
        "health": player_dict["health"],
        "ammo": player_dict["ammo"],
        "alive": player_dict["alive"],
    }


def score_packet(scores: Dict[str, Dict[str, int]], tick: int) -> bytes:
    """Server -> client: end-of-round scoreboard."""
    return encode_packet({"type": PACKET_SCORE, "tick": tick, "scores": scores})


# -- client commands -------------------------------------------------------------

def move_command(dx: float, dy: float) -> Dict[str, Any]:
    return {"action": "move", "dx": round(dx, 4), "dy": round(dy, 4)}


def aim_command(angle: float) -> Dict[str, Any]:
    return {"action": "aim", "angle": round(angle, 6)}


def fire_command() -> Dict[str, Any]:
    return {"action": "fire"}


def reload_command() -> Dict[str, Any]:
    return {"action": "reload"}


def parse_keyboard_command(command: str) -> Optional[Dict[str, Any]]:
    """Translate a raw keyboard/mouse command string into a game command.

    Recognised inputs (the strings the experiment drivers inject as local
    input): ``move <dx> <dy>``, ``aim <radians>``, ``fire``, ``reload``.
    Unrecognised strings are ignored, as a real game would ignore unbound keys.
    """
    parts = command.strip().split()
    if not parts:
        return None
    action = parts[0].lower()
    try:
        if action == "move" and len(parts) == 3:
            return move_command(float(parts[1]), float(parts[2]))
        if action == "aim" and len(parts) == 2:
            return aim_command(float(parts[1]))
        if action == "fire":
            return fire_command()
        if action == "reload":
            return reload_command()
    except ValueError:
        return None
    return None
