"""The game client guest program.

The client is what each player runs inside their AVM.  It consumes local
keyboard/mouse input (delivered as :class:`~repro.vm.events.KeyboardInput`
events the AVMM records), renders frames, keeps a local view of the world from
server snapshots, and sends command packets to the server at a fixed rate —
like Counterstrike, the packets are small and frequent (Section 6.7).

The methods prefixed ``hook_`` are the surfaces the cheat implementations
override (:mod:`repro.game.cheats`): target acquisition, visibility, local
ammunition tracking, movement speed.  The unmodified client is the *reference
image*; any image with a different hook implementation produces a different
execution and therefore fails replay when audited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.game import protocol
from repro.game.state import DEFAULT_WEAPON
from repro.vm.events import GuestEvent, KeyboardInput, PacketDelivery, TimerInterrupt
from repro.vm.guest import GuestProgram, MachineApi


@dataclass(frozen=True)
class ClientSettings:
    """Static configuration of a game client (part of the image identity)."""

    player_id: str
    server: str
    #: simulated seconds between client ticks
    tick_interval: float = 1.0 / 64.0
    #: send a command packet every this many ticks (~26 packets/s at 64 Hz)
    update_every_ticks: int = 2
    #: frames rendered per tick when the frame-rate cap is off
    frames_per_tick: int = 2
    #: frame-rate cap; ``None`` renders as fast as possible (the paper's
    #: measurement configuration), a number reproduces the busy-wait behaviour
    #: of Section 6.5
    frame_cap_fps: Optional[float] = None
    #: abstract cycles burned per busy-wait loop iteration (small enough that
    #: consecutive clock reads fall within the optimiser's 5 us window)
    busy_wait_cycles: int = 200


class GameClientGuest(GuestProgram):
    """Counterstrike-like game client."""

    name = "cs-client"

    def __init__(self, settings: ClientSettings) -> None:
        self.settings = settings
        self.tick = 0
        self.joined = False
        self.local_ammo = DEFAULT_WEAPON.magazine
        self.last_snapshot: Dict[str, Any] = {}
        self.last_snapshot_tick = -1
        self.pending_commands: List[Dict[str, Any]] = []
        self.frames_rendered = 0
        self.shots_sent = 0
        self.last_frame_time = 0.0

    # -- guest interface --------------------------------------------------------------

    def on_start(self, api: MachineApi) -> None:
        self.last_frame_time = api.read_clock()
        api.send_packet(self.settings.server, protocol.join_packet(self.settings.player_id))
        api.set_timer(self.settings.tick_interval)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        if isinstance(event, TimerInterrupt):
            self._on_tick(api)
        elif isinstance(event, KeyboardInput):
            self._on_keyboard(api, event)
        elif isinstance(event, PacketDelivery):
            self._on_packet(api, event)

    def config_fingerprint(self) -> Dict[str, Any]:
        return {
            "player_id": self.settings.player_id,
            "server": self.settings.server,
            "tick_interval": self.settings.tick_interval,
            "update_every_ticks": self.settings.update_every_ticks,
            "frames_per_tick": self.settings.frames_per_tick,
            "frame_cap_fps": self.settings.frame_cap_fps,
            "hooks": self.hook_fingerprint(),
        }

    # -- state (snapshots) ---------------------------------------------------------------

    def get_state(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "joined": self.joined,
            "local_ammo": self.local_ammo,
            "last_snapshot": self.last_snapshot,
            "last_snapshot_tick": self.last_snapshot_tick,
            "pending_commands": list(self.pending_commands),
            "frames_rendered": self.frames_rendered,
            "shots_sent": self.shots_sent,
            "last_frame_time": self.last_frame_time,
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        self.tick = int(state["tick"])
        self.joined = bool(state["joined"])
        self.local_ammo = int(state["local_ammo"])
        self.last_snapshot = dict(state["last_snapshot"])
        self.last_snapshot_tick = int(state["last_snapshot_tick"])
        self.pending_commands = list(state["pending_commands"])
        self.frames_rendered = int(state["frames_rendered"])
        self.shots_sent = int(state["shots_sent"])
        self.last_frame_time = float(state["last_frame_time"])

    # -- cheat hook surface ----------------------------------------------------------------

    def hook_fingerprint(self) -> str:
        """Identifies the behaviour-relevant code; cheats change this implicitly."""
        return "reference"

    def hook_transform_commands(self, commands: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Last chance to rewrite the command list before it is sent (aimbots)."""
        return commands

    def hook_visible_players(self) -> List[str]:
        """Players this client renders (wallhacks override this to see everyone)."""
        me = self._my_state()
        if me is None:
            return []
        players = self.last_snapshot.get("players", {})
        walls = self.last_snapshot.get("game_map", {}).get("walls", [])
        visible = []
        for pid, other in players.items():
            if pid == self.settings.player_id or not other.get("alive", True):
                continue
            if not _line_blocked(me["x"], me["y"], other["x"], other["y"], walls):
                visible.append(pid)
        return sorted(visible)

    def hook_allow_fire(self) -> bool:
        """Whether firing is currently allowed (local ammunition check)."""
        return self.local_ammo > 0

    def hook_after_fire(self) -> None:
        """Local bookkeeping after a fire command (ammo decrement)."""
        self.local_ammo -= 1

    def hook_move_scale(self) -> float:
        """Multiplier applied to movement commands (speed hacks override)."""
        return 1.0

    # -- internals -------------------------------------------------------------------------

    def _my_state(self) -> Optional[Dict[str, Any]]:
        return self.last_snapshot.get("players", {}).get(self.settings.player_id)

    def _on_keyboard(self, api: MachineApi, event: KeyboardInput) -> None:
        api.consume_cycles(10)
        command = protocol.parse_keyboard_command(event.command)
        if command is None:
            return
        if command["action"] == "fire":
            if not self.hook_allow_fire():
                return  # out of ammo: a correct client never sends the shot
            self.hook_after_fire()
            self.shots_sent += 1
        elif command["action"] == "reload":
            self.local_ammo = DEFAULT_WEAPON.magazine
        elif command["action"] == "move":
            scale = self.hook_move_scale()
            command = protocol.move_command(command["dx"] * scale, command["dy"] * scale)
        self.pending_commands.append(command)

    def _on_packet(self, api: MachineApi, event: PacketDelivery) -> None:
        api.consume_cycles(60)
        packet = protocol.decode_packet(event.payload)
        if packet["type"] == protocol.PACKET_SNAPSHOT:
            self.last_snapshot = packet["state"]
            self.last_snapshot_tick = int(packet["tick"])
            self.joined = True
        elif packet["type"] == protocol.PACKET_DELTA:
            players = self.last_snapshot.setdefault("players", {})
            for pid, update in packet["players"].items():
                players[pid] = {**players.get(pid, {}), **update}
            self.last_snapshot_tick = int(packet["tick"])
        if packet["type"] in (protocol.PACKET_SNAPSHOT, protocol.PACKET_DELTA):
            me = self._my_state()
            if me is not None:
                # The server is authoritative for ammunition after respawns.
                self.local_ammo = max(self.local_ammo, 0)
                if not me.get("alive", True):
                    self.local_ammo = DEFAULT_WEAPON.magazine

    def _on_tick(self, api: MachineApi) -> None:
        self.tick += 1
        api.consume_cycles(150)
        if self.tick % self.settings.update_every_ticks == 0 and self.pending_commands:
            commands = self.hook_transform_commands(self.pending_commands)
            packet = protocol.commands_packet(self.settings.player_id, self.tick, commands)
            api.send_packet(self.settings.server, packet)
            self.pending_commands = []
        self._render(api)

    def _render(self, api: MachineApi) -> None:
        complexity = 10 + 5 * len(self.hook_visible_players())
        if self.settings.frame_cap_fps is None:
            # Uncapped: render as many frames as the engine is configured for;
            # like the real game, every frame samples the clock for animation
            # and physics interpolation.
            for _ in range(self.settings.frames_per_tick):
                self.last_frame_time = api.read_clock()
                api.render_frame(complexity)
                self.frames_rendered += 1
            return
        # Frame-rate cap: render one frame, then busy-wait on the clock until
        # the inter-frame interval has elapsed (Section 6.5).  Every loop
        # iteration is a clock read the AVMM must log.
        frame_interval = 1.0 / self.settings.frame_cap_fps
        api.render_frame(complexity)
        self.frames_rendered += 1
        target = self.last_frame_time + frame_interval
        now = api.read_clock()
        iterations = 0
        while now < target and iterations < 100_000:
            api.consume_cycles(self.settings.busy_wait_cycles)
            now = api.read_clock()
            iterations += 1
        self.last_frame_time = now


def _line_blocked(x0: float, y0: float, x1: float, y1: float,
                  walls: List[Dict[str, float]]) -> bool:
    """Sampled line-of-sight test against wall rectangles (client-side copy)."""
    steps = 16
    for i in range(1, steps):
        t = i / steps
        x = x0 + (x1 - x0) * t
        y = y0 + (y1 - y0) * t
        for wall in walls:
            if wall["x0"] <= x <= wall["x1"] and wall["y0"] <= y <= wall["y1"]:
                return True
    return False
