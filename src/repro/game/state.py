"""Game state: players, weapons, the map and the world.

Everything here is plain, serialisable and deterministic — the state is part
of what gets snapshotted and replayed, so no randomness or wall-clock access
is allowed; all decisions are functions of the state and the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class Weapon:
    """A hit-scan weapon."""

    name: str = "rifle"
    damage: int = 25
    magazine: int = 30
    range: float = 600.0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "damage": self.damage,
                "magazine": self.magazine, "range": self.range}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Weapon":
        return Weapon(name=str(data["name"]), damage=int(data["damage"]),
                      magazine=int(data["magazine"]), range=float(data["range"]))


DEFAULT_WEAPON = Weapon()
MAX_HEALTH = 100
MOVE_SPEED = 5.0  # distance units per move command


@dataclass
class PlayerState:
    """One player's authoritative state."""

    player_id: str
    x: float = 0.0
    y: float = 0.0
    facing: float = 0.0            # radians
    health: int = MAX_HEALTH
    ammo: int = DEFAULT_WEAPON.magazine
    alive: bool = True
    kills: int = 0
    deaths: int = 0
    shots_fired: int = 0
    weapon: Weapon = field(default_factory=lambda: DEFAULT_WEAPON)

    def to_dict(self) -> Dict[str, Any]:
        # Floats are stored verbatim: JSON round-trips them exactly, and any
        # rounding here would make snapshots lossy and break replay-from-snapshot.
        return {
            "player_id": self.player_id,
            "x": self.x,
            "y": self.y,
            "facing": self.facing,
            "health": self.health,
            "ammo": self.ammo,
            "alive": self.alive,
            "kills": self.kills,
            "deaths": self.deaths,
            "shots_fired": self.shots_fired,
            "weapon": self.weapon.to_dict(),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "PlayerState":
        return PlayerState(
            player_id=str(data["player_id"]),
            x=float(data["x"]), y=float(data["y"]), facing=float(data["facing"]),
            health=int(data["health"]), ammo=int(data["ammo"]),
            alive=bool(data["alive"]), kills=int(data["kills"]),
            deaths=int(data["deaths"]), shots_fired=int(data["shots_fired"]),
            weapon=Weapon.from_dict(data["weapon"]),
        )


@dataclass(frozen=True)
class Wall:
    """An axis-aligned opaque rectangle (blocks shots and sight)."""

    x0: float
    y0: float
    x1: float
    y1: float

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def to_dict(self) -> Dict[str, float]:
        return {"x0": self.x0, "y0": self.y0, "x1": self.x1, "y1": self.y1}

    @staticmethod
    def from_dict(data: Dict[str, float]) -> "Wall":
        return Wall(x0=float(data["x0"]), y0=float(data["y0"]),
                    x1=float(data["x1"]), y1=float(data["y1"]))


@dataclass(frozen=True)
class GameMap:
    """The arena: dimensions, walls and spawn points."""

    width: float = 1000.0
    height: float = 1000.0
    walls: Tuple[Wall, ...] = ()
    spawn_points: Tuple[Tuple[float, float], ...] = (
        (100.0, 100.0), (900.0, 100.0), (100.0, 900.0), (900.0, 900.0),
        (500.0, 500.0), (500.0, 100.0), (100.0, 500.0), (900.0, 500.0),
    )

    def clamp(self, x: float, y: float) -> Tuple[float, float]:
        """Keep a position inside the arena."""
        return (min(max(x, 0.0), self.width), min(max(y, 0.0), self.height))

    def spawn_for(self, index: int) -> Tuple[float, float]:
        return self.spawn_points[index % len(self.spawn_points)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "height": self.height,
            "walls": [w.to_dict() for w in self.walls],
            "spawn_points": [list(p) for p in self.spawn_points],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "GameMap":
        return GameMap(
            width=float(data["width"]), height=float(data["height"]),
            walls=tuple(Wall.from_dict(w) for w in data["walls"]),
            spawn_points=tuple((float(p[0]), float(p[1])) for p in data["spawn_points"]),
        )

    @staticmethod
    def default_arena() -> "GameMap":
        """The standard map used by the experiments: a few cover walls."""
        return GameMap(walls=(
            Wall(300.0, 300.0, 400.0, 700.0),
            Wall(600.0, 100.0, 700.0, 400.0),
            Wall(550.0, 600.0, 850.0, 650.0),
        ))


@dataclass
class GameState:
    """Authoritative world state kept by the server."""

    game_map: GameMap = field(default_factory=GameMap.default_arena)
    players: Dict[str, PlayerState] = field(default_factory=dict)
    tick: int = 0
    round_number: int = 1

    def add_player(self, player_id: str) -> PlayerState:
        """Add a player at the next spawn point (idempotent)."""
        if player_id in self.players:
            return self.players[player_id]
        spawn = self.game_map.spawn_for(len(self.players))
        player = PlayerState(player_id=player_id, x=spawn[0], y=spawn[1])
        self.players[player_id] = player
        return player

    def living_players(self) -> List[PlayerState]:
        return [p for p in self.players.values() if p.alive]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "game_map": self.game_map.to_dict(),
            "players": {pid: p.to_dict() for pid, p in sorted(self.players.items())},
            "tick": self.tick,
            "round_number": self.round_number,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "GameState":
        state = GameState(
            game_map=GameMap.from_dict(data["game_map"]),
            tick=int(data["tick"]),
            round_number=int(data["round_number"]),
        )
        state.players = {pid: PlayerState.from_dict(p)
                         for pid, p in data["players"].items()}
        return state
