"""Durable log storage (the archive behind the audit-ingest pipeline).

The paper's machines keep their tamper-evident logs until a mutually-agreed
checkpoint lets them truncate (Section 4.2); at datacenter scale that means
a durable, indexed, garbage-collected archive rather than a log in RAM.

* :mod:`repro.store.manifest` — the atomic on-disk index (segment ranges,
  chain hashes, authenticator batches, snapshots, retention checkpoints).
* :mod:`repro.store.archive` — :class:`LogArchive`: append-only compressed
  segment files rolled at snapshot boundaries, chain-verified ingest,
  crash recovery, binary-search range lookup and checkpoint GC.
"""

from repro.store.archive import (
    ArchiveSnapshotStore,
    ArchiveStats,
    LogArchive,
    RecoveryReport,
)
from repro.store.manifest import (
    AuthBatchRecord,
    Manifest,
    SegmentRecord,
    SnapshotRecord,
)

__all__ = [
    "ArchiveSnapshotStore",
    "ArchiveStats",
    "AuthBatchRecord",
    "LogArchive",
    "Manifest",
    "RecoveryReport",
    "SegmentRecord",
    "SnapshotRecord",
]
