"""The archive manifest: the durable index of everything the archive holds.

The manifest is the single source of truth for the on-disk archive.  Data
files (compressed segments, authenticator batches, snapshots) are written
first, to temporary names, and renamed into place; only then is the manifest
rewritten — atomically, via a temporary file and :func:`os.replace` — to
reference them.  A crash between the two steps therefore leaves at worst an
*orphan* data file that no manifest references, and recovery simply discards
it: the archive never observes a manifest entry whose data is missing unless
the disk itself was corrupted.

Per-segment records carry the sequence range and the chain hashes at both
ends, so recovery can prove that a machine's archived segments tile into one
unbroken hash chain *without decompressing a single data file* — and range
lookups can binary-search the index instead of scanning files.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ArchiveIntegrityError
from repro.log.codec import require_format_version
from repro.log.hashchain import ChainCheckpoint

MANIFEST_FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class SegmentRecord:
    """Index entry for one archived log segment."""

    machine: str
    file_name: str
    first_sequence: int
    last_sequence: int
    start_hash: bytes
    end_hash: bytes
    entry_count: int
    raw_bytes: int
    stored_bytes: int
    #: id of the snapshot whose SNAPSHOT entry seals this segment, or None
    #: for the tail segment shipped after the last snapshot
    sealed_by_snapshot: Optional[int] = None
    #: wire format the segment file is stored in (a codec registry version)
    format_version: int = 1
    #: the segment's v1-compressed size — the audit cost model's canonical
    #: compressed download size.  Equals ``stored_bytes`` for v1 files;
    #: computed at append time for other formats (0 = unknown, legacy record)
    wire_v1_bytes: int = 0

    def covers(self, sequence: int) -> bool:
        return self.first_sequence <= sequence <= self.last_sequence

    def end_checkpoint(self) -> ChainCheckpoint:
        return ChainCheckpoint(sequence=self.last_sequence, chain_hash=self.end_hash)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "file": self.file_name,
            "first_sequence": self.first_sequence,
            "last_sequence": self.last_sequence,
            "start_hash": self.start_hash.hex(),
            "end_hash": self.end_hash.hex(),
            "entry_count": self.entry_count,
            "raw_bytes": self.raw_bytes,
            "stored_bytes": self.stored_bytes,
            "sealed_by_snapshot": self.sealed_by_snapshot,
            "format_version": self.format_version,
            "wire_v1_bytes": self.wire_v1_bytes,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SegmentRecord":
        # Routed through the codec registry (outside the try: an unknown
        # wire format is a LogFormatError, not a malformed record).
        format_version = require_format_version(
            data.get("format_version", 1) if isinstance(data, dict) else 1,
            what="archived segment")
        try:
            sealed = data.get("sealed_by_snapshot")
            return SegmentRecord(
                machine=str(data["machine"]),
                file_name=str(data["file"]),
                first_sequence=int(data["first_sequence"]),
                last_sequence=int(data["last_sequence"]),
                start_hash=bytes.fromhex(data["start_hash"]),
                end_hash=bytes.fromhex(data["end_hash"]),
                entry_count=int(data["entry_count"]),
                raw_bytes=int(data["raw_bytes"]),
                stored_bytes=int(data["stored_bytes"]),
                sealed_by_snapshot=int(sealed) if sealed is not None else None,
                format_version=format_version,
                wire_v1_bytes=int(data.get("wire_v1_bytes", 0)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ArchiveIntegrityError(f"malformed segment record: {exc}") from exc


@dataclass(frozen=True)
class AuthBatchRecord:
    """Index entry for one archived batch of authenticators.

    Batches arrive from the fleet in shipment order and are replayed in the
    same order, so the concatenation of the retained batches reproduces the
    collector's authenticator list exactly.
    """

    machine: str
    file_name: str
    count: int
    min_sequence: int
    max_sequence: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "file": self.file_name,
            "count": self.count,
            "min_sequence": self.min_sequence,
            "max_sequence": self.max_sequence,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "AuthBatchRecord":
        try:
            return AuthBatchRecord(
                machine=str(data["machine"]),
                file_name=str(data["file"]),
                count=int(data["count"]),
                min_sequence=int(data["min_sequence"]),
                max_sequence=int(data["max_sequence"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ArchiveIntegrityError(f"malformed auth batch record: {exc}") from exc


@dataclass(frozen=True)
class SnapshotRecord:
    """Index entry for one archived snapshot (replay start for a chunk).

    Snapshots are archived the way Section 4.4 ships them: periodic
    *keyframes* carry the full serialised state, everything in between is a
    *delta* — the pages changed since ``base_snapshot_id`` — and the archive
    re-materialises full state on demand by replaying the chain.
    """

    machine: str
    snapshot_id: int
    file_name: str
    state_root: bytes
    #: download cost an auditor pays to start replay here, as reported by the
    #: source machine's snapshot manager — stored verbatim so archive-backed
    #: audits charge exactly what in-memory audits charge
    transfer_bytes: int
    execution: Dict[str, int] = field(default_factory=dict)
    #: "keyframe" (full state) or "delta" (changed pages over the base)
    kind: str = "keyframe"
    #: the snapshot a delta applies on top of (``None`` for keyframes)
    base_snapshot_id: Optional[int] = None
    #: page geometry of the source manager (0 = unknown, legacy record)
    page_count: int = 0
    page_size: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "snapshot_id": self.snapshot_id,
            "file": self.file_name,
            "state_root": self.state_root.hex(),
            "transfer_bytes": self.transfer_bytes,
            "execution": self.execution,
            "kind": self.kind,
            "base_snapshot_id": self.base_snapshot_id,
            "page_count": self.page_count,
            "page_size": self.page_size,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SnapshotRecord":
        try:
            kind = str(data.get("kind", "keyframe"))
            if kind not in ("keyframe", "delta"):
                raise ValueError(f"unknown snapshot kind {kind!r}")
            base = data.get("base_snapshot_id")
            return SnapshotRecord(
                machine=str(data["machine"]),
                snapshot_id=int(data["snapshot_id"]),
                file_name=str(data["file"]),
                state_root=bytes.fromhex(data["state_root"]),
                transfer_bytes=int(data["transfer_bytes"]),
                execution=dict(data.get("execution", {})),
                kind=kind,
                base_snapshot_id=int(base) if base is not None else None,
                page_count=int(data.get("page_count", 0)),
                page_size=int(data.get("page_size", 0)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ArchiveIntegrityError(f"malformed snapshot record: {exc}") from exc


@dataclass
class Manifest:
    """Everything the archive knows, in manifest (JSON) form."""

    segments: List[SegmentRecord] = field(default_factory=list)
    auth_batches: List[AuthBatchRecord] = field(default_factory=list)
    snapshots: List[SnapshotRecord] = field(default_factory=list)
    #: per machine, the checkpoint the log was truncated to (Section 4.2);
    #: entries at or below this sequence have been garbage-collected
    retained: Dict[str, ChainCheckpoint] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "kind": "avm_log_archive",
            "segments": [record.to_dict() for record in self.segments],
            "auth_batches": [record.to_dict() for record in self.auth_batches],
            "snapshots": [record.to_dict() for record in self.snapshots],
            "retained": {machine: {"sequence": checkpoint.sequence,
                                   "chain_hash": checkpoint.chain_hash.hex()}
                         for machine, checkpoint in sorted(self.retained.items())},
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Manifest":
        if not isinstance(data, dict) or data.get("kind") != "avm_log_archive":
            kind = data.get("kind") if isinstance(data, dict) else None
            raise ArchiveIntegrityError(f"not an archive manifest: kind={kind!r}")
        # The manifest has its own version space (it indexes archives, it is
        # not a wire codec), but the check routes through the codec layer's
        # single helper so every unsupported-version failure in the repo is
        # one well-typed LogFormatError.
        require_format_version(data.get("format_version"), what="manifest",
                               supported=(MANIFEST_FORMAT_VERSION,))
        try:
            retained = {
                str(machine): ChainCheckpoint(
                    sequence=int(checkpoint["sequence"]),
                    chain_hash=bytes.fromhex(checkpoint["chain_hash"]))
                for machine, checkpoint in dict(data.get("retained", {})).items()}
            return Manifest(
                segments=[SegmentRecord.from_dict(record)
                          for record in data.get("segments", [])],
                auth_batches=[AuthBatchRecord.from_dict(record)
                              for record in data.get("auth_batches", [])],
                snapshots=[SnapshotRecord.from_dict(record)
                           for record in data.get("snapshots", [])],
                retained=retained,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ArchiveIntegrityError(f"malformed manifest: {exc}") from exc

    # -- persistence ---------------------------------------------------------

    def write(self, root: Union[str, Path]) -> Path:
        """Atomically (re)write the manifest under ``root``."""
        root = Path(root)
        path = root / MANIFEST_NAME
        data = json.dumps(self.to_dict(), sort_keys=True, indent=1).encode("utf-8")
        return atomic_write(path, data)

    @staticmethod
    def load(root: Union[str, Path]) -> "Manifest":
        """Load the manifest under ``root`` (empty archive if none exists)."""
        path = Path(root) / MANIFEST_NAME
        if not path.exists():
            return Manifest()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArchiveIntegrityError(f"corrupt manifest at {path}: {exc}") from exc
        return Manifest.from_dict(data)


def atomic_write(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` via a temporary file + rename.

    The rename is atomic on POSIX, so readers (and crash recovery) only ever
    see the old file or the complete new one — never a torn write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path
