"""The durable, crash-recoverable log archive.

Section 4.2's accountability story only works if logs outlive the execution
that produced them: machines keep tamper-evident logs, truncate them at
mutually-agreed checkpoints, and hand segments to auditors on demand.
:class:`LogArchive` is that durable home.  It persists each machine's log as
append-only *segment files* rolled at snapshot boundaries (the same
boundaries Section 6.12 uses for spot-check chunks), serialised by a
versioned wire codec (:mod:`repro.log.codec` — JSON+bzip2 ``v1`` by default,
the packed binary ``v2`` opt-in per archive), and indexed by a manifest
(:mod:`repro.store.manifest`) that records every segment's sequence range,
wire format and the chain hashes at both ends.

Properties the archive guarantees:

* **Append-only with chain continuity.**  A segment is only accepted if it
  extends the machine's archived head by an unbroken hash chain — the
  archive re-verifies every entry's chain hash at ingest, so a tampered
  shipment is rejected at the door, not discovered at audit time.
* **Crash recovery.**  Data files are written via temp-file + rename before
  the manifest references them, and the manifest itself is replaced
  atomically.  Opening an archive replays the manifest, proves each
  machine's segments tile into one unbroken chain (start/end hashes and
  dense sequence ranges — no decompression needed), and discards orphan
  files left by a crash between the two write steps.
* **Indexed range lookup.**  The per-machine index is kept sorted, so the
  segment covering a sequence number is a binary search away regardless of
  how many segment files the machine has accumulated.
* **Checkpoint retention (GC).**  :meth:`truncate` mirrors the paper's log
  truncation: everything up to a mutually-agreed checkpoint is deleted, the
  checkpoint (sequence + chain hash) is recorded as the new trust anchor,
  and the snapshot at the boundary is retained so audits can still replay
  the surviving suffix.
"""

from __future__ import annotations

import bz2
import json
import re
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import (
    ArchiveIntegrityError,
    HashChainError,
    LogFormatError,
    RetentionError,
    SnapshotError,
    StoreError,
)
from repro.log.authenticator import Authenticator
from repro.log.codec import (
    SegmentStreamDecoder,
    get_codec,
    require_format_version,
    segment_suffix,
)
from repro.log.entries import LogEntry
from repro.log.hashchain import ChainCheckpoint, verify_chain_incremental
from repro.log.segments import LogSegment, concatenate_segments
from repro.log.storage import authenticators_from_bytes, authenticators_to_bytes
from repro.store.manifest import (
    MANIFEST_NAME,
    AuthBatchRecord,
    Manifest,
    SegmentRecord,
    SnapshotRecord,
    atomic_write,
)
from repro.vm.execution import ExecutionTimestamp
from repro.vm.snapshot import (
    PAGE_SIZE,
    IncrementalSnapshot,
    Snapshot,
    apply_delta,
    paginate,
    serialize_state,
)

_AUTH_SUFFIX = ".jsonl.bz2"
_SNAPSHOT_SUFFIX = ".json"
_AUTH_NAME_RE = re.compile(r"^auths-(\d+)\.jsonl\.bz2$")
#: file names the archive itself writes — the orphan sweep only ever touches
#: these, so opening an archive in the wrong directory cannot destroy
#: unrelated data.  Covers every codec's segment suffix (.avmlogz = v1
#: JSON+bz2, .avmlogb = v2 binary, .avmlogt = v3 typed).
_OWNED_NAME_RE = re.compile(
    r"^(segment-\d+-\d+\.(avmlogz|avmlogb|avmlogt)|auths-\d+\.jsonl\.bz2"
    r"|snapshot-\d+(-kf)?\.json)$")


@dataclass
class RecoveryReport:
    """What opening an archive found (and cleaned up)."""

    machines: int = 0
    segments: int = 0
    entries: int = 0
    chains_verified: int = 0
    #: data files present on disk but unreferenced by the manifest — the
    #: residue of a crash between data write and manifest update
    orphan_files: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.orphan_files


@dataclass
class ArchiveStats:
    """Aggregate archive contents (drives the ingest benchmark's table)."""

    machines: int = 0
    segment_files: int = 0
    entries: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    auth_batches: int = 0
    authenticators: int = 0
    snapshots: int = 0

    @property
    def compression_ratio(self) -> float:
        """Stored size over raw size (smaller is better)."""
        if self.raw_bytes == 0:
            return 1.0
        return self.stored_bytes / self.raw_bytes


class LogArchive:
    """A durable archive of tamper-evident logs for a fleet of machines."""

    def __init__(self, root: Union[str, Path], deep_verify: bool = False,
                 format_version: int = 1, obs=None) -> None:
        """Open (or create) the archive rooted at ``root``.

        Opening replays the manifest: per machine, the segment records must
        tile into one unbroken chain starting at the retention checkpoint
        (or genesis).  ``deep_verify`` additionally decodes every segment
        file and re-verifies its hash chain entry by entry.

        ``format_version`` selects the wire codec *new* segments are written
        with (see :mod:`repro.log.codec`); reading always follows each
        record's own ``format_version``, so one archive can hold a mix and
        old archives open regardless of the write-side setting.

        ``obs`` (an :class:`repro.obs.Observability`) meters disk traffic —
        segment read/write bytes and codec versions; the default is the
        shared no-op bundle.
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.format_version = require_format_version(format_version,
                                                     what="log codec")
        self.set_observability(obs)
        self._manifest = Manifest.load(self.root)
        self._index: Dict[str, List[SegmentRecord]] = {}
        self._auth_index: Dict[str, List[AuthBatchRecord]] = {}
        self._snapshot_index: Dict[str, Dict[int, SnapshotRecord]] = {}
        self._auth_counters: Dict[str, int] = {}
        # Stat-validated parse caches for immutable archive files: repeated
        # audits through one archive re-read the same authenticator batches,
        # keyframes and deltas every run otherwise.  Keyframe pages are the
        # full serialised state, so that cache is LRU-bounded; the others
        # hold small parsed records.
        self._auth_batch_cache: Dict[
            str, Tuple[Tuple[int, int], List[Authenticator]]] = {}
        self._keyframe_page_cache: Dict[
            str, Tuple[Tuple[int, int], Tuple[bytes, ...]]] = {}
        self._delta_cache: Dict[
            str, Tuple[Tuple[int, int], IncrementalSnapshot]] = {}
        self._snapshot_pages_cache: Dict[
            Tuple[str, int],
            Tuple[Tuple[Tuple[str, Tuple[int, int]], ...],
                  Tuple[bytes, ...]]] = {}
        self.recovery = self._recover(deep_verify=deep_verify)

    def set_observability(self, obs) -> None:
        """(Re)bind this archive's telemetry instruments to ``obs``.

        Exists so a service constructed around an unobserved archive can
        adopt it into its own metrics registry (the instruments are bound
        once here, not looked up per segment).
        """
        from repro.obs import ensure_obs
        self.obs = ensure_obs(obs)
        metrics = self.obs.metrics
        self._m_segments_written = metrics.counter("archive.segments_written_total")
        self._m_raw_bytes_written = metrics.counter("archive.raw_bytes_written_total")
        self._m_bytes_written = metrics.counter("archive.bytes_written_total")
        self._m_segments_read = metrics.counter("archive.segments_read_total")
        self._m_bytes_read = metrics.counter("archive.bytes_read_total")
        self._m_snapshots_written = metrics.counter("archive.snapshots_written_total")

    # -- recovery ------------------------------------------------------------

    def _recover(self, deep_verify: bool) -> RecoveryReport:
        report = RecoveryReport()
        for record in self._manifest.segments:
            self._index.setdefault(record.machine, []).append(record)
        for batch in self._manifest.auth_batches:
            self._auth_index.setdefault(batch.machine, []).append(batch)
            match = _AUTH_NAME_RE.match(Path(batch.file_name).name)
            if match:
                counter = self._auth_counters.get(batch.machine, 0)
                self._auth_counters[batch.machine] = max(counter, int(match.group(1)))
        for snap in self._manifest.snapshots:
            self._snapshot_index.setdefault(snap.machine, {})[snap.snapshot_id] = snap

        referenced = {record.file_name for record in self._manifest.segments}
        referenced.update(batch.file_name for batch in self._manifest.auth_batches)
        referenced.update(snap.file_name for snap in self._manifest.snapshots)
        for path in sorted(self.root.rglob("*")):
            if not path.is_file() or path.name == MANIFEST_NAME:
                continue
            relative = path.relative_to(self.root).as_posix()
            if relative in referenced:
                if not path.stat().st_size:
                    raise ArchiveIntegrityError(
                        f"archived file {relative} is empty on disk")
                continue
            if not (_OWNED_NAME_RE.match(path.name)
                    or path.name.endswith(".tmp")):
                continue  # not ours — never delete foreign files
            # Orphan: written but never committed to the manifest (or a
            # leftover .tmp from a torn atomic write).  Recovery discards it —
            # the manifest never referenced it, so the archive behaves as if
            # the shipment had never arrived and ingest can accept it afresh.
            path.unlink()
            report.orphan_files.append(relative)

        for machine, records in self._index.items():
            records.sort(key=lambda record: record.first_sequence)
            expected = self.start_checkpoint(machine)
            for record in records:
                if not (self.root / record.file_name).exists():
                    raise ArchiveIntegrityError(
                        f"manifest references missing file {record.file_name}")
                if record.first_sequence != expected.sequence + 1 \
                        or record.start_hash != expected.chain_hash:
                    raise ArchiveIntegrityError(
                        f"archive for {machine!r} is not contiguous at "
                        f"sequence {record.first_sequence}")
                if record.entry_count != \
                        record.last_sequence - record.first_sequence + 1:
                    raise ArchiveIntegrityError(
                        f"segment {record.file_name} advertises "
                        f"{record.entry_count} entries for range "
                        f"[{record.first_sequence}, {record.last_sequence}]")
                if deep_verify:
                    segment = self.read_segment(record)
                    try:
                        verify_chain_incremental(segment.entries, expected)
                    except HashChainError as exc:
                        raise ArchiveIntegrityError(
                            f"segment {record.file_name} fails hash-chain "
                            f"verification: {exc}") from exc
                expected = record.end_checkpoint()
                report.segments += 1
                report.entries += record.entry_count
            report.chains_verified += 1
        for batch in self._manifest.auth_batches:
            if not (self.root / batch.file_name).exists():
                raise ArchiveIntegrityError(
                    f"manifest references missing file {batch.file_name}")
        for machine_snaps in self._snapshot_index.values():
            for snap in machine_snaps.values():
                if not (self.root / snap.file_name).exists():
                    raise ArchiveIntegrityError(
                        f"manifest references missing file {snap.file_name}")
        report.machines = len(self._index)
        return report

    # -- basic queries -------------------------------------------------------

    def machines(self) -> List[str]:
        """All machines with archived data, sorted."""
        names = set(self._index) | set(self._auth_index) | set(self._snapshot_index)
        return sorted(names)

    def segment_records(self, machine: str) -> List[SegmentRecord]:
        """This machine's segment index, oldest first (a copy)."""
        return list(self._index.get(machine, []))

    def entry_count(self, machine: str) -> int:
        """Number of archived (retained) log entries for ``machine``."""
        return sum(record.entry_count for record in self._index.get(machine, []))

    def start_checkpoint(self, machine: str) -> ChainCheckpoint:
        """Chain state just before the first retained entry (GC trust anchor)."""
        retained = self._manifest.retained.get(machine)
        return retained if retained is not None else ChainCheckpoint.genesis()

    def head_checkpoint(self, machine: str) -> ChainCheckpoint:
        """Chain state after the last archived entry."""
        records = self._index.get(machine)
        if not records:
            return self.start_checkpoint(machine)
        return records[-1].end_checkpoint()

    def retained_checkpoint(self, machine: str) -> Optional[ChainCheckpoint]:
        """The truncation checkpoint, or ``None`` if never truncated."""
        return self._manifest.retained.get(machine)

    def stats(self) -> ArchiveStats:
        stats = ArchiveStats(machines=len(self.machines()))
        for records in self._index.values():
            for record in records:
                stats.segment_files += 1
                stats.entries += record.entry_count
                stats.raw_bytes += record.raw_bytes
                stats.stored_bytes += record.stored_bytes
        for batches in self._auth_index.values():
            stats.auth_batches += len(batches)
            stats.authenticators += sum(batch.count for batch in batches)
        stats.snapshots = sum(len(snaps) for snaps in self._snapshot_index.values())
        return stats

    # -- writing -------------------------------------------------------------

    def append_segment(self, segment: LogSegment,
                       sealed_by_snapshot: Optional[int] = None) -> SegmentRecord:
        """Archive one sealed segment; it must extend the machine's head.

        The entire hash chain of the segment is re-verified against the
        archived head checkpoint before anything touches disk, so the
        archive only ever holds segments that tile into one unbroken chain.
        Raises :class:`HashChainError` for a broken/forked shipment and
        :class:`StoreError` for structural problems (empty segment, stale
        range).
        """
        if not segment.entries:
            raise StoreError("cannot archive an empty segment")
        machine = segment.machine
        head = self.head_checkpoint(machine)
        if segment.first_sequence != head.sequence + 1 \
                or segment.start_hash != head.chain_hash:
            raise HashChainError(
                f"segment [{segment.first_sequence}, {segment.last_sequence}] "
                f"does not extend the archived head of {machine!r} "
                f"(head sequence {head.sequence})")
        end = verify_chain_incremental(segment.entries, head)

        raw = segment.size_bytes()
        data = get_codec(self.format_version).encode_segment(segment)
        if self.format_version == 1:
            wire_v1 = len(data)
        else:
            # The cost model charges the v1-compressed size whatever format
            # the file is stored in; computing it here (once, at ingest —
            # exactly what a v1 archive pays anyway) lets every later audit
            # serve it from the manifest instead of recompressing.
            wire_v1 = len(get_codec(1).encode_segment(segment))
        file_name = (f"{self._machine_dir(machine)}/segment-"
                     f"{segment.first_sequence:08d}-{segment.last_sequence:08d}"
                     f"{segment_suffix(self.format_version)}")
        atomic_write(self.root / file_name, data)
        record = SegmentRecord(
            machine=machine,
            file_name=file_name,
            first_sequence=segment.first_sequence,
            last_sequence=segment.last_sequence,
            start_hash=segment.start_hash,
            end_hash=end.chain_hash,
            entry_count=len(segment.entries),
            raw_bytes=raw,
            stored_bytes=len(data),
            sealed_by_snapshot=sealed_by_snapshot,
            format_version=self.format_version,
            wire_v1_bytes=wire_v1,
        )
        self._manifest.segments.append(record)
        self._index.setdefault(machine, []).append(record)
        self._manifest.write(self.root)
        self._m_segments_written.inc()
        self._m_raw_bytes_written.inc(raw)
        self._m_bytes_written.inc(len(data))
        self.obs.metrics.counter(
            f"archive.segments_written.v{self.format_version}").inc()
        return record

    def store_authenticators(self, machine: str,
                             authenticators: List[Authenticator]
                             ) -> Optional[AuthBatchRecord]:
        """Archive a batch of authenticators issued by ``machine``.

        Batches are kept in shipment order; :meth:`authenticators_for`
        replays them in the same order, so the archive reproduces a
        collector's authenticator list exactly.  Empty batches are ignored.
        """
        batch = [auth for auth in authenticators if auth.machine == machine]
        if not batch:
            return None
        index = self._auth_counters.get(machine, 0) + 1
        self._auth_counters[machine] = index
        file_name = f"{self._machine_dir(machine)}/auths-{index:06d}{_AUTH_SUFFIX}"
        atomic_write(self.root / file_name,
                     bz2.compress(authenticators_to_bytes(batch)))
        record = AuthBatchRecord(
            machine=machine,
            file_name=file_name,
            count=len(batch),
            min_sequence=min(auth.sequence for auth in batch),
            max_sequence=max(auth.sequence for auth in batch),
        )
        self._manifest.auth_batches.append(record)
        self._auth_index.setdefault(machine, []).append(record)
        self._manifest.write(self.root)
        return record

    def store_snapshot(self, machine: str, snapshot_id: int,
                       state: Dict[str, Any], state_root: bytes,
                       transfer_bytes: int,
                       execution: Optional[Dict[str, int]] = None,
                       page_size: int = PAGE_SIZE,
                       page_count: Optional[int] = None) -> SnapshotRecord:
        """Archive a full (keyframe) snapshot: a replay start point.

        ``page_count`` is the source manager's page geometry; when omitted
        (legacy callers) it is recomputed from the canonical serialisation.
        """
        existing = self._snapshot_index.get(machine, {}).get(snapshot_id)
        if existing is not None:
            return existing
        file_name = (f"{self._machine_dir(machine)}/snapshot-"
                     f"{snapshot_id:06d}{_SNAPSHOT_SUFFIX}")
        if page_count is None:
            page_count = len(paginate(serialize_state(state), page_size))
        payload = serialize_state({
            "machine": machine,
            "snapshot_id": snapshot_id,
            "kind": "keyframe",
            "state": state,
            "state_root": state_root.hex(),
            "transfer_bytes": transfer_bytes,
            "execution": execution or {},
        })
        atomic_write(self.root / file_name, payload)
        record = SnapshotRecord(
            machine=machine, snapshot_id=snapshot_id, file_name=file_name,
            state_root=state_root, transfer_bytes=transfer_bytes,
            execution=dict(execution or {}),
            kind="keyframe", base_snapshot_id=None,
            page_count=page_count, page_size=page_size,
        )
        self._manifest.snapshots.append(record)
        self._snapshot_index.setdefault(machine, {})[snapshot_id] = record
        self._manifest.write(self.root)
        self._m_snapshots_written.inc()
        return record

    def store_snapshot_delta(self, machine: str, snapshot_id: int,
                             base_snapshot_id: int,
                             changed_pages: Dict[int, bytes],
                             page_count: int, state_root: bytes,
                             transfer_bytes: int,
                             execution: Optional[Dict[str, int]] = None,
                             page_size: int = PAGE_SIZE) -> SnapshotRecord:
        """Archive an incremental snapshot: changed pages over its base.

        Section 4.4's space saving, end to end: between keyframes the
        archive stores only what changed; :meth:`load_snapshot` replays the
        chain (verifying page count and Merkle root at every step) when an
        audit actually needs the full state.  The base snapshot must already
        be archived — a delta whose base is missing could never be
        materialised, so it is rejected (:class:`SnapshotError`) for the
        ingest layer to quarantine.
        """
        existing = self._snapshot_index.get(machine, {}).get(snapshot_id)
        if existing is not None:
            return existing
        if base_snapshot_id not in self._snapshot_index.get(machine, {}):
            raise SnapshotError(
                f"delta snapshot {snapshot_id} of {machine!r} references "
                f"base {base_snapshot_id}, which is not archived")
        file_name = (f"{self._machine_dir(machine)}/snapshot-"
                     f"{snapshot_id:06d}{_SNAPSHOT_SUFFIX}")
        payload = serialize_state({
            "machine": machine,
            "snapshot_id": snapshot_id,
            "kind": "delta",
            "base_snapshot_id": base_snapshot_id,
            "changed_pages": {str(index): page.hex()
                              for index, page in sorted(changed_pages.items())},
            "page_count": page_count,
            "state_root": state_root.hex(),
            "transfer_bytes": transfer_bytes,
            "execution": execution or {},
        })
        atomic_write(self.root / file_name, payload)
        record = SnapshotRecord(
            machine=machine, snapshot_id=snapshot_id, file_name=file_name,
            state_root=state_root, transfer_bytes=transfer_bytes,
            execution=dict(execution or {}),
            kind="delta", base_snapshot_id=base_snapshot_id,
            page_count=page_count, page_size=page_size,
        )
        self._manifest.snapshots.append(record)
        self._snapshot_index.setdefault(machine, {})[snapshot_id] = record
        self._manifest.write(self.root)
        self._m_snapshots_written.inc()
        return record

    # -- reading -------------------------------------------------------------

    def read_segment(self, record: SegmentRecord) -> LogSegment:
        """Load one archived segment and check it against its index record."""
        path = self.root / record.file_name
        try:
            codec = get_codec(record.format_version)
            segment = codec.decode_segment(path.read_bytes())
        except (OSError, EOFError, ValueError, LogFormatError) as exc:
            raise ArchiveIntegrityError(
                f"cannot read archived segment {record.file_name}: {exc}") from exc
        if segment.machine != record.machine \
                or not segment.entries \
                or segment.first_sequence != record.first_sequence \
                or segment.last_sequence != record.last_sequence \
                or segment.start_hash != record.start_hash \
                or segment.end_hash != record.end_hash:
            raise ArchiveIntegrityError(
                f"archived segment {record.file_name} does not match its "
                f"manifest record")
        self._m_segments_read.inc()
        self._m_bytes_read.inc(record.stored_bytes)
        return segment

    def stream_segment(self, record: SegmentRecord,
                       chunk_bytes: int = 1 << 16) -> Iterator[LogEntry]:
        """Stream one archived segment's entries without materializing it.

        Decodes the segment file incrementally
        (:class:`~repro.log.codec.SegmentStreamDecoder`, which sniffs the
        wire format by magic) and yields one entry at a time — peak memory
        is one stored chunk plus one entry, not the segment.  The same metadata checks :meth:`read_segment`
        performs run incrementally: header fields before the first entry,
        first/last sequence and end hash as they stream past, entry count at
        exhaustion.  Any decode failure or metadata mismatch raises
        :class:`ArchiveIntegrityError`, exactly like the materializing
        reader.  The hash chain is *not* verified here — feed the stream to
        :func:`repro.log.hashchain.extend_checkpoint` (the audit stream
        pipeline does).
        """
        path = self.root / record.file_name
        decoder = SegmentStreamDecoder()
        self._m_segments_read.inc()
        self._m_bytes_read.inc(record.stored_bytes)
        last_entry: Optional[LogEntry] = None
        try:
            with open(path, "rb") as handle:
                chunks = iter(lambda: handle.read(chunk_bytes), b"")
                for entry in decoder.entries(chunks):
                    if decoder.entry_count == 1:
                        header = decoder.header or {}
                        if str(header.get("machine")) != record.machine \
                                or header.get("start_hash") \
                                != record.start_hash.hex() \
                                or entry.sequence != record.first_sequence:
                            raise ArchiveIntegrityError(
                                f"archived segment {record.file_name} does "
                                f"not match its manifest record")
                    if entry.sequence > record.last_sequence or (
                            entry.sequence == record.last_sequence
                            and entry.chain_hash != record.end_hash):
                        # Checked before the yield, so a consumer verifying
                        # the chain as it pulls sees the same error class the
                        # materializing reader raises for this corruption.
                        raise ArchiveIntegrityError(
                            f"archived segment {record.file_name} does not "
                            f"match its manifest record")
                    last_entry = entry
                    yield entry
        except (OSError, EOFError, ValueError, LogFormatError) as exc:
            raise ArchiveIntegrityError(
                f"cannot read archived segment {record.file_name}: "
                f"{exc}") from exc
        if last_entry is None \
                or decoder.entry_count != record.entry_count \
                or last_entry.sequence != record.last_sequence \
                or last_entry.chain_hash != record.end_hash:
            raise ArchiveIntegrityError(
                f"archived segment {record.file_name} does not match its "
                f"manifest record")

    def segments_for(self, machine: str) -> List[LogSegment]:
        """All retained segments of ``machine``, oldest first."""
        return [self.read_segment(record)
                for record in self._index.get(machine, [])]

    def materialized_log(self, machine: str) -> LogSegment:
        """The whole retained log, explicitly materialized in memory.

        Peak memory grows with log length — the audit hot path streams
        instead (:mod:`repro.audit.stream`); this exists for the streaming
        pipeline's canonical-evidence fallback and for callers that really
        want the whole log at once.
        """
        segments = self.segments_for(machine)
        if not segments:
            raise StoreError(f"no archived segments for {machine!r}")
        return concatenate_segments(segments)

    def cached_wire_bytes(self, machine: str, first_sequence: int,
                          last_sequence: int) -> Optional[int]:
        """The v1-compressed size of ``[first, last]``, served from the index.

        Returns a size only when some segment record covers *exactly* this
        sequence range: an exact span match means the record's file was
        encoded from the same entries, the same start hash and the same
        machine name as any sub-segment an audit rebuilds for that range
        (the archive verified the chain at ingest), so the deterministic v1
        encoding — and hence its length — is identical.  Ranges that do not
        line up with a stored segment (merged re-shipments, split tails)
        return ``None`` and the caller computes the size itself; the cache
        is a pure optimisation, never a semantic change.
        """
        records = self._index.get(machine, [])
        starts = [record.first_sequence for record in records]
        position = bisect_right(starts, first_sequence) - 1
        if position < 0:
            return None
        record = records[position]
        if record.first_sequence != first_sequence \
                or record.last_sequence != last_sequence:
            return None
        if record.format_version == 1:
            return record.stored_bytes
        return record.wire_v1_bytes or None

    def reencode_segments(self, destination_root: Union[str, Path],
                          format_version: int) -> "LogArchive":
        """Copy this archive to ``destination_root`` in another wire format.

        Segments are decoded, re-verified (by the destination's ingest
        path) and re-encoded with ``format_version``'s codec, preserving
        sealing metadata; authenticator batches and snapshots are copied
        content-identically.  Returns the new archive.  Used by the
        cross-format differential suite and as the migration path between
        codec generations.
        """
        destination = LogArchive(destination_root,
                                 format_version=format_version)
        for machine in self.machines():
            # Install the retention anchor first: a truncated source's
            # earliest segment extends the checkpoint, not genesis.
            retained = self.retained_checkpoint(machine)
            if retained is not None:
                destination._manifest.retained[machine] = retained
            for record in self._index.get(machine, []):
                destination.append_segment(
                    self.read_segment(record),
                    sealed_by_snapshot=record.sealed_by_snapshot)
            for batch in self._auth_index.get(machine, []):
                try:
                    data = (self.root / batch.file_name).read_bytes()
                    auths = authenticators_from_bytes(bz2.decompress(data))
                except (OSError, EOFError, ValueError, LogFormatError) as exc:
                    raise ArchiveIntegrityError(
                        f"corrupt authenticator batch {batch.file_name}: "
                        f"{exc}") from exc
                destination.store_authenticators(machine, auths)
            snaps = self._snapshot_index.get(machine, {})
            for snapshot_id in sorted(snaps):
                snap = snaps[snapshot_id]
                if snap.kind == "keyframe":
                    snapshot = self.load_snapshot(machine, snapshot_id)
                    destination.store_snapshot(
                        machine, snapshot_id, snapshot.state,
                        snap.state_root, snap.transfer_bytes,
                        execution=dict(snap.execution),
                        page_size=snap.page_size or PAGE_SIZE,
                        page_count=snap.page_count or None)
                else:
                    delta = self._read_delta(snap)
                    destination.store_snapshot_delta(
                        machine, snapshot_id, delta.base_snapshot_id,
                        delta.changed_pages, delta.page_count,
                        snap.state_root, snap.transfer_bytes,
                        execution=dict(snap.execution),
                        page_size=snap.page_size or PAGE_SIZE)
        destination._manifest.write(destination.root)
        return destination

    def record_covering(self, machine: str, sequence: int) -> SegmentRecord:
        """Index lookup: the segment record containing ``sequence``.

        Binary search over the sorted per-machine index — cost is independent
        of segment *size* and logarithmic in segment *count*.
        """
        records = self._index.get(machine, [])
        starts = [record.first_sequence for record in records]
        position = bisect_right(starts, sequence) - 1
        if position < 0 or not records[position].covers(sequence):
            raise StoreError(
                f"no archived entry {sequence} for {machine!r} "
                f"(retained range starts after GC checkpoint "
                f"{self.start_checkpoint(machine).sequence})")
        return records[position]

    def read_range(self, machine: str, first_sequence: int,
                   last_sequence: int) -> LogSegment:
        """Extract ``[first_sequence, last_sequence]`` from the archive."""
        if first_sequence > last_sequence:
            raise StoreError(
                f"range start {first_sequence} is after end {last_sequence}")
        records = self._index.get(machine, [])
        first_record = self.record_covering(machine, first_sequence)
        last_record = self.record_covering(machine, last_sequence)
        start = records.index(first_record)
        stop = records.index(last_record) + 1
        chunk = concatenate_segments([self.read_segment(record)
                                      for record in records[start:stop]])
        entries = [entry for entry in chunk.entries
                   if first_sequence <= entry.sequence <= last_sequence]
        return LogSegment(machine=machine, entries=entries,
                          start_hash=entries[0].previous_hash)

    def authenticators_for(self, machine: str) -> List[Authenticator]:
        """All retained authenticators issued by ``machine``, shipment order.

        Batch files are immutable once shipped (growth appends new files),
        so each file's bz2+JSON parse is cached against its stat signature;
        auditing the same archive repeatedly pays the decompression once.
        """
        result: List[Authenticator] = []
        for batch in self._auth_index.get(machine, []):
            try:
                path = self.root / batch.file_name
                stat = path.stat()
                signature = (stat.st_mtime_ns, stat.st_size)
                cached = self._auth_batch_cache.get(batch.file_name)
                if cached is not None and cached[0] == signature:
                    result.extend(cached[1])
                    continue
                parsed = authenticators_from_bytes(
                    bz2.decompress(path.read_bytes()))
                self._auth_batch_cache[batch.file_name] = (signature, parsed)
                result.extend(parsed)
            except (OSError, EOFError, ValueError, LogFormatError) as exc:
                raise ArchiveIntegrityError(
                    f"corrupt authenticator batch {batch.file_name}: {exc}") from exc
        return result

    def snapshot_store(self, machine: str) -> "ArchiveSnapshotStore":
        """A snapshot-manager view over the machine's archived snapshots."""
        return ArchiveSnapshotStore(self, machine)

    def load_snapshot(self, machine: str, snapshot_id: int) -> Snapshot:
        """Rebuild a full :class:`~repro.vm.snapshot.Snapshot` from the archive.

        A keyframe is re-paginated from its canonical state serialisation; a
        delta is materialised by walking back to the nearest archived
        keyframe and replaying the changed-page chain forward, verifying
        page count and Merkle root at every step — so Merkle-root
        verification works exactly as on the source machine and a corrupt
        chain surfaces as :class:`SnapshotError`, never as a silently-wrong
        state.
        """
        record = self._snapshot_index.get(machine, {}).get(snapshot_id)
        if record is None:
            raise SnapshotError(
                f"no archived snapshot {snapshot_id} for {machine!r}")
        chain: List[SnapshotRecord] = []
        base = record
        pages: Optional[List[bytes]] = None
        deps: List[Tuple[str, Tuple[int, int]]] = []
        while base.kind == "delta":
            cached = self._cached_snapshot_pages(machine, base.snapshot_id)
            if cached is not None:
                deps.extend(cached[0])
                pages = list(cached[1])
                break
            chain.append(base)
            if base.base_snapshot_id is None:
                raise ArchiveIntegrityError(
                    f"delta snapshot {base.snapshot_id} of {machine!r} "
                    f"has no base id")
            parent = self._snapshot_index.get(machine, {}).get(base.base_snapshot_id)
            if parent is None:
                raise ArchiveIntegrityError(
                    f"delta snapshot {base.snapshot_id} of {machine!r} "
                    f"references missing base {base.base_snapshot_id}")
            base = parent
        if pages is None:
            pages = self._keyframe_pages(base)
            deps.append((base.file_name, self._file_signature(base.file_name)))
        for delta_record in reversed(chain):
            pages = apply_delta(pages, self._read_delta(delta_record))
            deps.append((delta_record.file_name,
                         self._file_signature(delta_record.file_name)))
        if record.kind == "delta" and chain:
            self._snapshot_pages_cache[(machine, record.snapshot_id)] = \
                (tuple(deps), tuple(pages))
            while (len(self._snapshot_pages_cache)
                   > self._SNAPSHOT_PAGES_CACHE_LIMIT):
                self._snapshot_pages_cache.pop(
                    next(iter(self._snapshot_pages_cache)))
        execution = ExecutionTimestamp(
            instruction_count=int(record.execution.get("instructions", 0)),
            branch_count=int(record.execution.get("branches", 0)))
        # state=None: the Snapshot parses its state dict lazily from the
        # canonical pages, so every caller gets a fresh dict even when the
        # pages came out of the keyframe cache.
        return Snapshot(snapshot_id=snapshot_id, execution=execution,
                        pages=pages, state_root=record.state_root,
                        state=None)

    #: keyframes held in the page cache (full serialised states — bounded
    #: so a long archive walk cannot accumulate every keyframe in memory)
    _KEYFRAME_CACHE_LIMIT = 4

    #: reconstructed delta snapshots held in the pages memo (see
    #: :meth:`_cached_snapshot_pages`)
    _SNAPSHOT_PAGES_CACHE_LIMIT = 4

    def _file_signature(self, file_name: str) -> Tuple[int, int]:
        stat = (self.root / file_name).stat()
        return (stat.st_mtime_ns, stat.st_size)

    def _cached_snapshot_pages(
            self, machine: str, snapshot_id: int,
    ) -> Optional[Tuple[Tuple[Tuple[str, Tuple[int, int]], ...],
                        Tuple[bytes, ...]]]:
        """A previously reconstructed (and Merkle-verified) delta snapshot.

        An audit fetches snapshots in chunk order, and each fetch walks
        the delta chain back to a keyframe — quadratic re-application of
        the same deltas over one audit.  The memo keeps the page tuples of
        the most recently reconstructed delta snapshots together with the
        stat signatures of every file that went into them; a hit is only
        served while all of those files are unchanged, so rewriting any
        delta or keyframe in the chain forces a fresh (re-verified)
        reconstruction.
        """
        entry = self._snapshot_pages_cache.get((machine, snapshot_id))
        if entry is None:
            return None
        deps, pages = entry
        try:
            for file_name, signature in deps:
                if self._file_signature(file_name) != signature:
                    raise OSError("stale")
        except OSError:
            del self._snapshot_pages_cache[(machine, snapshot_id)]
            return None
        # Refresh LRU position.
        self._snapshot_pages_cache[(machine, snapshot_id)] = \
            self._snapshot_pages_cache.pop((machine, snapshot_id))
        return deps, pages

    def _keyframe_pages(self, base: SnapshotRecord) -> List[bytes]:
        """The page list of an archived keyframe, via a stat-validated cache.

        Keyframe files are immutable once written, so re-reading,
        re-parsing and re-paginating them for every snapshot fetch of an
        audit is pure waste; the cache keeps the canonical page tuple of
        the most recently used keyframes and is invalidated by mtime/size.
        """
        path = self.root / base.file_name
        try:
            stat = path.stat()
            signature = (stat.st_mtime_ns, stat.st_size)
            cached = self._keyframe_page_cache.get(base.file_name)
            if cached is not None and cached[0] == signature:
                # Refresh LRU position.
                self._keyframe_page_cache[base.file_name] = \
                    self._keyframe_page_cache.pop(base.file_name)
                return list(cached[1])
            payload = json.loads(path.read_text("utf-8"))
            state = dict(payload["state"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise ArchiveIntegrityError(
                f"corrupt archived snapshot {base.file_name}: {exc}") from exc
        page_size = base.page_size or PAGE_SIZE
        pages = paginate(serialize_state(state), page_size)
        self._keyframe_page_cache[base.file_name] = (signature, tuple(pages))
        while len(self._keyframe_page_cache) > self._KEYFRAME_CACHE_LIMIT:
            self._keyframe_page_cache.pop(
                next(iter(self._keyframe_page_cache)))
        return pages

    def _read_delta(self, record: SnapshotRecord) -> IncrementalSnapshot:
        """Load one delta-snapshot file back into its in-memory form.

        Delta files are immutable; reconstructing a snapshot chain walks
        the same deltas a fetch at a time, so the parsed form is cached
        against the file's stat signature.  :func:`apply_delta` treats the
        delta as read-only, so sharing the cached instance is safe.
        """
        try:
            path = self.root / record.file_name
            stat = path.stat()
            signature = (stat.st_mtime_ns, stat.st_size)
            cached = self._delta_cache.get(record.file_name)
            if cached is not None and cached[0] == signature:
                return cached[1]
            payload = json.loads(path.read_text("utf-8"))
            if payload.get("kind") != "delta":
                raise ValueError(f"expected a delta, found {payload.get('kind')!r}")
            changed = {int(index): bytes.fromhex(page)
                       for index, page in dict(payload["changed_pages"]).items()}
            page_count = int(payload["page_count"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise ArchiveIntegrityError(
                f"corrupt archived snapshot delta {record.file_name}: "
                f"{exc}") from exc
        delta = IncrementalSnapshot(
            snapshot_id=record.snapshot_id,
            execution=ExecutionTimestamp(
                instruction_count=int(record.execution.get("instructions", 0)),
                branch_count=int(record.execution.get("branches", 0))),
            base_snapshot_id=record.base_snapshot_id,
            changed_pages=changed,
            page_count=page_count,
            state_root=record.state_root,
            page_size=record.page_size or PAGE_SIZE,
        )
        self._delta_cache[record.file_name] = (signature, delta)
        return delta

    def snapshot_transfer_bytes(self, machine: str, snapshot_id: int) -> int:
        record = self._snapshot_index.get(machine, {}).get(snapshot_id)
        if record is None:
            raise SnapshotError(
                f"no archived snapshot {snapshot_id} for {machine!r}")
        return record.transfer_bytes

    def initial_state_for(self, machine: str) -> Tuple[Optional[Dict[str, Any]], int]:
        """Replay start state for the retained suffix.

        ``(None, 0)`` when the archive still reaches back to the beginning of
        the log; otherwise the state and transfer cost of the snapshot at the
        retention boundary.
        """
        if self.retained_checkpoint(machine) is None:
            return None, 0
        snaps = self._snapshot_index.get(machine, {})
        if not snaps:
            raise SnapshotError(
                f"archive of {machine!r} was truncated but retains no "
                f"boundary snapshot")
        boundary_id = min(snaps)
        snapshot = self.load_snapshot(machine, boundary_id)
        if not snapshot.verify_root():
            raise SnapshotError(
                f"boundary snapshot {boundary_id} of {machine!r} failed "
                f"hash-tree verification")
        return snapshot.state, self.snapshot_transfer_bytes(machine, boundary_id)

    # -- shard handoff -------------------------------------------------------

    def copy_snapshots_to(self, destination: "LogArchive",
                          machine: str) -> int:
        """Copy ``machine``'s archived snapshots into another archive.

        Preserves keyframe/delta structure, transfer costs and execution
        timestamps (ascending id order, so every delta's base precedes it).
        Snapshots the destination already holds are skipped — the store
        methods deduplicate by id — which makes an interrupted shard
        handoff safely resumable.  Returns the number of snapshots copied.
        """
        copied = 0
        already = set(destination._snapshot_index.get(machine, {}))
        snaps = self._snapshot_index.get(machine, {})
        for snapshot_id in sorted(snaps):
            if snapshot_id in already:
                continue
            snap = snaps[snapshot_id]
            if snap.kind == "keyframe":
                snapshot = self.load_snapshot(machine, snapshot_id)
                destination.store_snapshot(
                    machine, snapshot_id, snapshot.state,
                    snap.state_root, snap.transfer_bytes,
                    execution=dict(snap.execution),
                    page_size=snap.page_size or PAGE_SIZE,
                    page_count=snap.page_count or None)
            else:
                delta = self._read_delta(snap)
                destination.store_snapshot_delta(
                    machine, snapshot_id, delta.base_snapshot_id,
                    delta.changed_pages, delta.page_count,
                    snap.state_root, snap.transfer_bytes,
                    execution=dict(snap.execution),
                    page_size=snap.page_size or PAGE_SIZE)
            copied += 1
        return copied

    def adopt_retention_checkpoint(self, machine: str,
                                   checkpoint: ChainCheckpoint) -> None:
        """Install another archive's retention anchor for ``machine``.

        The first step of a shard handoff: a truncated source archive's
        earliest segment extends its retention checkpoint, not genesis, so
        the destination must adopt the anchor *before* any segment arrives.
        Idempotent when the same checkpoint is already installed (an
        interrupted handoff simply re-runs); any *conflicting* anchor, or an
        adoption attempted after segments exist, is refused
        (:class:`RetentionError`) — silently moving the anchor would fork
        the archived chain.
        """
        current = self._manifest.retained.get(machine)
        if current is not None:
            if current.sequence == checkpoint.sequence \
                    and current.chain_hash == checkpoint.chain_hash:
                return  # handoff resume: already adopted
            raise RetentionError(
                f"cannot adopt retention checkpoint {checkpoint.sequence} for "
                f"{machine!r}: a different anchor (sequence "
                f"{current.sequence}) is already installed")
        if self._index.get(machine):
            raise RetentionError(
                f"cannot adopt a retention checkpoint for {machine!r}: "
                f"segments are already archived here")
        self._manifest.retained[machine] = checkpoint
        self._manifest.write(self.root)

    def forget_machine(self, machine: str,
                       keep_authenticators: bool = True) -> int:
        """Release ``machine``'s archived chain (the source side of a handoff).

        Removes the machine's segments, snapshots and retention anchor after
        they have been migrated to another shard's archive; returns the
        number of data files deleted.  Authenticator batches *about* the
        machine are kept by default — they are evidence collected from this
        shard's own reporters, stay valid wherever the machine's chain
        lives, and the fleet coordinator pools them across shards; pass
        ``keep_authenticators=False`` to drop them too.  The manifest is
        committed before any file is unlinked, so a crash mid-delete leaves
        orphan files for the next open's sweep, never a half-indexed
        archive.
        """
        records = self._index.pop(machine, [])
        snaps = self._snapshot_index.pop(machine, {})
        batches: List[AuthBatchRecord] = []
        if not keep_authenticators:
            batches = self._auth_index.pop(machine, [])
            self._auth_counters.pop(machine, None)
        had_retained = machine in self._manifest.retained
        if not (records or snaps or batches or had_retained):
            return 0
        self._manifest.segments = [record for record in self._manifest.segments
                                   if record.machine != machine]
        self._manifest.snapshots = [snap for snap in self._manifest.snapshots
                                    if snap.machine != machine]
        if not keep_authenticators:
            self._manifest.auth_batches = [
                batch for batch in self._manifest.auth_batches
                if batch.machine != machine]
        self._manifest.retained.pop(machine, None)
        self._manifest.write(self.root)
        removed = 0
        for file_name in ([record.file_name for record in records]
                          + [snap.file_name for snap in snaps.values()]
                          + [batch.file_name for batch in batches]):
            (self.root / file_name).unlink(missing_ok=True)
            removed += 1
        for snap in snaps.values():
            self._keyframe_page_cache.pop(snap.file_name, None)
            self._delta_cache.pop(snap.file_name, None)
        for batch in batches:
            self._auth_batch_cache.pop(batch.file_name, None)
        self._snapshot_pages_cache = {
            key: value for key, value in self._snapshot_pages_cache.items()
            if key[0] != machine}
        return removed

    # -- retention / GC ------------------------------------------------------

    def truncate(self, machine: str, up_to_sequence: int) -> ChainCheckpoint:
        """Garbage-collect ``machine``'s log up to a checkpoint (Section 4.2).

        Whole segments whose entries all fall at or below ``up_to_sequence``
        are deleted — truncation lands on the greatest snapshot-sealed
        segment boundary not beyond the requested sequence, so the surviving
        suffix still starts at a replayable snapshot.  The boundary's
        ``(sequence, chain hash)`` is recorded as the machine's retention
        checkpoint: the mutually-agreed anchor future audits verify against.
        Returns the checkpoint actually applied (the current one when no
        eligible boundary exists).
        """
        current = self.start_checkpoint(machine)
        if up_to_sequence < current.sequence:
            raise RetentionError(
                f"cannot truncate {machine!r} to {up_to_sequence}: already "
                f"truncated to {current.sequence}")
        records = self._index.get(machine, [])
        archived_snaps = self._snapshot_index.get(machine, {})
        boundary: Optional[SegmentRecord] = None
        for record in records:
            # Eligible boundaries are snapshot-sealed *and* have the boundary
            # snapshot in the archive — otherwise the surviving suffix would
            # have no replay start (e.g. the snapshot shipment was dropped).
            if record.last_sequence <= up_to_sequence \
                    and record.sealed_by_snapshot is not None \
                    and record.sealed_by_snapshot in archived_snaps:
                boundary = record
        if boundary is None:
            return current

        checkpoint = boundary.end_checkpoint()
        # The surviving suffix must still start at a *materialisable*
        # snapshot once its delta chain's ancestors are gone: a delta
        # boundary is rewritten as a keyframe first.
        stale_boundary_file = self._ensure_boundary_keyframe(
            machine, boundary.sealed_by_snapshot)
        dropped = [record for record in records
                   if record.last_sequence <= boundary.last_sequence]
        kept = [record for record in records
                if record.last_sequence > boundary.last_sequence]
        dropped_auths = [batch for batch in self._auth_index.get(machine, [])
                         if batch.max_sequence <= boundary.last_sequence]
        kept_auths = [batch for batch in self._auth_index.get(machine, [])
                      if batch.max_sequence > boundary.last_sequence]
        snaps = self._snapshot_index.get(machine, {})
        dropped_snaps = [snap for snap_id, snap in snaps.items()
                         if snap_id < boundary.sealed_by_snapshot]
        kept_snaps = {snap_id: snap for snap_id, snap in snaps.items()
                      if snap_id >= boundary.sealed_by_snapshot}

        self._index[machine] = kept
        self._auth_index[machine] = kept_auths
        self._snapshot_index[machine] = kept_snaps
        self._manifest.segments = [record for record in self._manifest.segments
                                   if record.machine != machine
                                   or record in kept]
        self._manifest.auth_batches = [batch for batch in self._manifest.auth_batches
                                       if batch.machine != machine
                                       or batch in kept_auths]
        self._manifest.snapshots = [snap for snap in self._manifest.snapshots
                                    if snap.machine != machine
                                    or snap.snapshot_id in kept_snaps]
        self._manifest.retained[machine] = checkpoint
        # Commit the manifest first: a crash after this point leaves orphan
        # data files, which the next open discards.
        self._manifest.write(self.root)
        for record in dropped:
            (self.root / record.file_name).unlink(missing_ok=True)
        for batch in dropped_auths:
            (self.root / batch.file_name).unlink(missing_ok=True)
        for snap in dropped_snaps:
            (self.root / snap.file_name).unlink(missing_ok=True)
        if stale_boundary_file is not None:
            (self.root / stale_boundary_file).unlink(missing_ok=True)
        return checkpoint

    def _ensure_boundary_keyframe(self, machine: str,
                                  snapshot_id: int) -> Optional[str]:
        """Materialise a delta snapshot into a keyframe (for GC boundaries).

        Writes the keyframe to a *new* file and swaps the in-memory record;
        the manifest is committed by the caller, so a crash at any point
        leaves either the old delta (new file is an orphan) or the new
        keyframe (old file is an orphan) — never a half state.  Returns the
        old file name to delete after the manifest commit, or ``None`` if
        the snapshot already was a keyframe.
        """
        record = self._snapshot_index.get(machine, {}).get(snapshot_id)
        if record is None or record.kind == "keyframe":
            return None
        snapshot = self.load_snapshot(machine, snapshot_id)  # verifies chain
        file_name = (f"{self._machine_dir(machine)}/snapshot-"
                     f"{snapshot_id:06d}-kf{_SNAPSHOT_SUFFIX}")
        atomic_write(self.root / file_name, serialize_state({
            "machine": machine,
            "snapshot_id": snapshot_id,
            "kind": "keyframe",
            "state": snapshot.state,
            "state_root": record.state_root.hex(),
            "transfer_bytes": record.transfer_bytes,
            "execution": record.execution,
        }))
        new_record = SnapshotRecord(
            machine=machine, snapshot_id=snapshot_id, file_name=file_name,
            state_root=record.state_root, transfer_bytes=record.transfer_bytes,
            execution=dict(record.execution),
            kind="keyframe", base_snapshot_id=None,
            page_count=len(snapshot.pages),
            page_size=record.page_size or PAGE_SIZE,
        )
        self._snapshot_index[machine][snapshot_id] = new_record
        self._manifest.snapshots = [
            new_record if (snap.machine == machine
                           and snap.snapshot_id == snapshot_id) else snap
            for snap in self._manifest.snapshots]
        return record.file_name

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _machine_dir(machine: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", machine)
        return safe or "machine"


class ArchiveSnapshotStore:
    """Duck-typed stand-in for :class:`~repro.vm.snapshot.SnapshotManager`.

    The audit engine's boundary-snapshot fetch
    (:func:`repro.audit.engine.fetch_verified_snapshot`) only calls
    :meth:`get` and :meth:`transfer_cost_bytes`; this adapter serves both
    from the archive, reporting the transfer cost the *source machine*
    recorded so archive-backed audit costs equal in-memory ones.
    """

    def __init__(self, archive: LogArchive, machine: str) -> None:
        self._archive = archive
        self._machine = machine

    @property
    def count(self) -> int:
        return len(self._archive._snapshot_index.get(self._machine, {}))

    def snapshot_ids(self) -> List[int]:
        return sorted(self._archive._snapshot_index.get(self._machine, {}))

    def get(self, snapshot_id: int) -> Snapshot:
        return self._archive.load_snapshot(self._machine, snapshot_id)

    def transfer_cost_bytes(self, snapshot_id: int,
                            include_memory_dump: bool = True) -> int:
        return self._archive.snapshot_transfer_bytes(self._machine, snapshot_id)
