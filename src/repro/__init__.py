"""repro — a reproduction of *Accountable Virtual Machines* (OSDI 2010).

The public API re-exports the pieces a downstream user needs to make a piece
of software accountable and to audit it:

* build a :class:`~repro.vm.image.VMImage` around a deterministic
  :class:`~repro.vm.guest.GuestProgram`;
* run it under an :class:`~repro.avmm.monitor.AccountableVMM` on a
  :class:`~repro.sim.scheduler.Scheduler` and
  :class:`~repro.network.simnet.SimulatedNetwork`;
* audit the recorded log with an :class:`~repro.audit.auditor.Auditor`
  (full audits, :class:`~repro.audit.spot_check.SpotChecker` spot checks or
  :class:`~repro.audit.online.OnlineAuditor` online audits);
* hand the resulting :class:`~repro.audit.evidence.Evidence` to any third
  party for independent verification.

See ``examples/quickstart.py`` for a complete two-party walkthrough.
"""

from repro.audit import Auditor, Evidence, OnlineAuditor, SpotChecker
from repro.audit.verdict import AuditResult, Verdict
from repro.avmm import AccountableVMM, AvmmConfig, Configuration, DeterministicReplayer
from repro.crypto import CertificateAuthority, KeyStore
from repro.log import TamperEvidentLog
from repro.network import SimulatedNetwork
from repro.sim import Scheduler
from repro.vm import GuestProgram, MachineApi, VirtualMachine, VMImage

__version__ = "1.0.0"

__all__ = [
    "Auditor",
    "Evidence",
    "OnlineAuditor",
    "SpotChecker",
    "AuditResult",
    "Verdict",
    "AccountableVMM",
    "AvmmConfig",
    "Configuration",
    "DeterministicReplayer",
    "CertificateAuthority",
    "KeyStore",
    "TamperEvidentLog",
    "SimulatedNetwork",
    "Scheduler",
    "GuestProgram",
    "MachineApi",
    "VirtualMachine",
    "VMImage",
    "__version__",
]
