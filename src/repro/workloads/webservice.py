"""An accountable HTTP-style web-service guest and its open-loop client.

The ROADMAP's "heavy traffic from millions of users" story needs a modern
service workload next to the game and database guests: a request-routed API
server with an internal service layer, a TTL response cache whose hits skip
handler work, and calls to *external* backends (catalog, profile, payment)
whose latency and response bodies are nondeterministic.  Those upstream
responses flow through :meth:`~repro.vm.guest.MachineApi.upstream_call`, so
the AVMM records each one with its execution timestamp and an auditor can
replay the service bit-for-bit without the backends being present.

Determinism contract: the guests below never touch wall clocks or ``random``;
every nondeterministic value they observe (clock reads, upstream responses,
request arrivals) enters through the machine API and is recorded.  The
*backend model* (:class:`SimulatedUpstreamBackend`) lives host-side — it may
use seeded randomness freely because its outputs are recorded inputs, exactly
like the host clock.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import GuestError
from repro.vm.events import GuestEvent, KeyboardInput, PacketDelivery, TimerInterrupt
from repro.vm.guest import GuestDirtyKey, GuestProgram, MachineApi
from repro.vm.image import VMImage
from repro.vm.machine import UpstreamResponse
from repro.vm.state_store import DirtyTrackingStore


@dataclass(frozen=True)
class WebServiceSettings:
    """Static configuration of the service (part of the image identity)."""

    #: guest-visible seconds a cached response stays fresh
    cache_ttl: float = 0.5
    #: maximum cached responses before the earliest-expiring one is evicted
    cache_capacity: int = 512
    #: cycles a handler charges on a cache miss (excludes upstream latency)
    handler_cycles: int = 400
    #: cycles charged when a cache hit skips the handler entirely
    cache_hit_cycles: int = 40
    #: simulated seconds between maintenance ticks (expired-entry purge)
    tick_interval: float = 0.5


class WebServiceGuest(GuestProgram):
    """Routed HTTP-style API server with a TTL response cache.

    Requests arrive as JSON packets (``{"id", "method", "path"}``); the
    router dispatches to the service layer, which may consult an upstream
    backend through the machine API.  Cacheable responses are stored in a
    :class:`~repro.vm.state_store.DirtyTrackingStore` keyed by
    ``"METHOD path"`` so copy-on-write snapshots re-serialise only the
    entries a request actually touched.
    """

    name = "web-service"

    def __init__(self, settings: Optional[WebServiceSettings] = None) -> None:
        self.settings = settings or WebServiceSettings()
        self.cache: DirtyTrackingStore = DirtyTrackingStore()
        self.orders: DirtyTrackingStore = DirtyTrackingStore()
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.ticks = 0
        self._dirty_scalars: Set[str] = {"requests", "cache_hits",
                                         "cache_misses", "ticks"}
        #: (method, path prefix, handler, cacheable) — first match wins
        self._routes: List[Tuple[str, str, Any, bool]] = [
            ("GET", "/api/item/", self._handle_item, True),
            ("GET", "/api/user/", self._handle_user, True),
            ("POST", "/api/order", self._handle_order, False),
            ("GET", "/api/health", self._handle_health, False),
        ]

    # -- guest interface -----------------------------------------------------

    def on_start(self, api: MachineApi) -> None:
        api.set_timer(self.settings.tick_interval)
        api.consume_cycles(100)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        if isinstance(event, TimerInterrupt):
            self._on_tick(api)
        elif isinstance(event, PacketDelivery):
            self._on_request(api, event)

    def get_state(self) -> Dict[str, Any]:
        return {"cache": self.cache.as_dict(), "orders": self.orders.as_dict(),
                "requests": self.requests, "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses, "ticks": self.ticks}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.cache.replace(state["cache"])
        self.orders.replace(state["orders"])
        self.requests = int(state["requests"])
        self.cache_hits = int(state["cache_hits"])
        self.cache_misses = int(state["cache_misses"])
        self.ticks = int(state["ticks"])
        self._dirty_scalars.update(("requests", "cache_hits",
                                    "cache_misses", "ticks"))

    def snapshot_dirty_keys(self) -> Optional[Set[GuestDirtyKey]]:
        dirty: Set[GuestDirtyKey] = {("cache", key)
                                     for key in self.cache.dirty_keys()}
        dirty.update(("orders", key) for key in self.orders.dirty_keys())
        dirty.update((name,) for name in self._dirty_scalars)
        return dirty

    def snapshot_mark_clean(self) -> None:
        self.cache.mark_clean()
        self.orders.mark_clean()
        self._dirty_scalars.clear()

    def config_fingerprint(self) -> Dict[str, Any]:
        return {"cache_ttl": self.settings.cache_ttl,
                "cache_capacity": self.settings.cache_capacity,
                "handler_cycles": self.settings.handler_cycles,
                "cache_hit_cycles": self.settings.cache_hit_cycles}

    # -- request path --------------------------------------------------------

    def _on_request(self, api: MachineApi, event: PacketDelivery) -> None:
        api.consume_cycles(60)  # framing + parse
        try:
            request = json.loads(event.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GuestError(f"malformed request: {exc}") from exc
        method = str(request.get("method", "GET"))
        path = str(request.get("path", "/"))
        self.requests += 1
        self._dirty_scalars.add("requests")

        handler, cacheable = self._route(method, path)
        cache_key = f"{method} {path}"
        now = api.read_clock()
        if cacheable:
            entry = self.cache.get(cache_key)
            if entry is not None and self._cache_fresh(entry, now):
                # Cache hit: the handler (and its upstream call) is skipped.
                self.cache_hits += 1
                self._dirty_scalars.add("cache_hits")
                api.consume_cycles(self.settings.cache_hit_cycles)
                self._respond(api, event, request, int(entry[1]),
                              str(entry[2]), "hit")
                return
            self.cache_misses += 1
            self._dirty_scalars.add("cache_misses")

        status, body = handler(api, request, path)
        if cacheable:
            self.cache[cache_key] = [now + self.settings.cache_ttl,
                                     status, body]
            self._evict_if_needed()
        self._respond(api, event, request, status, body,
                      "miss" if cacheable else "bypass")

    def _cache_fresh(self, entry: List[Any], now: float) -> bool:
        """Whether a cached entry may still be served (the honest TTL rule)."""
        return now <= float(entry[0])

    def _evict_if_needed(self) -> None:
        while len(self.cache) > self.settings.cache_capacity:
            victim = min(self.cache.items(),
                         key=lambda item: (float(item[1][0]), item[0]))[0]
            self.cache.pop(victim)

    def _route(self, method: str, path: str) -> Tuple[Any, bool]:
        for route_method, prefix, handler, cacheable in self._routes:
            if method == route_method and path.startswith(prefix):
                return handler, cacheable
        return self._handle_not_found, False

    def _respond(self, api: MachineApi, event: PacketDelivery,
                 request: Dict[str, Any], status: int, body: str,
                 cache: str) -> None:
        api.send_packet(event.source, json.dumps(
            {"id": request.get("id"), "status": status, "body": body,
             "cache": cache},
            sort_keys=True, separators=(",", ":")).encode("utf-8"))

    # -- service layer -------------------------------------------------------
    #
    # Handlers return (status, body).  The body is a string so cached and
    # fresh responses are byte-comparable; upstream responses are embedded
    # verbatim — they are recorded nondeterministic inputs, so replay feeds
    # the reference guest the same bytes.

    def _handle_item(self, api: MachineApi, request: Dict[str, Any],
                     path: str) -> Tuple[int, str]:
        api.consume_cycles(self.settings.handler_cycles)
        catalog = api.upstream_call("catalog", path.encode("utf-8"))
        item_id = path.rsplit("/", 1)[-1]
        return 200, json.dumps({"item": item_id,
                                "catalog": catalog.decode("utf-8")},
                               sort_keys=True, separators=(",", ":"))

    def _handle_user(self, api: MachineApi, request: Dict[str, Any],
                     path: str) -> Tuple[int, str]:
        api.consume_cycles(self.settings.handler_cycles)
        profile = api.upstream_call("profile", path.encode("utf-8"))
        user_id = path.rsplit("/", 1)[-1]
        return 200, json.dumps({"user": user_id,
                                "profile": profile.decode("utf-8")},
                               sort_keys=True, separators=(",", ":"))

    def _handle_order(self, api: MachineApi, request: Dict[str, Any],
                      path: str) -> Tuple[int, str]:
        api.consume_cycles(self.settings.handler_cycles * 2)
        payment = api.upstream_call(
            "payment", json.dumps(request.get("body", {}), sort_keys=True,
                                  separators=(",", ":")).encode("utf-8"))
        order_id = f"o{len(self.orders):08d}"
        self.orders[order_id] = {"path": path,
                                 "payment": payment.decode("utf-8")}
        return 201, json.dumps({"order": order_id}, sort_keys=True,
                               separators=(",", ":"))

    def _handle_health(self, api: MachineApi, request: Dict[str, Any],
                       path: str) -> Tuple[int, str]:
        api.consume_cycles(20)
        return 200, json.dumps({"ok": True, "requests": self.requests},
                               sort_keys=True, separators=(",", ":"))

    def _handle_not_found(self, api: MachineApi, request: Dict[str, Any],
                          path: str) -> Tuple[int, str]:
        api.consume_cycles(20)
        return 404, json.dumps({"error": "no route"}, sort_keys=True,
                               separators=(",", ":"))

    # -- maintenance ---------------------------------------------------------

    def _on_tick(self, api: MachineApi) -> None:
        self.ticks += 1
        self._dirty_scalars.add("ticks")
        api.consume_cycles(30)
        now = api.read_clock()
        expired = [key for key, entry in self.cache.items()
                   if not self._cache_fresh(entry, now)]
        for key in expired:
            self.cache.pop(key)


class WebClientGuest(GuestProgram):
    """Forwards injected user requests to the service and counts replies.

    The open-loop harness injects one local input per simulated user request
    (the recorded, unauthenticated nondeterministic surface of Section 4.8);
    the guest relays it to the server so the round trip crosses both
    machines' accountability machinery.
    """

    name = "web-client"

    def __init__(self, server: str) -> None:
        self.server = server
        self.requests_sent = 0
        self.responses_received = 0

    def on_start(self, api: MachineApi) -> None:
        api.consume_cycles(10)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        if isinstance(event, KeyboardInput):
            api.consume_cycles(15)
            api.send_packet(self.server, event.command.encode("utf-8"))
            self.requests_sent += 1
        elif isinstance(event, PacketDelivery):
            api.consume_cycles(10)
            self.responses_received += 1

    def get_state(self) -> Dict[str, Any]:
        return {"requests_sent": self.requests_sent,
                "responses_received": self.responses_received}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.requests_sent = int(state["requests_sent"])
        self.responses_received = int(state["responses_received"])

    def config_fingerprint(self) -> Dict[str, Any]:
        return {"server": self.server}


class SimulatedUpstreamBackend:
    """Host-side model of the service's external dependencies.

    Produces per-call response bodies (unique call number + token) and a
    heavy-tailed (Pareto) service latency in guest cycles, from a seeded
    RNG.  Lives outside the deterministic envelope: its outputs reach the
    guest only through ``upstream_call`` and are therefore recorded, so two
    runs with the same seed *and the same call order* are identical, and
    replay never consults it at all.
    """

    def __init__(self, seed: int = 0, base_latency_cycles: int = 240,
                 jitter_cycles: int = 600, tail_alpha: float = 1.6,
                 max_latency_cycles: int = 50_000) -> None:
        self._rng = random.Random(seed)
        self.base_latency_cycles = base_latency_cycles
        self.jitter_cycles = jitter_cycles
        self.tail_alpha = tail_alpha
        self.max_latency_cycles = max_latency_cycles
        self.calls = 0

    def __call__(self, service: str, request: bytes) -> UpstreamResponse:
        self.calls += 1
        # Pareto-style jitter via inverse CDF; clamped so a single unlucky
        # draw cannot stall the simulated service forever.
        draw = self._rng.random()
        pareto = (1.0 - draw) ** (-1.0 / self.tail_alpha) - 1.0
        latency = self.base_latency_cycles + int(self.jitter_cycles * pareto)
        latency = min(latency, self.max_latency_cycles)
        body = json.dumps({"service": service, "call": self.calls,
                           "token": f"{self._rng.getrandbits(48):012x}"},
                          sort_keys=True, separators=(",", ":"))
        return UpstreamResponse(body=body.encode("utf-8"),
                                latency_cycles=latency)


def make_webservice_image(settings: Optional[WebServiceSettings] = None,
                          name: str = "web-service-official") -> VMImage:
    """Image containing the API server."""
    return VMImage(name=name,
                   guest_factory=partial(WebServiceGuest,
                                         settings or WebServiceSettings()),
                   disk_blocks={0: b"nginx-api-standin"})


def make_webclient_image(server: str,
                         name: str = "web-client-official") -> VMImage:
    """Image containing the request-forwarding client."""
    return VMImage(name=name, guest_factory=partial(WebClientGuest, server),
                   disk_blocks={0: b"web-client-standin"})
