"""Echo guest: replies to every packet with the same payload.

Used for the round-trip-time experiment (Figure 5): the "ping" is a packet to
the echo guest, the "pong" is its reply, and — because both machines run under
the configuration being measured — the reply path picks up the virtualisation,
recording, daemon and signature costs the paper attributes to each
configuration.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict

from repro.vm.events import GuestEvent, PacketDelivery
from repro.vm.guest import GuestProgram, MachineApi
from repro.vm.image import VMImage


class EchoGuest(GuestProgram):
    """Replies to every incoming packet with an identical payload."""

    name = "echo"

    def __init__(self) -> None:
        self.packets_echoed = 0

    def on_start(self, api: MachineApi) -> None:
        api.consume_cycles(10)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        if isinstance(event, PacketDelivery):
            api.consume_cycles(20)
            api.send_packet(event.source, event.payload)
            self.packets_echoed += 1

    def get_state(self) -> Dict[str, Any]:
        return {"packets_echoed": self.packets_echoed}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.packets_echoed = int(state["packets_echoed"])


class PingSenderGuest(GuestProgram):
    """Sends a numbered ping to a target whenever it receives local input.

    The experiment driver injects a ``ping`` command per measurement; the
    guest sends the request and counts the replies it gets back.
    """

    name = "ping-sender"

    def __init__(self, target: str) -> None:
        self.target = target
        self.pings_sent = 0
        self.replies_received = 0

    def on_start(self, api: MachineApi) -> None:
        api.consume_cycles(10)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        from repro.vm.events import KeyboardInput
        if isinstance(event, KeyboardInput) and event.command.startswith("ping"):
            self.pings_sent += 1
            payload = f"icmp-echo-request:{self.pings_sent}".encode("utf-8")
            api.send_packet(self.target, payload)
        elif isinstance(event, PacketDelivery):
            self.replies_received += 1

    def get_state(self) -> Dict[str, Any]:
        return {"target": self.target, "pings_sent": self.pings_sent,
                "replies_received": self.replies_received}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.target = str(state["target"])
        self.pings_sent = int(state["pings_sent"])
        self.replies_received = int(state["replies_received"])

    def config_fingerprint(self) -> Dict[str, Any]:
        return {"target": self.target}


def make_echo_image(name: str = "echo-official") -> VMImage:
    """Image containing the echo responder."""
    return VMImage(name=name, guest_factory=EchoGuest,
                   disk_blocks={0: b"echo-service"})


def make_ping_sender_image(target: str, name: str = "ping-sender") -> VMImage:
    """Image containing the ping sender aimed at ``target``."""
    return VMImage(name=f"{name}-{target}",
                   guest_factory=partial(PingSenderGuest, target),
                   disk_blocks={0: b"ping-tool"})
