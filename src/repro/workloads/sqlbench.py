"""sql-bench-style client workload.

Drives the :class:`~repro.workloads.kvstore.KvServerGuest` through phases of
inserts, selects, updates and deletes, like MySQL's ``sql-bench`` suite.  The
operation sequence is generated from a deterministic counter (no randomness),
so the client guest is replayable like any other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict

from repro.vm.events import GuestEvent, PacketDelivery, TimerInterrupt
from repro.vm.guest import GuestProgram, MachineApi
from repro.vm.image import VMImage


@dataclass(frozen=True)
class SqlBenchSettings:
    """Static configuration of the benchmark client (part of the image identity)."""

    server: str
    #: operations issued per timer tick
    operations_per_tick: int = 4
    #: simulated seconds between ticks
    tick_interval: float = 0.25
    #: rows per table before the workload cycles to the next phase
    rows_per_phase: int = 200
    #: bytes of filler payload per inserted/updated row (drives log density:
    #: the streaming-audit bench uses fat rows to grow raw log bytes without
    #: growing entry counts, i.e. without growing recording cost)
    payload_bytes: int = 64


class SqlBenchClientGuest(GuestProgram):
    """Issues a deterministic insert/select/update/delete mix."""

    name = "sql-bench"

    PHASES = ("insert", "select", "update", "delete")

    def __init__(self, settings: SqlBenchSettings) -> None:
        self.settings = settings
        self.sequence = 0
        self.responses = 0
        self.ticks = 0

    # -- guest interface -------------------------------------------------------------

    def on_start(self, api: MachineApi) -> None:
        api.set_timer(self.settings.tick_interval)
        api.consume_cycles(50)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        if isinstance(event, TimerInterrupt):
            self.ticks += 1
            api.consume_cycles(30)
            for _ in range(self.settings.operations_per_tick):
                query = self.next_query()
                api.send_packet(self.settings.server, json.dumps(
                    query, sort_keys=True, separators=(",", ":")).encode("utf-8"))
        elif isinstance(event, PacketDelivery):
            api.consume_cycles(10)
            self.responses += 1

    def get_state(self) -> Dict[str, Any]:
        return {"sequence": self.sequence, "responses": self.responses,
                "ticks": self.ticks}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.sequence = int(state["sequence"])
        self.responses = int(state["responses"])
        self.ticks = int(state["ticks"])

    def config_fingerprint(self) -> Dict[str, Any]:
        return {"server": self.settings.server,
                "operations_per_tick": self.settings.operations_per_tick,
                "rows_per_phase": self.settings.rows_per_phase}

    # -- workload generation ------------------------------------------------------------

    def next_query(self) -> Dict[str, Any]:
        """The next operation in the deterministic benchmark sequence."""
        rows = self.settings.rows_per_phase
        phase = self.PHASES[(self.sequence // rows) % len(self.PHASES)]
        row = self.sequence % rows
        table = f"t{(self.sequence // (rows * len(self.PHASES))) % 4}"
        query: Dict[str, Any] = {
            "request_id": self.sequence,
            "op": phase,
            "table": table,
            "key": f"row{row:06d}",
        }
        if phase in ("insert", "update"):
            query["value"] = {"seq": self.sequence,
                              "payload": "x" * self.settings.payload_bytes}
        self.sequence += 1
        return query


def make_sqlbench_image(settings: SqlBenchSettings,
                        name: str = "sql-bench-official") -> VMImage:
    """Image containing the benchmark client."""
    return VMImage(name=name, guest_factory=partial(SqlBenchClientGuest, settings),
                   disk_blocks={0: b"sql-bench-standin"})
