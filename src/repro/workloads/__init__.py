"""Secondary workloads.

* :mod:`repro.workloads.kvstore` / :mod:`repro.workloads.sqlbench` — a
  client/server database workload standing in for the MySQL + ``sql-bench``
  setup of the spot-checking experiment (Section 6.12, Figure 9).
* :mod:`repro.workloads.echo` — a trivial echo responder used for the ping
  round-trip-time measurements (Figure 5).
* :mod:`repro.workloads.webservice` — the accountable HTTP-style API
  service (routed endpoints, TTL response cache, recorded upstream-call
  nondeterminism) driven open-loop by :mod:`repro.experiments.webload`
  (see ``docs/webservice-workload.md``).
"""

from repro.workloads.echo import EchoGuest, make_echo_image
from repro.workloads.kvstore import KvServerGuest, make_kvserver_image
from repro.workloads.sqlbench import SqlBenchClientGuest, SqlBenchSettings, make_sqlbench_image
from repro.workloads.webservice import (
    SimulatedUpstreamBackend,
    WebClientGuest,
    WebServiceGuest,
    WebServiceSettings,
    make_webclient_image,
    make_webservice_image,
)

__all__ = [
    "EchoGuest",
    "make_echo_image",
    "KvServerGuest",
    "make_kvserver_image",
    "SqlBenchClientGuest",
    "SqlBenchSettings",
    "make_sqlbench_image",
    "SimulatedUpstreamBackend",
    "WebClientGuest",
    "WebServiceGuest",
    "WebServiceSettings",
    "make_webclient_image",
    "make_webservice_image",
]
