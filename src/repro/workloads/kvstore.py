"""A key-value / SQL-ish server guest.

Stands in for the MySQL 5.0.51 server of the spot-checking experiment
(Section 6.12): it keeps growing in-memory state (so snapshots have realistic
incremental sizes), persists some of it to the virtual disk, and answers the
``sql-bench``-style client's queries deterministically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Set

from repro.errors import GuestError
from repro.vm.events import GuestEvent, PacketDelivery, TimerInterrupt
from repro.vm.guest import GuestDirtyKey, GuestProgram, MachineApi
from repro.vm.image import VMImage
from repro.vm.state_store import DirtyTrackingStore


class KvServerGuest(GuestProgram):
    """In-memory table store with simple INSERT/SELECT/UPDATE/DELETE commands.

    The tables live in a :class:`~repro.vm.state_store.DirtyTrackingStore`,
    so a copy-on-write snapshot re-serialises only the tables an operation
    actually touched — this guest is the "large, mostly idle state" of the
    Section 6.12 spot-check workload, where that matters most.
    """

    name = "kv-server"

    TICK_INTERVAL = 0.5
    CHECKPOINT_EVERY_TICKS = 20

    def __init__(self) -> None:
        self.tables: DirtyTrackingStore = DirtyTrackingStore()
        self.operations = 0
        self.ticks = 0
        self._dirty_scalars: Set[str] = {"operations", "ticks"}

    # -- guest interface ------------------------------------------------------------

    def on_start(self, api: MachineApi) -> None:
        api.set_timer(self.TICK_INTERVAL)
        api.consume_cycles(100)

    def on_event(self, api: MachineApi, event: GuestEvent) -> None:
        if isinstance(event, TimerInterrupt):
            self._on_tick(api)
        elif isinstance(event, PacketDelivery):
            self._on_query(api, event)

    def get_state(self) -> Dict[str, Any]:
        return {"tables": self.tables.as_dict(), "operations": self.operations,
                "ticks": self.ticks}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.tables.replace(state["tables"])
        self.operations = int(state["operations"])
        self.ticks = int(state["ticks"])
        self._dirty_scalars.update(("operations", "ticks"))

    def snapshot_dirty_keys(self) -> Optional[Set[GuestDirtyKey]]:
        dirty: Set[GuestDirtyKey] = {("tables", name)
                                     for name in self.tables.dirty_keys()}
        dirty.update((name,) for name in self._dirty_scalars)
        return dirty

    def snapshot_mark_clean(self) -> None:
        self.tables.mark_clean()
        self._dirty_scalars.clear()

    # -- internals ---------------------------------------------------------------------

    def _on_tick(self, api: MachineApi) -> None:
        self.ticks += 1
        self._dirty_scalars.add("ticks")
        api.consume_cycles(50)
        if self.ticks % self.CHECKPOINT_EVERY_TICKS == 0:
            # Checkpoint the row counts to the virtual disk, like a database
            # flushing its buffer pool.
            summary = {table: len(rows) for table, rows in sorted(self.tables.items())}
            api.write_disk(10 + (self.ticks // self.CHECKPOINT_EVERY_TICKS) % 100,
                           json.dumps(summary, sort_keys=True).encode("utf-8"))

    def _on_query(self, api: MachineApi, event: PacketDelivery) -> None:
        api.consume_cycles(80)
        try:
            query = json.loads(event.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GuestError(f"malformed query: {exc}") from exc
        result = self.execute(query)
        self.operations += 1
        self._dirty_scalars.add("operations")
        api.send_packet(event.source, json.dumps(
            {"request_id": query.get("request_id"), "result": result},
            sort_keys=True, separators=(",", ":")).encode("utf-8"))

    # -- query engine ---------------------------------------------------------------------

    def execute(self, query: Dict[str, Any]) -> Any:
        """Execute one query dictionary and return its result."""
        op = query.get("op")
        table_name = str(query.get("table", "t0"))
        table = self.tables.setdefault(table_name, {})
        key = str(query.get("key", ""))
        if op == "insert":
            table[key] = query.get("value")
            self.tables.mark_dirty(table_name)
            return {"inserted": 1}
        if op == "select":
            return {"row": table.get(key)}
        if op == "update":
            if key in table:
                table[key] = query.get("value")
                self.tables.mark_dirty(table_name)
                return {"updated": 1}
            return {"updated": 0}
        if op == "delete":
            if table.pop(key, None) is not None:
                self.tables.mark_dirty(table_name)
                return {"deleted": 1}
            return {"deleted": 0}
        if op == "count":
            return {"count": len(table)}
        return {"error": f"unknown op {op!r}"}


def make_kvserver_image(name: str = "kv-server-official") -> VMImage:
    """Image containing the database server."""
    return VMImage(name=name, guest_factory=KvServerGuest,
                   disk_blocks={0: b"mysql-5.0.51-standin"})
