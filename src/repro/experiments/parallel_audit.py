"""Parallel batch auditing of a fleet (Sections 6.6 and 6.12, scaled out).

The paper's audits are embarrassingly parallel: different machines' logs are
independent, and snapshots make the chunks of one log independent too.  This
experiment builds a hosted-service fleet — ``N/2`` database servers, each
driven by its own sql-bench-style client, all recorded under ``avmm-rsa768``
— and then audits every machine on the
:class:`~repro.audit.engine.AuditScheduler` at several worker counts.

Two numbers are reported per worker count.  The *modelled* audit time comes
from scheduling the calibrated per-chunk :class:`~repro.audit.verdict.AuditCost`
totals onto the workers (:mod:`repro.metrics.parallel`); like every other
number in this reproduction it is hardware-independent, and it is the number
the speedup claims are made on.  The *measured* wall-clock of the real worker
pool is reported alongside for flavour — it depends on how many cores the
host actually has.

Verdicts must be identical at every worker count; the engine guarantees it by
re-running the serial auditor whenever a chunk fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.auditor import Auditor
from repro.audit.engine import AuditAssignment, AuditScheduler, FleetAuditReport
from repro.avmm.config import AvmmConfig, Configuration
from repro.avmm.monitor import AccountableVMM
from repro.crypto.keys import KeyStore
from repro.errors import StoreError
from repro.experiments.harness import build_trust, format_table
from repro.network.simnet import SimulatedNetwork
from repro.obs import NULL_OBS, Observability, ensure_obs
from repro.service.fleet import FleetCoordinator
from repro.service.ingest import DEFAULT_INGEST_IDENTITY, AuditIngestService
from repro.sim.scheduler import Scheduler
from repro.store.archive import LogArchive
from repro.vm.image import VMImage
from repro.workloads.kvstore import make_kvserver_image
from repro.workloads.sqlbench import SqlBenchSettings, make_sqlbench_image


@dataclass
class AuditFleet:
    """A recorded fleet, ready to be audited."""

    monitors: Dict[str, AccountableVMM]
    reference_images: Dict[str, VMImage]
    keystore: KeyStore
    #: peer that holds each machine's authenticators (its pair partner)
    peers: Dict[str, str]
    #: the audit-ingest service, when the fleet was recorded with an archive
    ingest: Optional[AuditIngestService] = None
    scheduler: Optional[Scheduler] = None
    #: telemetry sink the fleet was recorded under; auditors inherit it
    obs: Observability = NULL_OBS
    #: the sharded-ingest coordinator, when one was attached instead of a
    #: single archive (see repro.service.fleet)
    coordinator: Optional[FleetCoordinator] = None
    #: per-identity signing keys (the fleet's trust setup); adversarial
    #: harnesses use these to forge validly-signed alternate chains
    keypairs: Dict[str, object] = field(default_factory=dict)

    @property
    def machines(self) -> List[str]:
        return sorted(self.monitors)

    def make_auditor(self, target: str, identity: str = "auditor",
                     collect: bool = True) -> Auditor:
        """An external auditor holding the authenticators the peer collected.

        ``collect=False`` returns the auditor empty-handed — the right
        starting point for archive-backed audits, where the ingest service
        supplies the archived authenticators instead of a live peer.
        """
        auditor = Auditor(identity, self.keystore, self.reference_images[target],
                          obs=self.obs)
        if collect:
            auditor.collect_from_peer(self.monitors[self.peers[target]], target)
        return auditor

    def assignments(self) -> List[AuditAssignment]:
        return [AuditAssignment(self.make_auditor(machine), self.monitors[machine])
                for machine in self.machines]


def build_fleet(num_machines: int = 16, duration: float = 30.0, seed: int = 7,
                snapshot_interval: Optional[float] = 10.0,
                archive: Optional[LogArchive] = None,
                ingest_identity: str = DEFAULT_INGEST_IDENTITY,
                client_settings: Optional[SqlBenchSettings] = None,
                ship_format_version: int = 1,
                coordinator: Optional[FleetCoordinator] = None,
                obs: Optional[Observability] = None) -> AuditFleet:
    """Record a fleet of ``num_machines`` (server+client pairs) for auditing.

    With an ``archive``, an :class:`~repro.service.ingest.AuditIngestService`
    joins the network under ``ingest_identity`` and every monitor streams its
    sealed segments (plus boundary snapshots and collected peer
    authenticators) to it during the run; the unsealed log tails are shipped
    and drained before the fleet is returned, so the archive holds each
    machine's complete log.  ``client_settings`` overrides the benchmark
    clients' workload shape (its ``server`` field is replaced per pair); the
    streaming-audit bench uses it to fatten row payloads so raw log bytes
    grow without growing entry counts.  ``ship_format_version`` selects the
    wire codec the monitors ship segments in (:mod:`repro.log.codec`); the
    archive's own ``format_version`` independently controls the stored
    format, so mixed ship/store configurations are expressible.

    With a ``coordinator`` (mutually exclusive with ``archive``), the fleet
    records *sharded*: every shard's ingest endpoint joins the network and
    each monitor ships to its consistent-hash home shard
    (:meth:`~repro.service.fleet.FleetCoordinator.attach_fleet`) — the
    fleet-scale topology of ``docs/fleet-sharding.md``.  ``obs``
    threads one telemetry sink (:mod:`repro.obs`) through every monitor, the
    ingest service, and the auditors the fleet later makes — observers only,
    it never changes what gets recorded or audited.
    """
    if num_machines < 2 or num_machines % 2:
        raise ValueError(f"fleet size must be an even number >= 2, got {num_machines}")
    obs = ensure_obs(obs)
    scheduler = Scheduler()
    if obs.enabled and getattr(obs.tracer, "sim_time", None) is None:
        # Bind the sim clock domain to this fleet's clock so sim-domain
        # events (snapshots, shipments, ingests) carry simulated timestamps.
        obs.tracer.sim_time = scheduler.clock.read
    network = SimulatedNetwork(scheduler)
    config = AvmmConfig.for_configuration(Configuration.AVMM_RSA768,
                                          snapshot_interval=snapshot_interval)

    pairs = [(f"db-server-{index:02d}", f"db-client-{index:02d}")
             for index in range(num_machines // 2)]
    identities = [identity for pair in pairs for identity in pair]
    _, keypairs, keystore = build_trust(identities + ["auditor"],
                                        scheme=config.signature_scheme, seed=seed)

    monitors: Dict[str, AccountableVMM] = {}
    reference_images: Dict[str, VMImage] = {}
    peers: Dict[str, str] = {}
    for index, (server, client) in enumerate(pairs):
        server_image = make_kvserver_image()
        if client_settings is None:
            pair_settings = SqlBenchSettings(server=server)
        else:
            pair_settings = replace(client_settings, server=server)
        client_image = make_sqlbench_image(pair_settings)
        reference_images[server] = server_image
        reference_images[client] = client_image
        peers[server] = client
        peers[client] = server
        monitors[server] = AccountableVMM(
            server, server_image, config, scheduler, network,
            keypair=keypairs[server], keystore=keystore,
            clock_offset=0.0005 * index, obs=obs)
        monitors[client] = AccountableVMM(
            client, client_image, config, scheduler, network,
            keypair=keypairs[client], keystore=keystore,
            clock_offset=0.0005 * index + 0.0002, obs=obs)

    if archive is not None and coordinator is not None:
        raise ValueError("pass either archive= (single service) or "
                         "coordinator= (sharded fleet), not both")
    ingest: Optional[AuditIngestService] = None
    if archive is not None:
        ingest = AuditIngestService(archive, identity=ingest_identity,
                                    network=network, obs=obs)
        for monitor in monitors.values():
            monitor.attach_archive_shipper(
                ingest_identity, format_version=ship_format_version)
    elif coordinator is not None:
        coordinator.connect(network)
        coordinator.attach_fleet(monitors.values(),
                                 format_version=ship_format_version)

    for monitor in monitors.values():
        monitor.start()
    scheduler.run_until(duration)
    for monitor in monitors.values():
        monitor.stop()
    if ingest is not None or coordinator is not None:
        drain_fleet_to_archive(scheduler, monitors)
    return AuditFleet(monitors=monitors, reference_images=reference_images,
                      keystore=keystore, peers=peers, ingest=ingest,
                      scheduler=scheduler, obs=obs, coordinator=coordinator,
                      keypairs=keypairs)


def drain_fleet_to_archive(scheduler: Scheduler,
                           monitors: Dict[str, AccountableVMM],
                           settle: float = 1.0, max_rounds: int = 5) -> None:
    """Flush in-flight traffic, ship the log tails, and deliver everything.

    Delivering a straggler message can append new log entries (a RECV plus
    its ACK), so tail shipping repeats until a whole round ships nothing —
    at that point every monitor's archive mirrors its log exactly.  Raises
    :class:`~repro.errors.StoreError` if the fleet is still producing or
    dropping shipments after ``max_rounds`` (e.g. an unhealed partition to
    the ingest endpoint) rather than returning an incomplete archive.
    """
    scheduler.run_until(scheduler.clock.now + settle)
    for _ in range(max_rounds):
        shipped = [monitor.ship_archive_tail() for monitor in monitors.values()]
        scheduler.run_until(scheduler.clock.now + settle)
        if not any(shipped):
            break
    unshipped = sorted(monitor.identity for monitor in monitors.values()
                       if not monitor.archive_shipping_complete)
    if unshipped:
        raise StoreError(
            f"archive drain did not converge: {unshipped} still have "
            f"unshipped log entries or authenticators after "
            f"{max_rounds} rounds")


@dataclass
class WorkerPoint:
    """One worker count's outcome."""

    workers: int
    executor: str
    chunks: int
    measured_wall_seconds: float
    modelled_serial_seconds: float
    modelled_wall_seconds: float
    verdicts: Dict[str, str] = field(default_factory=dict)
    report: Optional[FleetAuditReport] = None


@dataclass
class ParallelAuditResult:
    """Speedup table of auditing one fleet at several worker counts."""

    num_machines: int
    duration: float
    points: List[WorkerPoint] = field(default_factory=list)

    def point(self, workers: int) -> WorkerPoint:
        for point in self.points:
            if point.workers == workers:
                return point
        raise KeyError(f"no data point for {workers} workers")

    @property
    def verdicts_identical(self) -> bool:
        first = self.points[0].verdicts if self.points else {}
        return all(point.verdicts == first for point in self.points)

    @property
    def all_passed(self) -> bool:
        return all(verdict == "pass"
                   for point in self.points for verdict in point.verdicts.values())

    def modelled_speedup(self, workers: int) -> float:
        """Modelled audit time at ``workers=1`` over the time at ``workers``."""
        baseline = self.point(1).modelled_wall_seconds
        parallel = self.point(workers).modelled_wall_seconds
        return baseline / parallel if parallel > 0 else 1.0

    def measured_speedup(self, workers: int) -> float:
        baseline = self.point(1).measured_wall_seconds
        parallel = self.point(workers).measured_wall_seconds
        return baseline / parallel if parallel > 0 else 1.0


def run_parallel_audit(num_machines: int = 16, duration: float = 30.0,
                       worker_counts: Sequence[int] = (1, 2, 4, 8),
                       seed: int = 7,
                       snapshot_interval: Optional[float] = 10.0,
                       executor: str = "auto",
                       keep_reports: bool = False) -> ParallelAuditResult:
    """Audit one recorded fleet at every requested worker count."""
    fleet = build_fleet(num_machines=num_machines, duration=duration, seed=seed,
                        snapshot_interval=snapshot_interval)
    result = ParallelAuditResult(num_machines=num_machines, duration=duration)
    for workers in worker_counts:
        engine = AuditScheduler(workers=workers, executor=executor)
        report = engine.audit_fleet(fleet.assignments())
        result.points.append(WorkerPoint(
            workers=workers,
            executor=report.executor_used,
            chunks=report.chunk_count,
            measured_wall_seconds=report.wall_seconds,
            modelled_serial_seconds=report.modelled.serial_seconds,
            modelled_wall_seconds=report.modelled.makespan_seconds,
            verdicts={machine: audit.verdict.value
                      for machine, audit in report.results.items()},
            report=report if keep_reports else None,
        ))
    return result


def main(num_machines: int = 16, duration: float = 30.0,
         worker_counts: Sequence[int] = (1, 2, 4, 8)) -> ParallelAuditResult:
    """Print the parallel-audit speedup table."""
    result = run_parallel_audit(num_machines=num_machines, duration=duration,
                                worker_counts=worker_counts)
    rows: List[Tuple[object, ...]] = []
    for point in result.points:
        rows.append((point.workers, point.executor, point.chunks,
                     f"{point.modelled_wall_seconds:.1f} s",
                     f"{result.modelled_speedup(point.workers):.2f}x",
                     f"{point.measured_wall_seconds:.2f} s"))
    print(f"Parallel audit of a {num_machines}-machine fleet "
          f"({duration:.0f} s of recorded activity per machine)")
    print(format_table(["workers", "executor", "chunks", "modelled audit time",
                        "modelled speedup", "measured wall"], rows))
    print(f"\nverdicts identical across worker counts: {result.verdicts_identical}; "
          f"all machines passed: {result.all_passed}")
    return result


if __name__ == "__main__":
    main()
