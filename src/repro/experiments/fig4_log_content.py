"""Figure 4 — average log growth by content, and the compressed size.

The paper breaks the AVMM log down into TimeTracker entries (~59 %), MAC-layer
entries (~14 %), other replay information (~27 % of the replay stream) and the
tamper-evident-logging entries, and reports that bzip2 plus a VMM-specific
compressor reduces average growth to ~2.47 MB/min.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.avmm.config import Configuration
from repro.experiments.harness import GameSession, GameSessionSettings, format_table
from repro.metrics.logstats import LogContentBreakdown, log_content_breakdown


@dataclass
class LogContentResult:
    """Per-category growth rates for the server machine."""

    breakdown: LogContentBreakdown
    mb_per_minute_by_category: Dict[str, float]
    total_mb_per_minute: float
    compressed_mb_per_minute: float
    replay_fraction: float
    tamper_evident_fraction: float


def run_log_content(duration: float = 120.0, num_players: int = 3,
                    seed: int = 42, machine: str = "player1") -> LogContentResult:
    """Measure the content breakdown of the AVMM log."""
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768, num_players=num_players,
        duration=duration, seed=seed, snapshot_interval=None)
    session = GameSession(settings)
    session.run()
    breakdown = log_content_breakdown(session.monitors[machine].log, duration,
                                      machine=machine)
    by_category = {category: breakdown.mb_per_minute(category)
                   for category in breakdown.bytes_by_category}
    replay = (breakdown.fraction("timetracker") + breakdown.fraction("maclayer")
              + breakdown.fraction("other_replay"))
    return LogContentResult(
        breakdown=breakdown,
        mb_per_minute_by_category=by_category,
        total_mb_per_minute=breakdown.mb_per_minute(),
        compressed_mb_per_minute=breakdown.compressed_mb_per_minute(),
        replay_fraction=replay,
        tamper_evident_fraction=breakdown.fraction("tamper_evident"),
    )


def main(duration: float = 120.0) -> LogContentResult:
    """Print the Figure 4 breakdown."""
    result = run_log_content(duration=duration)
    rows = [(category, f"{rate:.3f}", f"{result.breakdown.fraction(category) * 100:.1f}%")
            for category, rate in sorted(result.mb_per_minute_by_category.items())]
    rows.append(("total", f"{result.total_mb_per_minute:.3f}", "100.0%"))
    rows.append(("total after compression", f"{result.compressed_mb_per_minute:.3f}", ""))
    print("Figure 4: average log growth by content (server machine)")
    print(format_table(["category", "MB/minute", "fraction"], rows))
    print(f"\nreplay information: {result.replay_fraction * 100:.1f}% of the log, "
          f"tamper-evident logging: {result.tamper_evident_fraction * 100:.1f}%")
    return result


if __name__ == "__main__":
    main()
