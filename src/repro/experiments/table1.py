"""Table 1 — detectability of Counterstrike cheats, plus the Section 6.3
functionality check.

The table itself aggregates the 26-entry cheat catalogue.  The functionality
check plays short games in which one player uses a pre-installed cheat image
and verifies that the audits of the honest players succeed while the audit of
the cheater fails with a replay divergence — exactly the outcome the paper
reports for the four non-OpenGL cheats it tried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.audit.verdict import Verdict
from repro.avmm.config import Configuration
from repro.experiments.harness import GameSession, GameSessionSettings, format_table
from repro.game.cheats.base import Cheat
from repro.game.cheats.catalog import CHEAT_CATALOG, CatalogSummary, catalog_summary
from repro.game.cheats.implementations import implemented_cheats


@dataclass
class FunctionalCheckResult:
    """Outcome of one cheated game (Section 6.3)."""

    cheat_name: str
    cheater: str
    cheater_detected: bool
    honest_players_passed: bool
    divergence_reason: str = ""


@dataclass
class Table1Result:
    """Everything the Table 1 experiment produces."""

    summary: CatalogSummary
    functional_checks: List[FunctionalCheckResult] = field(default_factory=list)

    @property
    def all_functional_checks_passed(self) -> bool:
        return all(r.cheater_detected and r.honest_players_passed
                   for r in self.functional_checks)


def run_functional_check(cheat: Cheat, duration: float = 10.0,
                         num_players: int = 3, seed: int = 7) -> FunctionalCheckResult:
    """Play one game with a single cheater and audit every player."""
    cheater = "player1"
    settings = GameSessionSettings(
        configuration=Configuration.AVMM_RSA768,
        num_players=num_players,
        duration=duration,
        seed=seed,
        snapshot_interval=duration / 2.0,
        cheats={cheater: cheat},
    )
    session = GameSession(settings)
    session.run()
    results = session.audit_all()

    cheater_result = results[cheater]
    honest_ok = all(result.verdict is Verdict.PASS
                    for player, result in results.items() if player != cheater)
    return FunctionalCheckResult(
        cheat_name=cheat.spec_name,
        cheater=cheater,
        cheater_detected=cheater_result.verdict is Verdict.FAIL,
        honest_players_passed=honest_ok,
        divergence_reason=cheater_result.reason,
    )


def run_table1(run_functional: bool = True, functional_duration: float = 10.0,
               functional_cheats: Optional[List[Cheat]] = None) -> Table1Result:
    """Reproduce Table 1 and the Section 6.3 functionality check."""
    result = Table1Result(summary=catalog_summary())
    if not run_functional:
        return result
    cheats = functional_cheats
    if cheats is None:
        # Like the paper, run the cheats that do not depend on the rendering
        # pipeline (OpenGL) end to end.
        opengl_specs = {spec.name for spec in CHEAT_CATALOG if spec.requires_opengl}
        cheats = [cheat for cheat in implemented_cheats()
                  if cheat.spec_name not in opengl_specs]
    for cheat in cheats:
        result.functional_checks.append(
            run_functional_check(cheat, duration=functional_duration))
    return result


def main(duration: float = 10.0) -> Table1Result:
    """Print Table 1 and the functionality-check outcomes."""
    result = run_table1(functional_duration=duration)
    print("Table 1: Detectability of Counterstrike cheats")
    print(format_table(["", "count"], result.summary.as_rows()))
    if result.functional_checks:
        print("\nFunctionality check (Section 6.3): one cheater per game")
        rows = [(r.cheat_name, "detected" if r.cheater_detected else "MISSED",
                 "pass" if r.honest_players_passed else "FALSE POSITIVE")
                for r in result.functional_checks]
        print(format_table(["cheat", "cheater audit", "honest audits"], rows))
    return result


if __name__ == "__main__":
    main()
